#!/usr/bin/env python
"""Ride matching with the future-work extensions: predictive kNN finds
the drivers who will be nearest a pickup point, a distance self-join
raises proximity alerts, and the index is checkpointed and reopened.

Run with::

    python examples/ride_matching.py
"""

import os
import random
import tempfile

from repro import MovingObjectState, StripesConfig, StripesIndex
from repro.core.persistence import load_index, save_index
from repro.extensions import distance_join, knn
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import OnDiskPageFile

N_DRIVERS = 1_500
CITY_KM = 40.0
MAX_SPEED = 0.8           # km/min in traffic
LIFETIME = 20.0


def random_driver(rng, oid, t):
    return MovingObjectState(
        oid,
        (rng.uniform(0, CITY_KM), rng.uniform(0, CITY_KM)),
        (rng.uniform(-MAX_SPEED, MAX_SPEED),
         rng.uniform(-MAX_SPEED, MAX_SPEED)),
        t)


def main() -> None:
    rng = random.Random(99)
    workdir = tempfile.mkdtemp(prefix="rides_")
    db_path = os.path.join(workdir, "drivers.stripes")
    meta_path = db_path + ".meta"

    pagefile = OnDiskPageFile(db_path)
    index = StripesIndex(
        StripesConfig(vmax=(MAX_SPEED, MAX_SPEED),
                      pmax=(CITY_KM, CITY_KM), lifetime=LIFETIME),
        BufferPool(pagefile, capacity=96))
    fleet = {}
    for oid in range(N_DRIVERS):
        state = random_driver(rng, oid, 0.0)
        index.insert(state)
        fleet[oid] = state

    # A rider requests a pickup: which five drivers are predicted nearest
    # to the pickup point three minutes from now?
    pickup = (rng.uniform(5, CITY_KM - 5), rng.uniform(5, CITY_KM - 5))
    eta = 3.0
    matches = knn(index, pickup, t=eta, k=5)
    print(f"pickup at ({pickup[0]:.1f}, {pickup[1]:.1f}), t={eta} min:")
    for rank, (oid, dist) in enumerate(matches, 1):
        print(f"  #{rank}: driver {oid:4d} predicted {dist:.2f} km away")

    # Dispatch safety: which driver pairs will be within 150 m of each
    # other five minutes out (e.g. to stagger assignments)?
    close_pairs = distance_join(index, index, radius=0.15, t=5.0)
    print(f"\n{len(close_pairs)} driver pairs predicted within 150 m "
          f"at t=5")

    # Checkpoint, reopen, and verify the reopened index agrees.
    save_index(index, meta_path)
    pagefile.close()
    reopened = load_index(db_path, meta_path, pool_pages=96)
    again = knn(reopened, pickup, t=eta, k=5)
    assert [oid for oid, _ in again] == [oid for oid, _ in matches]
    print(f"\ncheckpoint verified: reopened index returns the same "
          f"{len(again)} matches")
    print(f"files: {db_path} "
          f"({os.path.getsize(db_path) // 1024} KiB), sidecar "
          f"{os.path.getsize(meta_path)} B")
    reopened.pool.pagefile.close()


if __name__ == "__main__":
    main()
