#!/usr/bin/env python
"""Quickstart: index predicted trajectories and ask the three query types.

Run with::

    python examples/quickstart.py
"""

from repro import (
    MovingObjectState,
    MovingQuery,
    StripesConfig,
    StripesIndex,
    TimeSliceQuery,
    WindowQuery,
)


def main() -> None:
    # A 1000 x 1000 km space, speeds up to 3 km/min, and an index lifetime
    # of 120 time units (objects must re-report at least that often).
    config = StripesConfig(vmax=(3.0, 3.0), pmax=(1000.0, 1000.0),
                           lifetime=120.0)
    index = StripesIndex(config)

    # Three vehicles report (position, velocity) at time 0.
    index.insert(MovingObjectState(oid=1, pos=(100.0, 100.0),
                                   vel=(2.0, 0.0), t=0.0))    # eastbound
    index.insert(MovingObjectState(oid=2, pos=(500.0, 500.0),
                                   vel=(0.0, -1.5), t=0.0))   # southbound
    index.insert(MovingObjectState(oid=3, pos=(900.0, 100.0),
                                   vel=(-2.5, 2.5), t=0.0))   # northwest

    # Time-slice: who is predicted inside [150,350] x [50,250] at t=60?
    snapshot = TimeSliceQuery((150.0, 50.0), (350.0, 250.0), t=60.0)
    print("time-slice @t=60:", index.query(snapshot))  # vehicle 1 at (220,100)

    # Window: who crosses the depot area at any time in [0, 200]?
    depot = WindowQuery((480.0, 150.0), (520.0, 250.0),
                        t_low=0.0, t_high=200.0)
    print("window [0,200]: ", index.query(depot))      # vehicle 2 passes through

    # Moving: a storm cell drifting east -- who does it sweep over?
    storm = MovingQuery((50.0, 350.0), (250.0, 550.0),
                        (450.0, 350.0), (650.0, 550.0),
                        t_low=0.0, t_high=120.0)
    print("moving storm:  ", index.query(storm))

    # Vehicle 1 turns: an update is a delete of the old parameters plus an
    # insert of the new ones (the object reports both).
    old = MovingObjectState(1, (100.0, 100.0), (2.0, 0.0), 0.0)
    new = MovingObjectState(1, (220.0, 100.0), (0.0, 2.0), 60.0)
    index.update(old, new)
    print("after turn:    ",
          index.query(TimeSliceQuery((150.0, 150.0), (350.0, 350.0), 120.0)))

    print("live entries:  ", len(index))
    print("index pages:   ", index.pages_in_use())


if __name__ == "__main__":
    main()
