#!/usr/bin/env python
"""Regenerate every figure/table of the paper's evaluation at a small
scale (the programmatic twin of the ``stripes-bench all`` command).

Run with::

    python examples/reproduce_paper.py [scale]

where ``scale`` (default 0.005) is the fraction of the paper's experiment
size; see EXPERIMENTS.md for full-scale (scale=1.0) results.
"""

import sys

from repro.bench import experiments
from repro.bench.experiments import ExperimentScale
from repro.bench.report import (
    render_batches,
    render_breakdown,
    render_cost_table,
)


def main() -> None:
    scale_value = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    scale = ExperimentScale(scale=scale_value)
    disk = scale.disk
    print(f"== STRIPES evaluation suite at scale {scale_value} ==\n")

    print("-- Figures 9-12: 500K-uniform, three workload mixes --")
    runs = experiments.workload_mix_runs(scale)
    for mix, results in runs.items():
        print(render_batches(f"[Fig 9] {mix}: cost per batch",
                             results, disk))
        print()
        print(render_breakdown(f"[Fig 10] {mix}: IO/CPU breakdown",
                               results, disk))
        print()
        print(render_cost_table(f"[Figs 11-12] {mix}: per-op costs",
                                results, disk))
        print()

    print("-- Figure 13: scaling the number of objects (50-50) --")
    for paper_n, results in experiments.scaling(scale).items():
        print(render_cost_table(f"[Fig 13] {paper_n // 1000}K objects",
                                results, disk))
        print()

    print("-- Figure 14: network skew (50-50) --")
    for nd, results in experiments.skew(scale).items():
        print(render_cost_table(f"[Fig 14] ND={nd}", results, disk))
        print()

    print("-- Section 5.1: structure statistics --")
    stats = experiments.structure_stats(scale)
    print(f"STRIPES: {stats.stripes_pages} pages, height "
          f"{stats.stripes_height}, {stats.stripes_nonleaf_nodes} non-leaf "
          f"nodes of {stats.stripes_nonleaf_bytes} B, occupancy "
          f"{stats.stripes_leaf_occupancy:.0%}")
    print(f"TPR*:    {stats.tprstar_pages} pages, height "
          f"{stats.tprstar_height}")
    print(f"size ratio STRIPES/TPR* = {stats.size_ratio:.2f}x "
          f"(paper: ~2.4x)")


if __name__ == "__main__":
    main()
