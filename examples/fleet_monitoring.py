#!/usr/bin/env python
"""Fleet monitoring: continuous updates plus dispatch queries, persisted
to a real file on disk.

A delivery fleet of ``N_VEHICLES`` couriers moves through a metro area.
Vehicles report (position, velocity) every few minutes; dispatch issues
predictive queries ("which couriers will be within the pickup zone in the
next ten minutes?").  The index lives in an on-disk page file behind a
small buffer pool, so the run also shows physical IO counts.

Run with::

    python examples/fleet_monitoring.py
"""

import os
import random
import tempfile

from repro import (
    MovingObjectState,
    StripesConfig,
    StripesIndex,
    WindowQuery,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import OnDiskPageFile

N_VEHICLES = 2_000
CITY_KM = 60.0            # 60 x 60 km metro area
MAX_SPEED = 1.0           # km/min (~60 km/h)
LIFETIME = 30.0           # vehicles report at least every 30 minutes
SIM_MINUTES = 90.0


def random_vehicle(rng: random.Random, oid: int,
                   t: float) -> MovingObjectState:
    return MovingObjectState(
        oid,
        (rng.uniform(0, CITY_KM), rng.uniform(0, CITY_KM)),
        (rng.uniform(-MAX_SPEED, MAX_SPEED),
         rng.uniform(-MAX_SPEED, MAX_SPEED)),
        t)


def main() -> None:
    rng = random.Random(2024)
    path = os.path.join(tempfile.mkdtemp(prefix="fleet_"), "fleet.stripes")
    pagefile = OnDiskPageFile(path)
    pool = BufferPool(pagefile, capacity=64)   # deliberately small pool
    index = StripesIndex(
        StripesConfig(vmax=(MAX_SPEED, MAX_SPEED),
                      pmax=(CITY_KM, CITY_KM), lifetime=LIFETIME),
        pool)

    print(f"loading {N_VEHICLES} vehicles...")
    fleet = {}
    for oid in range(N_VEHICLES):
        state = random_vehicle(rng, oid, 0.0)
        index.insert(state)
        fleet[oid] = state

    clock = 0.0
    dispatched = 0
    while clock < SIM_MINUTES:
        clock += 1.0
        # ~5% of the fleet reports each minute.
        for oid in rng.sample(sorted(fleet), k=N_VEHICLES // 20):
            new_state = random_vehicle(rng, oid, clock)
            index.update(fleet[oid], new_state)
            fleet[oid] = new_state
        # One pickup request per minute: find couriers predicted to pass
        # within 2 km of the pickup point during the next 10 minutes.
        px, py = rng.uniform(2, CITY_KM - 2), rng.uniform(2, CITY_KM - 2)
        zone = WindowQuery((px - 2.0, py - 2.0), (px + 2.0, py + 2.0),
                           t_low=clock, t_high=clock + 10.0)
        candidates = index.query(zone)
        dispatched += bool(candidates)
        if clock % 30 == 0:
            stats = pool.stats
            print(f"t={clock:5.0f}  candidates={len(candidates):3d}  "
                  f"physical reads={stats.physical_reads:6d}  "
                  f"writes={stats.physical_writes:6d}  "
                  f"hit rate={stats.hit_rate:.1%}")

    index.flush()
    print(f"\ndispatch succeeded in {dispatched:.0f}/{SIM_MINUTES:.0f} "
          f"minutes")
    expired = N_VEHICLES - len(index)
    print(f"{expired} vehicles expired (no report for over one lifetime; "
          f"their next report re-enters them as new entries -- Section 4.4)")
    print(f"index file: {path} "
          f"({os.path.getsize(path) / 1024:.0f} KiB, "
          f"{index.pages_in_use()} pages in use)")
    for window, tree_stats in index.stats().items():
        print(f"window {window}: {tree_stats.entries} entries, height "
              f"{tree_stats.height}, occupancy "
              f"{tree_stats.leaf_occupancy:.0%}")
    pagefile.close()


if __name__ == "__main__":
    main()
