#!/usr/bin/env python
"""Air-traffic sector lookahead: STRIPES versus the TPR*-tree on the same
stream of aircraft updates and conflict-probe queries.

Aircraft fly great-circle-ish straight segments between waypoints (the
skewed network workload of the paper maps nicely onto airways).  A sector
controller repeatedly asks *moving queries*: "which aircraft will be
inside this weather cell -- itself drifting east -- during the next
20 minutes?"  Both indexes answer every query; the example prints their
per-operation IO and CPU costs side by side.

Run with::

    python examples/air_traffic_sectors.py
"""

import random
import time

from repro import MovingObjectState, MovingQuery, StripesConfig, StripesIndex
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.tpr import TPRStarTree, TPRTreeConfig
from repro.workload import WorkloadSpec, generate_workload
from repro.workload.operations import UpdateOp

N_AIRCRAFT = 3_000
AIRSPACE_KM = 800.0
MACH_KMPM = 15.0          # ~900 km/h in km/min
POOL_PAGES = 48


def weather_cell_query(rng: random.Random, now: float) -> MovingQuery:
    size = 80.0
    x = rng.uniform(0, AIRSPACE_KM - size)
    y = rng.uniform(0, AIRSPACE_KM - size)
    drift = rng.uniform(0.2, 1.0)  # weather moves slower than aircraft
    t1, t2 = now, now + 20.0
    dx = drift * (t2 - t1)
    return MovingQuery((x, y), (x + size, y + size),
                       (x + dx, y), (x + size + dx, y + size), t1, t2)


def main() -> None:
    rng = random.Random(7)
    spec = WorkloadSpec(n_objects=N_AIRCRAFT, nd=12,
                        space_side=AIRSPACE_KM, max_speed=MACH_KMPM,
                        update_fraction=1.0, n_operations=3_000, seed=7)
    workload = generate_workload(spec)

    stripes_pool = BufferPool(InMemoryPageFile(), capacity=POOL_PAGES)
    stripes = StripesIndex(
        StripesConfig(vmax=workload.vmax, pmax=workload.pmax,
                      lifetime=120.0), stripes_pool)
    tpr_pool = BufferPool(InMemoryPageFile(), capacity=POOL_PAGES)
    tprstar = TPRStarTree(TPRTreeConfig(d=2, horizon=60.0),
                          RecordStore(tpr_pool))

    print(f"loading {N_AIRCRAFT} aircraft into both indexes...")
    for state in workload.initial:
        stripes.insert(state)
        tprstar.insert(state)

    costs = {"STRIPES": [0, 0.0, 0], "TPR*": [0, 0.0, 0]}  # io, cpu, hits
    mismatches = 0
    clock = 0.0
    for step, op in enumerate(workload.operations):
        if isinstance(op, UpdateOp):
            clock = op.new.t
            for name, index, pool in (("STRIPES", stripes, stripes_pool),
                                      ("TPR*", tprstar, tpr_pool)):
                io0 = pool.stats.physical_io
                t0 = time.perf_counter()
                index.update(op.old, op.new)
                costs[name][1] += time.perf_counter() - t0
                costs[name][0] += pool.stats.physical_io - io0
        if step % 10 == 0:
            probe = weather_cell_query(rng, clock)
            answers = {}
            for name, index, pool in (("STRIPES", stripes, stripes_pool),
                                      ("TPR*", tprstar, tpr_pool)):
                io0 = pool.stats.physical_io
                t0 = time.perf_counter()
                hits = index.query(probe)
                costs[name][1] += time.perf_counter() - t0
                costs[name][0] += pool.stats.physical_io - io0
                costs[name][2] += len(hits)
                answers[name] = sorted(hits)
            mismatches += answers["STRIPES"] != answers["TPR*"]

    print(f"\nconflict probes agree on both indexes "
          f"(mismatching probes: {mismatches})")
    print(f"{'index':8}  {'physical IO':>12}  {'CPU s':>8}  {'hits':>6}")
    for name, (io, cpu, hits) in costs.items():
        print(f"{name:8}  {io:12d}  {cpu:8.2f}  {hits:6d}")


if __name__ == "__main__":
    main()
