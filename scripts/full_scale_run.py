#!/usr/bin/env python
"""Full-paper-scale evaluation run (Figures 9-12 analog at scale=1.0).

Runs the 500K-uniform workload with the paper's exact sizes: 2048-page
buffer pool, 50K measured operations in batches of 5K, for STRIPES and the
TPR*-tree.  Takes tens of minutes under CPython; results are appended to
results/full_scale.txt as each stage completes so partial progress is
never lost.

Usage::

    python scripts/full_scale_run.py [--mix 0.5] [--n-ops 50000]
        [--paper-n 500000] [--nd ND] [--out results/full_scale.txt]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.experiments import ExperimentScale
from repro.bench.report import (
    render_batches,
    render_breakdown,
    render_cost_table,
    render_load,
)
from repro.bench.runner import make_stripes, make_tprstar, run_workload


def log(out_path: str, text: str) -> None:
    print(text, flush=True)
    with open(out_path, "a") as fh:
        fh.write(text + "\n")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--mix", type=float, default=0.5)
    parser.add_argument("--n-ops", type=int, default=50_000)
    parser.add_argument("--paper-n", type=int, default=500_000)
    parser.add_argument("--nd", type=int, default=None)
    parser.add_argument("--pool", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="results/full_scale.txt")
    args = parser.parse_args()

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    scale = ExperimentScale(scale=1.0, seed=args.seed)
    disk = scale.disk

    label = (f"N={args.paper_n} mix={args.mix} ops={args.n_ops} "
             f"pool={args.pool} nd={args.nd} seed={args.seed}")
    log(args.out, f"=== full-scale run {label} ===")

    t0 = time.time()
    spec_workload = ExperimentScale(scale=1.0, seed=args.seed)
    workload = spec_workload.workload(args.paper_n, args.mix, nd=args.nd)
    log(args.out, f"workload generated in {time.time() - t0:.0f}s: "
                  f"{len(workload.initial)} objects, {len(workload)} ops "
                  f"({workload.n_updates} upd / {workload.n_queries} qry)")

    results = {}
    for name, factory in (("STRIPES", make_stripes),
                          ("TPR*", make_tprstar)):
        t0 = time.time()
        setup = factory(workload, args.pool)
        result = run_workload(setup, workload, n_ops=args.n_ops,
                              batch_size=5_000)
        results[name] = result
        log(args.out, f"{name} done in {time.time() - t0:.0f}s "
                      f"(load {result.load.cpu_seconds:.0f}s cpu, "
                      f"{result.load.physical_io} IO; pages "
                      f"{result.pages_used})")
        log(args.out, render_cost_table(
            f"per-op costs ({label})", {name: result}, disk))

    log(args.out, render_load(f"load + size ({label})", results, disk))
    log(args.out, render_breakdown(f"Figure 10 analog ({label})",
                                   results, disk))
    log(args.out, render_cost_table(f"Figures 11/12 analog ({label})",
                                    results, disk))
    log(args.out, render_batches(f"Figure 9 analog ({label})",
                                 results, disk))
    log(args.out, "=== run complete ===")
    return 0


if __name__ == "__main__":
    sys.exit(main())
