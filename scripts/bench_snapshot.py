#!/usr/bin/env python
"""Before/after snapshot of the PR 2 vectorized query path.

Runs the same generated workload against two STRIPES configurations that
differ only in ``QuadTreeConfig.vectorized`` -- the pure-Python scalar
kernels versus the SoA/numpy ones -- and writes a JSON snapshot with
per-mode throughput (ops/sec) and p50/p95/p99 latencies taken from the
bench histograms.  The two runs must agree on every query's hit count;
the script exits non-zero if they do not, so CI can use it as a cheap
end-to-end parity gate on top of the unit-level parity suite.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py            # full size
    PYTHONPATH=src python scripts/bench_snapshot.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.bench.runner import make_stripes, run_workload
from repro.core.quadtree import QuadTreeConfig
from repro.obs import MetricsRegistry
from repro.workload.generator import WorkloadSpec, generate_workload


def run_mode(workload, vectorized: bool, pool_pages: int) -> dict:
    registry = MetricsRegistry()
    setup = make_stripes(
        workload, pool_pages,
        quadtree=QuadTreeConfig(vectorized=vectorized),
        name="STRIPES-vec" if vectorized else "STRIPES-scalar",
        registry=registry)
    result = run_workload(setup, workload, keep_per_op=True,
                          registry=registry)

    def phase(acc, hist_name: str) -> dict:
        hist = result.metrics["histograms"][hist_name]
        seconds = acc.cpu_seconds
        return {
            "ops": acc.count,
            "cpu_seconds": round(seconds, 6),
            "ops_per_sec": round(acc.count / seconds, 2) if seconds else None,
            "p50_ms": round(hist["p50"] * 1e3, 6),
            "p95_ms": round(hist["p95"] * 1e3, 6),
            "p99_ms": round(hist["p99"] * 1e3, 6),
        }

    counters = result.metrics["counters"]
    return {
        "vectorized": vectorized,
        "load_seconds": round(result.load.cpu_seconds, 6),
        "queries": phase(result.queries, "bench_query_latency_seconds"),
        "updates": phase(result.updates, "bench_update_latency_seconds"),
        "query_hits": result.query_hits,
        "pages_used": result.pages_used,
        "node_cache_decoded_hits":
            counters.get("stripes_node_cache_decoded_hits_total", 0),
        "node_cache_decoded_misses":
            counters.get("stripes_node_cache_decoded_misses_total", 0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized workload (~seconds)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_PR2.json")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.quick:
        spec = WorkloadSpec(n_objects=2_000, n_operations=400,
                            update_fraction=0.2, seed=args.seed)
        pool_pages = 1024
    else:
        spec = WorkloadSpec(n_objects=20_000, n_operations=3_000,
                            update_fraction=0.2, seed=args.seed)
        pool_pages = 4096
    workload = generate_workload(spec)

    modes = {name: run_mode(workload, vectorized, pool_pages)
             for name, vectorized in (("scalar", False), ("vectorized", True))}

    if modes["scalar"]["query_hits"] != modes["vectorized"]["query_hits"]:
        print("PARITY FAILURE: scalar and vectorized runs disagree "
              f"({modes['scalar']['query_hits']} vs "
              f"{modes['vectorized']['query_hits']} query hits)",
              file=sys.stderr)
        return 1

    speedup = (modes["vectorized"]["queries"]["ops_per_sec"]
               / modes["scalar"]["queries"]["ops_per_sec"])
    snapshot = {
        "pr": 2,
        "workload": {
            "n_objects": spec.n_objects,
            "n_operations": spec.n_operations,
            "update_fraction": spec.update_fraction,
            "seed": spec.seed,
            "quick": args.quick,
        },
        "pool_pages": pool_pages,
        "python": platform.python_version(),
        "modes": modes,
        "query_throughput_speedup": round(speedup, 2),
    }
    args.out.write_text(json.dumps(snapshot, indent=2) + "\n")

    for name, mode in modes.items():
        q = mode["queries"]
        print(f"{name:>10}: {q['ops_per_sec']:>9} qry/s   "
              f"p50={q['p50_ms']:.3f}ms p95={q['p95_ms']:.3f}ms "
              f"p99={q['p99_ms']:.3f}ms   hits={mode['query_hits']}")
    print(f"query throughput speedup: {speedup:.2f}x  -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
