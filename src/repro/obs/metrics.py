"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the pull-based hub of the observability layer.  Hot-path
code never talks to it directly: the storage/index layers keep plain
integer counters (an attribute increment costs nanoseconds) and register
*collectors* -- callbacks that copy those integers into registry
instruments right before an export.  Instrument reads therefore always
reflect the live system, while the instrumented hot paths carry no
registry reference at all.

Two export formats are supported:

* :meth:`MetricsRegistry.expose_text` -- the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, ``_bucket{le="..."}`` histogram
  series), scrape-ready;
* :meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.to_json` --
  a nested plain-data snapshot for programmatic consumption (the benchmark
  reports embed these).

Metric names follow the Prometheus convention (``snake_case``, counters
end in ``_total``); see docs/OBSERVABILITY.md for the catalogue.

Instruments and the registry are thread-safe: every mutation (``inc``,
``observe``, ``set``, instrument registration, collector registration)
happens under a per-object lock, and exports snapshot each instrument
atomically.  This is what lets ``repro.service`` worker threads observe
shared histograms directly while a scraper exports concurrently.  Pull
collectors run *outside* the registry lock, so a collector may itself
create instruments or take instrument locks without deadlocking.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")

#: Default histogram buckets for operation latencies, in seconds.  The
#: micro-operations of this codebase span ~10 us (a cached insert) to
#: ~100 ms (a cold full-space query at paper scale).
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r} (must match "
                         f"{_NAME_RE.pattern})")
    return name


def _format_number(value: float) -> str:
    """Render a sample value the way the Prometheus text format does:
    integers without a fractional part, floats via ``repr``."""
    if isinstance(value, bool):  # bools are ints; refuse the ambiguity
        raise TypeError("metric values must be numbers, not bool")
    if isinstance(value, int):
        return str(value)
    if value == math.floor(value) and abs(value) < 1e15 and math.isfinite(
            value):
        return str(int(value))
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


class Counter:
    """A monotonically non-decreasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value: float = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the running total -- for pull collectors that mirror an
        externally maintained monotonic count (e.g. ``IOStats``)."""
        with self._lock:
            self._value = value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def samples(self) -> List[Tuple[str, str, float]]:
        return [(self.name, "", self._value)]

    def to_value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value: float = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def samples(self) -> List[Tuple[str, str, float]]:
        return [(self.name, "", self._value)]

    def to_value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds; a ``+Inf`` bucket is implicit.
    :meth:`percentile` estimates quantiles by linear interpolation inside
    the containing bucket, which is exact enough for latency reporting with
    the default exponential bucket ladder.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "bucket_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, buckets: Sequence[float]
                 = DEFAULT_LATENCY_BUCKETS_S, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram buckets must be strictly increasing: {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("histogram bucket bounds must be finite "
                             "(+Inf is implicit)")
        self.bounds = bounds
        # One slot per finite bound plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (inclusive upper bounds)
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self.bucket_counts[lo] += 1
            self._sum += value
            self._count += 1

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) of the observations.

        Interpolates linearly within the containing bucket (the first
        bucket's lower edge is 0, matching latency semantics).  Returns 0.0
        with no observations; observations in the ``+Inf`` bucket clamp to
        the largest finite bound.
        """
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i]
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * max(0.0, fraction)
        return self.bounds[-1]  # pragma: no cover - cumulative == count

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0

    def samples(self) -> List[Tuple[str, str, float]]:
        out: List[Tuple[str, str, float]] = []
        with self._lock:
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, self.bucket_counts):
                cumulative += bucket_count
                out.append((f"{self.name}_bucket",
                            f'{{le="{_format_number(bound)}"}}', cumulative))
            out.append((f"{self.name}_bucket", '{le="+Inf"}', self._count))
            out.append((f"{self.name}_sum", "", self._sum))
            out.append((f"{self.name}_count", "", self._count))
        return out

    def to_value(self) -> Dict[str, object]:
        with self._lock:
            buckets: Dict[str, int] = {}
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, self.bucket_counts):
                cumulative += bucket_count
                buckets[_format_number(bound)] = cumulative
            buckets["+Inf"] = self._count
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": buckets,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }


class MetricsRegistry:
    """Named instruments plus pull collectors, with text/JSON exposition.

    Instrument accessors are get-or-create: asking twice for the same name
    returns the same object, asking with a conflicting kind raises.  All
    instruments live in one flat Prometheus-style namespace.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Callable[[], None]] = []
        # RLock: a collector running during an export may get-or-create
        # instruments, re-entering the registry from the same thread.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Instrument creation / lookup
    # ------------------------------------------------------------------ #

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(metric).kind}, not {cls.kind}")
                return metric
            metric = cls(name, help=help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
                  help: str = "") -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at
        creation; a second call's ``buckets`` argument is ignored)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or None."""
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------ #
    # Collectors
    # ------------------------------------------------------------------ #

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run before every export; collectors copy
        externally maintained counters into registry instruments."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (exports call this for you).

        The collector list is snapshotted under the lock but the callbacks
        run outside it, so a collector may create instruments."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #

    def expose_text(self) -> str:
        """The registry in the Prometheus text exposition format."""
        self.collect()
        with self._lock:
            metrics = {name: self._metrics[name]
                       for name in sorted(self._metrics)}
        lines: List[str] = []
        for name, metric in metrics.items():
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{sample_name}{labels} {_format_number(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Snapshot as ``{kind: {name: value-or-histogram-dict}}``."""
        self.collect()
        with self._lock:
            metrics = {name: self._metrics[name]
                       for name in sorted(self._metrics)}
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in metrics.items():
            out[metric.kind + "s"][name] = metric.to_value()
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`to_dict` serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def reset(self) -> None:
        """Zero every instrument (collectors stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()
