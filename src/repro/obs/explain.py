"""Structured ``explain()`` results for one traced query.

:meth:`repro.StripesIndex.explain` and :meth:`repro.tpr.TPRTree.explain`
run a single query with a :class:`repro.obs.tracer.DescentTrace` threaded
through the descent and return the objects below.  ``format()`` renders
the trace the way EXPLAIN ANALYZE renders a plan: one block per live
sub-index (STRIPES keeps up to two), then the filter/refine summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.tracer import DescentTrace, Span


@dataclass
class SubIndexExplain:
    """One sub-index's share of a traced query descent."""

    label: str
    trace: DescentTrace
    candidates: int = 0
    matched: int = 0

    @property
    def refined_away(self) -> int:
        """Candidates discarded by the exact common-instant refinement."""
        return self.candidates - self.matched


@dataclass
class QueryExplain:
    """The full trace of one query across every live sub-index."""

    query: object
    index_name: str = "STRIPES"
    refined: bool = False
    sub_indexes: List[SubIndexExplain] = field(default_factory=list)
    results: List[int] = field(default_factory=list)
    physical_reads: int = 0
    logical_reads: int = 0
    span: Optional[Span] = None

    @property
    def candidates(self) -> int:
        return sum(s.candidates for s in self.sub_indexes)

    @property
    def refined_away(self) -> int:
        return sum(s.refined_away for s in self.sub_indexes)

    def total_trace(self) -> DescentTrace:
        """All sub-index descents merged into one counter block."""
        total = DescentTrace(label="total")
        for sub in self.sub_indexes:
            total.merge(sub.trace)
        return total

    def format(self) -> str:
        """EXPLAIN-style text rendering of the traced descent."""
        lines = [f"{self.index_name} explain: {self.query!r}"]
        lines.append(
            f"  refinement: "
            f"{'exact common-instant' if self.refined else 'off'}"
            f" | IO: {self.logical_reads} logical, "
            f"{self.physical_reads} physical page reads")
        for sub in self.sub_indexes:
            lines.append(f"  descent [{sub.label}]:")
            lines.extend(sub.trace.format_lines(indent="    "))
            lines.append(f"    matched           {sub.matched}"
                         f" (refined away {sub.refined_away})")
        if len(self.sub_indexes) > 1:
            lines.append("  combined:")
            lines.extend(self.total_trace().format_lines(indent="    "))
        lines.append(f"  result: {len(self.results)} object(s)"
                     f" | candidates {self.candidates}, refined away "
                     f"{self.refined_away}")
        if self.span is not None:
            lines.append("  spans:")
            lines.extend("    " + line for line in self.span.tree_lines())
        return "\n".join(lines)
