"""Observability layer: metrics registry, tracer, and explain plumbing.

Everything here is dependency-free and *pull-based*: index and storage
classes keep plain integer counters on their hot paths and expose
``attach_metrics(registry)`` hooks that register collectors copying those
integers into the registry at export time.  With nothing attached, the
instrumentation cost is an attribute increment (counters) or a single
``is None`` check (tracing) -- see docs/OBSERVABILITY.md.

* :class:`MetricsRegistry` -- counters / gauges / fixed-bucket
  histograms, Prometheus text exposition, JSON export.
* :class:`Tracer` / :class:`Span` -- nested structured spans with events.
* :class:`DescentTrace` -- per-query descent counters (nodes visited,
  INSIDE/OVERLAP/DISJUNCT quads, records scanned).
* :class:`QueryExplain` -- the object ``StripesIndex.explain`` returns.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import DescentTrace, Span, Tracer
from repro.obs.explain import QueryExplain, SubIndexExplain

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Tracer",
    "Span",
    "DescentTrace",
    "QueryExplain",
    "SubIndexExplain",
]
