"""Structured spans and query-descent traces.

Two complementary instruments live here:

* :class:`Tracer` / :class:`Span` -- a nested-span recorder in the shape
  of a minimal OpenTelemetry: ``with tracer.span("stripes.query"):``
  opens a span, spans nest via a stack, point-in-time *events* (a leaf
  split, a sub-index rotation) attach to whatever span is open.  Index
  classes hold an optional tracer reference that is ``None`` by default,
  so the hot paths pay a single identity check when tracing is off.

* :class:`DescentTrace` -- the flat counter block filled in by one query
  descent: nodes visited, quads classified INSIDE / OVERLAP / DISJUNCT,
  children pruned or reported wholesale, leaf records scanned, and
  candidates produced.  This is what ``explain()`` prints and what the
  velocity/speed-partitioning follow-up papers need as per-query
  statistics.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One timed, named unit of work with attributes, events, children."""

    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    events: List[Tuple[str, Dict[str, object]]] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)
    start_s: float = 0.0
    duration_s: float = 0.0

    def add_event(self, name: str, **attrs: object) -> None:
        self.events.append((name, attrs))

    def tree_lines(self, indent: int = 0) -> List[str]:
        """Pretty-print the span subtree, one line per span/event."""
        pad = "  " * indent
        attrs = "".join(f" {k}={v}" for k, v in self.attrs.items())
        lines = [f"{pad}{self.name}{attrs} ({self.duration_s * 1e3:.3f} ms)"]
        for name, event_attrs in self.events:
            extra = "".join(f" {k}={v}" for k, v in event_attrs.items())
            lines.append(f"{pad}  * {name}{extra}")
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines


class Tracer:
    """Records a forest of nested spans.

    Spans are cheap plain objects; a tracer is meant to be attached for
    one traced operation (or a debugging session) and read back via
    :attr:`roots`.

    Thread-safe: the open-span stack is *thread-local* (each thread nests
    its own spans; a worker's spans never become children of another
    thread's span), while the shared :attr:`roots` / :attr:`orphan_events`
    lists are guarded by a lock.  Mutating an individual :class:`Span`
    (``add_event`` on the thread that opened it) needs no lock because a
    span is only written by its opening thread while open.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.roots: List[Span] = []
        #: Events recorded while no span was open (e.g. a sub-index
        #: rotation triggered by a plain update).
        self.orphan_events: List[Tuple[str, Dict[str, object]]] = []
        self._local = threading.local()
        self._lock = threading.RLock()

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's open-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost span open *on the calling thread*, or None."""
        stack = self._stack
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block."""
        span = Span(name, dict(attrs))
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        span.start_s = self._clock()
        try:
            yield span
        finally:
            span.duration_s = self._clock() - span.start_s
            stack.pop()

    def event(self, name: str, **attrs: object) -> None:
        """Attach a point-in-time event to the span open on the calling
        thread; with no span open the event is kept in
        :attr:`orphan_events` instead."""
        stack = self._stack
        if stack:
            stack[-1].add_event(name, **attrs)
        else:
            with self._lock:
                self.orphan_events.append((name, attrs))

    def reset(self) -> None:
        """Drop all recorded spans and orphan events (open spans keep
        recording)."""
        with self._lock:
            self.roots = []
            self.orphan_events = []

    def format(self) -> str:
        """All recorded root spans (and orphan events) as an indented
        text tree."""
        with self._lock:
            roots = list(self.roots)
            orphans = list(self.orphan_events)
        lines: List[str] = []
        for root in roots:
            lines.extend(root.tree_lines())
        for name, attrs in orphans:
            extra = "".join(f" {k}={v}" for k, v in attrs.items())
            lines.append(f"* {name}{extra}")
        return "\n".join(lines)


@dataclass
class DescentTrace:
    """Counters filled in by one index descent (query or explain).

    The quad counters are per *plane quad* classification (4 per dual
    plane per visited non-leaf, under the Section 4.6.4 shared-
    classification optimisation); the children counters are per child
    subtree after combining its per-plane codes.  ``tpbr_tests`` is the
    TPR-tree analogue (one time-parameterized rectangle intersection test
    per child).
    """

    label: str = ""
    nonleaf_visits: int = 0
    leaf_visits: int = 0
    max_depth: int = 0
    quads_inside: int = 0
    quads_overlap: int = 0
    quads_disjunct: int = 0
    children_pruned: int = 0
    children_reported: int = 0
    children_recursed: int = 0
    entries_scanned: int = 0
    entries_reported: int = 0
    candidates: int = 0
    tpbr_tests: int = 0

    _COUNTER_FIELDS = ("nonleaf_visits", "leaf_visits", "quads_inside",
                       "quads_overlap", "quads_disjunct", "children_pruned",
                       "children_reported", "children_recursed",
                       "entries_scanned", "entries_reported", "candidates",
                       "tpbr_tests")

    @property
    def nodes_visited(self) -> int:
        return self.nonleaf_visits + self.leaf_visits

    @property
    def quads_classified(self) -> int:
        return self.quads_inside + self.quads_overlap + self.quads_disjunct

    def merge(self, other: "DescentTrace") -> "DescentTrace":
        """Fold ``other``'s counters into self (``max_depth`` maxes)."""
        for name in self._COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.max_depth = max(self.max_depth, other.max_depth)
        return self

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "label"}

    def format_lines(self, indent: str = "  ") -> List[str]:
        """Human-readable counter block (used by ``explain`` output)."""
        rows = [
            ("nodes visited", f"{self.nodes_visited} "
             f"({self.nonleaf_visits} non-leaf + {self.leaf_visits} leaf, "
             f"max depth {self.max_depth})"),
            ("quads classified", f"{self.quads_classified} "
             f"(INSIDE {self.quads_inside} / OVERLAP {self.quads_overlap} "
             f"/ DISJUNCT {self.quads_disjunct})"),
            ("children", f"pruned {self.children_pruned}, reported whole "
             f"{self.children_reported}, recursed {self.children_recursed}"),
            ("leaf entries", f"scanned {self.entries_scanned}, reported "
             f"without scan {self.entries_reported}"),
            ("candidates", str(self.candidates)),
        ]
        if self.tpbr_tests:
            rows.insert(2, ("TPBR tests", str(self.tpbr_tests)))
        width = max(len(label) for label, _ in rows)
        return [f"{indent}{label.ljust(width)}  {value}"
                for label, value in rows]
