"""Operation stream model.

A :class:`Workload` is an initial bulk load (one insert per object at time
zero) followed by a timestamp-ordered stream of update and query
operations, mirroring how the paper feeds its indexes (Section 5.2: "the
workload generator assigns initial positions for each moving object in the
system, and then generates a workload which is a mix of update and query
operations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Union

from repro.query.types import MovingObjectState, PredictiveQuery


@dataclass(frozen=True)
class InsertOp:
    """Insert a brand-new object (used for the initial load)."""

    state: MovingObjectState

    @property
    def timestamp(self) -> float:
        return self.state.t


@dataclass(frozen=True)
class UpdateOp:
    """An object reports new motion parameters along with its previous ones
    (which locate the old index entry -- Section 4.5)."""

    old: MovingObjectState
    new: MovingObjectState

    @property
    def timestamp(self) -> float:
        return self.new.t


@dataclass(frozen=True)
class QueryOp:
    """A predictive query issued at ``issued_at`` (current time)."""

    query: PredictiveQuery
    issued_at: float

    @property
    def timestamp(self) -> float:
        return self.issued_at


Operation = Union[InsertOp, UpdateOp, QueryOp]


@dataclass
class Workload:
    """Initial load plus a timestamp-ordered operation stream."""

    initial: List[MovingObjectState]
    operations: List[Operation] = field(default_factory=list)
    #: Native-space bounds the generator guaranteed (per dimension).
    pmax: tuple = ()
    vmax: tuple = ()

    @property
    def n_updates(self) -> int:
        return sum(1 for op in self.operations if isinstance(op, UpdateOp))

    @property
    def n_queries(self) -> int:
        return sum(1 for op in self.operations if isinstance(op, QueryOp))

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def check_ordered(self) -> bool:
        """True when operation timestamps are non-decreasing."""
        stream = self.operations
        return all(stream[i].timestamp <= stream[i + 1].timestamp
                   for i in range(len(stream) - 1))
