"""Moving-object workload generation.

Reimplementation of the workload generator of Saltenis et al. (used by the
paper, Section 5.2): objects moving in a two-dimensional space issue
position/velocity updates at random intervals, interleaved with predictive
queries.  Both the *uniform* and the *network-skewed* (``ND`` destinations)
data distributions are supported, with the paper's default parameters.
"""

from repro.workload.generator import WorkloadSpec, generate_workload
from repro.workload.network import RouteNetwork
from repro.workload.operations import (
    InsertOp,
    Operation,
    QueryOp,
    UpdateOp,
    Workload,
)

__all__ = [
    "WorkloadSpec",
    "generate_workload",
    "RouteNetwork",
    "Workload",
    "Operation",
    "InsertOp",
    "UpdateOp",
    "QueryOp",
]
