"""The workload generator (Section 5.2).

Reimplements the generator of Saltenis et al. from its published
description, with the paper's defaults:

* ``N`` objects in a square space whose side scales as ``sqrt(N / 100K) *
  1000 km`` so density is constant across data sizes;
* speeds uniform in ``[0, 3]`` km/min, directions random (uniform mode) or
  along routes between ``ND`` destinations (skewed mode);
* every object re-reports its motion at intervals uniform in
  ``[0, 2*UI]`` with ``UI = 60``; the simulated horizon is 600 time units;
* the operation stream mixes updates and queries at a configurable ratio
  (80-20 / 50-50 / 20-80 in the evaluation); queries are 60 % time-slice,
  20 % window, 20 % moving, spatial extent 0.25 % of the space, temporal
  range 40.

Between updates, uniform-mode objects bounce off the space boundary
(coordinate folding), so reported positions always lie inside
``[0, pmax]``; network-mode objects follow routes hub to hub.  Reported
*old* parameters are exactly the previously inserted state, as required by
the delete protocol (Section 4.5).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    PredictiveQuery,
    TimeSliceQuery,
    WindowQuery,
)
from repro.workload.network import NetworkTraveller, RouteNetwork
from repro.workload.operations import QueryOp, UpdateOp, Workload


@dataclass(frozen=True)
class WorkloadSpec:
    """Generator parameters; defaults follow Section 5.2.

    ``d`` generalises the generator beyond the paper's two-dimensional
    workloads (used by the dimensionality-sweep experiment); the skewed
    network mode is inherently two-dimensional and requires ``d == 2``.
    """

    d: int = 2
    n_objects: int = 10_000
    duration: float = 600.0
    update_interval: float = 60.0          # UI
    update_fraction: float = 0.5           # updates share of the op stream
    query_mix: Tuple[float, float, float] = (0.6, 0.2, 0.2)
    query_temporal_range: float = 40.0     # W
    query_spatial_fraction: float = 0.0025  # of the space's area
    nd: Optional[int] = None               # destinations; None = uniform
    max_speed: float = 3.0                 # km/min
    space_side: Optional[float] = None     # override the density scaling
    reference_objects: int = 100_000       # paper: 100K objects ...
    reference_side: float = 1000.0         # ... in a 1000x1000 km space
    n_operations: Optional[int] = None     # stop after this many ops
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ValueError("d must be >= 1")
        if self.n_objects < 1:
            raise ValueError("n_objects must be >= 1")
        if not 0.0 < self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in (0, 1]")
        if abs(sum(self.query_mix) - 1.0) > 1e-9:
            raise ValueError(f"query_mix must sum to 1, got {self.query_mix}")
        if self.nd is not None and self.nd < 2:
            raise ValueError("nd must be >= 2 for skewed workloads")
        if self.nd is not None and self.d != 2:
            raise ValueError("network-skewed workloads are two-dimensional")

    @property
    def side(self) -> float:
        """Space side length, scaled to keep the paper's object density."""
        if self.space_side is not None:
            return self.space_side
        return self.reference_side * math.sqrt(
            self.n_objects / self.reference_objects)

    @property
    def pmax(self) -> Tuple[float, ...]:
        return (self.side,) * self.d

    @property
    def vmax(self) -> Tuple[float, ...]:
        return (self.max_speed,) * self.d

    @property
    def query_side(self) -> float:
        """Query rectangle side (0.25 % of area -> 5 % of the side)."""
        return math.sqrt(self.query_spatial_fraction) * self.side


def _reflect(value: float, side: float) -> float:
    """Fold a coordinate into ``[0, side]`` by mirroring at the walls."""
    if side <= 0.0:
        raise ValueError("side must be positive")
    period = 2.0 * side
    value %= period
    return period - value if value > side else value


def _random_direction(rng: random.Random, d: int) -> Tuple[float, ...]:
    """A uniformly random unit vector in ``d`` dimensions."""
    if d == 1:
        return (1.0,) if rng.random() < 0.5 else (-1.0,)
    if d == 2:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        return (math.cos(angle), math.sin(angle))
    while True:
        components = [rng.gauss(0.0, 1.0) for _ in range(d)]
        norm = math.sqrt(sum(c * c for c in components))
        if norm > 1e-12:
            return tuple(c / norm for c in components)


@dataclass
class _ObjectSim:
    """Simulation state of one object between updates."""

    reported: MovingObjectState
    traveller: Optional[NetworkTraveller] = None


@dataclass
class _QueryFactory:
    """Draws queries with the paper's default mix and shapes."""

    spec: WorkloadSpec
    rng: random.Random

    def make(self, now: float) -> PredictiveQuery:
        spec, rng = self.spec, self.rng
        side_q = spec.query_side
        low = tuple(rng.uniform(0.0, spec.side - side_q)
                    for _ in range(spec.d))
        high = tuple(l + side_q for l in low)
        t1 = now + rng.uniform(0.0, spec.query_temporal_range)
        roll = rng.random()
        ts_share, win_share, _ = spec.query_mix
        if roll < ts_share:
            return TimeSliceQuery(low, high, t1)
        t2 = rng.uniform(t1, now + spec.query_temporal_range)
        if roll < ts_share + win_share or t2 == t1:
            return WindowQuery(low, high, t1, t2)
        direction = _random_direction(rng, spec.d)
        speed = rng.uniform(0.0, spec.max_speed)
        shift = tuple(u * speed * (t2 - t1) for u in direction)
        return MovingQuery(low, high,
                           tuple(l + s for l, s in zip(low, shift)),
                           tuple(h + s for h, s in zip(high, shift)),
                           t1, t2)


class _Generator:
    """Event-driven simulation producing the operation stream."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.network = (RouteNetwork.generate(spec.nd, spec.pmax, self.rng)
                        if spec.nd is not None else None)
        self.queries = _QueryFactory(spec, self.rng)

    def _random_velocity(self) -> Tuple[float, ...]:
        direction = _random_direction(self.rng, self.spec.d)
        speed = self.rng.uniform(0.0, self.spec.max_speed)
        return tuple(u * speed for u in direction)

    def _initial_object(self, oid: int) -> _ObjectSim:
        rng, spec = self.rng, self.spec
        if self.network is None:
            pos = tuple(rng.uniform(0.0, spec.side) for _ in range(spec.d))
            return _ObjectSim(MovingObjectState(
                oid, pos, self._random_velocity(), 0.0))
        # Network mode: start somewhere along a random route.
        origin = self.network.random_destination(rng)
        dest = self.network.random_destination(rng, exclude=origin)
        frac = rng.random()
        ox, oy = self.network.destinations[origin]
        dx, dy = self.network.destinations[dest]
        pos = (ox + (dx - ox) * frac, oy + (dy - oy) * frac)
        traveller = NetworkTraveller(pos, dest,
                                     rng.uniform(0.0, spec.max_speed))
        vel = traveller.velocity(self.network)
        return _ObjectSim(MovingObjectState(oid, pos, vel, 0.0), traveller)

    def _advance(self, sim: _ObjectSim, now: float) -> MovingObjectState:
        """New reported state at ``now`` with fresh motion parameters."""
        rng, spec = self.rng, self.spec
        dt = now - sim.reported.t
        if self.network is None:
            pos = tuple(
                _reflect(p + v * dt, spec.side)
                for p, v in zip(sim.reported.pos, sim.reported.vel))
            return MovingObjectState(sim.reported.oid, pos,
                                     self._random_velocity(), now)
        sim.traveller.advance(dt, self.network, rng)
        sim.traveller.speed = rng.uniform(0.0, spec.max_speed)
        return MovingObjectState(sim.reported.oid, sim.traveller.position,
                                 sim.traveller.velocity(self.network), now)

    def generate(self) -> Workload:
        spec, rng = self.spec, self.rng
        sims = [self._initial_object(oid) for oid in range(spec.n_objects)]
        workload = Workload(
            initial=[sim.reported for sim in sims],
            pmax=spec.pmax, vmax=spec.vmax)
        heap = [(rng.uniform(0.0, 2.0 * spec.update_interval), oid)
                for oid in range(spec.n_objects)]
        heapq.heapify(heap)
        # Deterministic fractional interleave: every update is followed by
        # queries_per_update queries on average, issued at the same clock.
        queries_per_update = ((1.0 - spec.update_fraction)
                              / spec.update_fraction)
        carry = 0.0
        ops = workload.operations
        while heap:
            now, oid = heapq.heappop(heap)
            if now > spec.duration:
                break
            if spec.n_operations is not None and \
                    len(ops) >= spec.n_operations:
                break
            sim = sims[oid]
            new_state = self._advance(sim, now)
            ops.append(UpdateOp(sim.reported, new_state))
            sim.reported = new_state
            heapq.heappush(
                heap, (now + rng.uniform(0.0, 2.0 * spec.update_interval),
                       oid))
            carry += queries_per_update
            while carry >= 1.0:
                ops.append(QueryOp(self.queries.make(now), now))
                carry -= 1.0
        if spec.n_operations is not None:
            del ops[spec.n_operations:]
        return workload


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Generate a reproducible workload for ``spec`` (same seed, same
    stream)."""
    return _Generator(spec).generate()
