"""Destination networks for skewed workloads.

The skewed workloads of Section 5.2/5.5 move objects through "a network of
routes connecting a number of destinations, ND"; smaller ND means heavier
skew (the evaluation uses ND = 20, 40, 60).  :class:`RouteNetwork` places
the destinations uniformly and routes objects along straight segments
between them: an object travels towards its current destination and, on
arrival, continues towards a new randomly chosen one.  Positions therefore
concentrate on the ``O(ND^2)`` line segments between hubs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

Point = Tuple[float, float]


@dataclass
class RouteNetwork:
    """A fully connected set of destination hubs in a rectangular space."""

    destinations: List[Point]

    @classmethod
    def generate(cls, nd: int, pmax: Tuple[float, float],
                 rng: random.Random) -> "RouteNetwork":
        """Place ``nd`` destinations uniformly in ``[0, pmax]``."""
        if nd < 2:
            raise ValueError(f"a route network needs >= 2 destinations, "
                             f"got {nd}")
        points = [(rng.uniform(0.0, pmax[0]), rng.uniform(0.0, pmax[1]))
                  for _ in range(nd)]
        return cls(points)

    @property
    def nd(self) -> int:
        return len(self.destinations)

    def random_destination(self, rng: random.Random,
                           exclude: int = -1) -> int:
        """Index of a random destination, optionally excluding one hub."""
        while True:
            idx = rng.randrange(self.nd)
            if idx != exclude:
                return idx

    def direction_to(self, position: Point, dest_idx: int) -> Point:
        """Unit vector from ``position`` towards destination ``dest_idx``
        (zero vector when already there)."""
        dx = self.destinations[dest_idx][0] - position[0]
        dy = self.destinations[dest_idx][1] - position[1]
        dist = math.hypot(dx, dy)
        if dist == 0.0:
            return (0.0, 0.0)
        return (dx / dist, dy / dist)

    def distance_to(self, position: Point, dest_idx: int) -> float:
        dx = self.destinations[dest_idx][0] - position[0]
        dy = self.destinations[dest_idx][1] - position[1]
        return math.hypot(dx, dy)


@dataclass
class NetworkTraveller:
    """State of one object moving through a :class:`RouteNetwork`."""

    position: Point
    dest_idx: int
    speed: float

    def velocity(self, network: RouteNetwork) -> Point:
        ux, uy = network.direction_to(self.position, self.dest_idx)
        return (ux * self.speed, uy * self.speed)

    def advance(self, dt: float, network: RouteNetwork,
                rng: random.Random) -> None:
        """Move along routes for ``dt`` time units; passing through a hub
        re-targets the traveller at a new random destination."""
        remaining = self.speed * dt
        while remaining > 0.0:
            dist = network.distance_to(self.position, self.dest_idx)
            if dist <= remaining:
                self.position = network.destinations[self.dest_idx]
                remaining -= dist
                self.dest_idx = network.random_destination(
                    rng, exclude=self.dest_idx)
                if dist == 0.0 and remaining > 0.0:
                    # Degenerate hub pair at the same point: stop here to
                    # guarantee termination.
                    break
            else:
                ux, uy = network.direction_to(self.position, self.dest_idx)
                self.position = (self.position[0] + ux * remaining,
                                 self.position[1] + uy * remaining)
                remaining = 0.0
