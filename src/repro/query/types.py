"""Moving-object states and the three predictive query types.

All coordinates are tuples of length ``d`` (the native-space dimensionality,
2 in every experiment of the paper).  The most general query type is the
moving query; window queries are moving queries whose two rectangles
coincide, and time-slice queries are window queries with ``t_low == t_high``
(Section 4.6).  :meth:`as_moving` canonicalises any query to that general
form, which is what the index search code consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

Vector = Tuple[float, ...]


def _check_vector_pair(low: Vector, high: Vector, what: str) -> None:
    if len(low) != len(high):
        raise ValueError(f"{what}: bound dimensionalities differ "
                         f"({len(low)} vs {len(high)})")
    for lo, hi in zip(low, high):
        if lo > hi:
            raise ValueError(f"{what}: lower bound {lo} exceeds upper {hi}")


@dataclass(frozen=True)
class MovingObjectState:
    """A predicted trajectory: position ``pos`` and velocity ``vel`` observed
    at time ``t``; the object is predicted at ``pos + vel * (t' - t)``."""

    oid: int
    pos: Vector
    vel: Vector
    t: float

    def __post_init__(self) -> None:
        if len(self.pos) != len(self.vel):
            raise ValueError(
                f"object {self.oid}: position is {len(self.pos)}-d but "
                f"velocity is {len(self.vel)}-d"
            )

    @property
    def d(self) -> int:
        return len(self.pos)

    def position_at(self, when: float) -> Vector:
        """Predicted position at time ``when`` under the linear model."""
        dt = when - self.t
        return tuple(p + v * dt for p, v in zip(self.pos, self.vel))


@dataclass(frozen=True)
class TimeSliceQuery:
    """All objects inside ``[low, high]`` at future instant ``t`` (Q1)."""

    low: Vector
    high: Vector
    t: float

    def __post_init__(self) -> None:
        _check_vector_pair(self.low, self.high, "time-slice query")

    @property
    def d(self) -> int:
        return len(self.low)

    def as_moving(self) -> "MovingQuery":
        return MovingQuery(self.low, self.high, self.low, self.high,
                           self.t, self.t)


@dataclass(frozen=True)
class WindowQuery:
    """All objects crossing static ``[low, high]`` during
    ``[t_low, t_high]`` (Q2)."""

    low: Vector
    high: Vector
    t_low: float
    t_high: float

    def __post_init__(self) -> None:
        _check_vector_pair(self.low, self.high, "window query")
        if self.t_low > self.t_high:
            raise ValueError(
                f"window query: t_low {self.t_low} exceeds t_high "
                f"{self.t_high}"
            )

    @property
    def d(self) -> int:
        return len(self.low)

    def as_moving(self) -> "MovingQuery":
        return MovingQuery(self.low, self.high, self.low, self.high,
                           self.t_low, self.t_high)


@dataclass(frozen=True)
class MovingQuery:
    """All objects crossing the moving rectangle that interpolates from
    ``[low1, high1]`` at ``t_low`` to ``[low2, high2]`` at ``t_high`` (Q3).

    The query body is the (d+1)-dimensional trapezoid connecting the two
    rectangles (Section 4.6).
    """

    low1: Vector
    high1: Vector
    low2: Vector
    high2: Vector
    t_low: float
    t_high: float

    def __post_init__(self) -> None:
        _check_vector_pair(self.low1, self.high1, "moving query (rect 1)")
        _check_vector_pair(self.low2, self.high2, "moving query (rect 2)")
        if len(self.low1) != len(self.low2):
            raise ValueError("moving query: rectangle dimensionalities differ")
        if self.t_low > self.t_high:
            raise ValueError(
                f"moving query: t_low {self.t_low} exceeds t_high "
                f"{self.t_high}"
            )
        if self.t_low == self.t_high and (self.low1 != self.low2
                                          or self.high1 != self.high2):
            raise ValueError(
                "moving query with t_low == t_high must have identical "
                "rectangles (the trapezoid degenerates to a single instant)"
            )

    @property
    def d(self) -> int:
        return len(self.low1)

    def as_moving(self) -> "MovingQuery":
        return self

    def bounds_at(self, when: float) -> tuple[Vector, Vector]:
        """The query rectangle's (low, high) at time ``when`` in
        ``[t_low, t_high]``, by linear interpolation."""
        if self.t_high == self.t_low:
            return self.low1, self.high1
        frac = (when - self.t_low) / (self.t_high - self.t_low)
        low = tuple(a + (b - a) * frac for a, b in zip(self.low1, self.low2))
        high = tuple(a + (b - a) * frac
                     for a, b in zip(self.high1, self.high2))
        return low, high


PredictiveQuery = Union[TimeSliceQuery, WindowQuery, MovingQuery]
