"""Exact native-space matching of linear trajectories against queries.

This module is the correctness oracle of the repository: the linear-scan
baseline answers queries with it, the TPR/TPR*-trees use it for leaf-level
filtering, and every index is property-tested against it.

A trajectory matches a moving query iff there exists a time ``t`` in
``[t_low, t_high]`` at which the object's predicted position lies inside the
query rectangle at ``t`` in every dimension.  Because positions and
rectangle edges are all linear in ``t``, the feasible times per dimension
form a closed interval; the match test intersects those intervals.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.query.types import MovingObjectState, PredictiveQuery

Interval = Tuple[float, float]


def linear_nonneg_interval(a: float, b: float, t_low: float,
                           t_high: float) -> Optional[Interval]:
    """Solve ``a + b*t >= 0`` for ``t`` in ``[t_low, t_high]``.

    Returns the (closed) sub-interval where the inequality holds, or ``None``
    when it holds nowhere in the range.
    """
    if t_low > t_high:
        return None
    if b == 0.0:
        return (t_low, t_high) if a >= 0.0 else None
    root = -a / b
    if b > 0.0:
        lo, hi = max(t_low, root), t_high
    else:
        lo, hi = t_low, min(t_high, root)
    if lo > hi:
        return None
    return (lo, hi)


def intersect_intervals(
        intervals: Iterable[Optional[Interval]]) -> Optional[Interval]:
    """Intersect intervals; ``None`` inputs (or an empty intersection)
    yield ``None``."""
    lo, hi = float("-inf"), float("inf")
    for interval in intervals:
        if interval is None:
            return None
        lo = max(lo, interval[0])
        hi = min(hi, interval[1])
        if lo > hi:
            return None
    return (lo, hi)


def trajectory_match_interval(p0: Sequence[float], pv: Sequence[float],
                              query: PredictiveQuery) -> Optional[Interval]:
    """Feasible-time interval for the trajectory ``p_i(t) = p0_i + pv_i t``.

    This is the shared core of the exact predicate: both native-space
    object states and dual-space index entries reduce to per-dimension
    ``(p0, pv)`` line parameters.  For each dimension ``i`` the
    constraints are::

        p_i(t) - ql_i(t) >= 0      and      qh_i(t) - p_i(t) >= 0

    where the query edges ``ql_i``/``qh_i`` interpolate linearly between
    the query's two rectangles.  Returns the common interval inside
    ``[t_low, t_high]``, or ``None`` when the trajectory never satisfies
    every dimension at the same instant.
    """
    moving = query.as_moving()
    if len(p0) != moving.d:
        raise ValueError(
            f"trajectory is {len(p0)}-d but query is {moving.d}-d")
    t_low, t_high = moving.t_low, moving.t_high
    duration = t_high - t_low
    intervals: list[Optional[Interval]] = []
    for i in range(moving.d):
        if duration > 0.0:
            ql_v = (moving.low2[i] - moving.low1[i]) / duration
            qh_v = (moving.high2[i] - moving.high1[i]) / duration
        else:
            ql_v = qh_v = 0.0
        ql0 = moving.low1[i] - ql_v * t_low
        qh0 = moving.high1[i] - qh_v * t_low
        # p(t) >= ql(t)  ->  (p0 - ql0) + (pv - ql_v) t >= 0
        interval = linear_nonneg_interval(p0[i] - ql0, pv[i] - ql_v,
                                          t_low, t_high)
        if interval is None:
            return None
        intervals.append(interval)
        # qh(t) >= p(t)  ->  (qh0 - p0) + (qh_v - pv) t >= 0
        interval = linear_nonneg_interval(qh0 - p0[i], qh_v - pv[i],
                                          t_low, t_high)
        if interval is None:
            return None
        intervals.append(interval)
    return intersect_intervals(intervals)


class MovingQueryEvaluator:
    """Precompiled exact predicate for one query.

    Query-edge line coefficients are derived once; each trajectory test is
    then a handful of float operations.  This is the per-entry refinement
    step of both STRIPES and the TPR trees, so it sits on the hottest query
    path of the whole library.
    """

    __slots__ = ("t_low", "t_high", "d", "_coeffs")

    def __init__(self, query: PredictiveQuery):
        moving = query.as_moving()
        self.t_low = moving.t_low
        self.t_high = moving.t_high
        self.d = moving.d
        duration = self.t_high - self.t_low
        coeffs = []
        for i in range(self.d):
            if duration > 0.0:
                ql_v = (moving.low2[i] - moving.low1[i]) / duration
                qh_v = (moving.high2[i] - moving.high1[i]) / duration
            else:
                ql_v = qh_v = 0.0
            coeffs.append((moving.low1[i] - ql_v * self.t_low, ql_v,
                           moving.high1[i] - qh_v * self.t_low, qh_v))
        self._coeffs = tuple(coeffs)

    def matches_trajectory(self, p0: Sequence[float],
                           pv: Sequence[float]) -> bool:
        """True when ``p(t) = p0 + pv t`` is inside the query rectangle at
        some common instant of the query's time range."""
        lo = self.t_low
        hi = self.t_high
        for i, (ql0, ql_v, qh0, qh_v) in enumerate(self._coeffs):
            # p(t) >= ql(t):  (p0 - ql0) + (pv - ql_v) t >= 0
            a = p0[i] - ql0
            b = pv[i] - ql_v
            if b > 0.0:
                root = -a / b
                if root > lo:
                    lo = root
            elif b < 0.0:
                root = -a / b
                if root < hi:
                    hi = root
            elif a < 0.0:
                return False
            if lo > hi:
                return False
            # qh(t) >= p(t):  (qh0 - p0) + (qh_v - pv) t >= 0
            a = qh0 - p0[i]
            b = qh_v - pv[i]
            if b > 0.0:
                root = -a / b
                if root > lo:
                    lo = root
            elif b < 0.0:
                root = -a / b
                if root < hi:
                    hi = root
            elif a < 0.0:
                return False
            if lo > hi:
                return False
        return True

    def matches_state(self, obj: MovingObjectState) -> bool:
        """Convenience wrapper for object states."""
        p0 = [p - v * obj.t for p, v in zip(obj.pos, obj.vel)]
        return self.matches_trajectory(p0, obj.vel)

    def matches_batch(self, p0s: np.ndarray, pvs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`matches_trajectory` over trajectory columns.

        ``p0s``/``pvs`` are ``(n, d)`` float64 arrays of per-trajectory
        line parameters.  The kernel mirrors the scalar interval
        intersection operation for operation (same divisions, same
        max/min updates), so the returned boolean mask is bit-exactly
        ``[matches_trajectory(p0s[k], pvs[k]) for k in range(n)]``: the
        scalar code only early-exits, which never changes the final
        truth value because ``lo`` is non-decreasing and ``hi`` is
        non-increasing.
        """
        n = p0s.shape[0]
        lo = np.full(n, self.t_low, dtype=np.float64)
        hi = np.full(n, self.t_high, dtype=np.float64)
        for i, (ql0, ql_v, qh0, qh_v) in enumerate(self._coeffs):
            for a, b in ((p0s[:, i] - ql0, pvs[:, i] - ql_v),
                         (qh0 - p0s[:, i], qh_v - pvs[:, i])):
                # root is only consulted where b != 0, so 0/0 NaNs and
                # x/0 infinities in the masked-out lanes are harmless.
                with np.errstate(divide="ignore", invalid="ignore"):
                    root = -a / b
                lo = np.where(b > 0.0, np.maximum(lo, root), lo)
                hi = np.where(b < 0.0, np.minimum(hi, root), hi)
                # b == 0 with a < 0: constraint holds nowhere.
                hi = np.where((b == 0.0) & (a < 0.0), -np.inf, hi)
        return lo <= hi


def match_interval(obj: MovingObjectState,
                   query: PredictiveQuery) -> Optional[Interval]:
    """The closed interval of times at which ``obj`` is inside the query
    rectangle, clipped to the query's time range; ``None`` if empty."""
    # Object position: p_i(t) = pos_i + vel_i * (t - obj.t)
    p0 = [p - v * obj.t for p, v in zip(obj.pos, obj.vel)]
    return trajectory_match_interval(p0, obj.vel, query)


def matches(obj: MovingObjectState, query: PredictiveQuery) -> bool:
    """True iff the object's predicted trajectory satisfies the query."""
    return match_interval(obj, query) is not None


def matches_with_tolerance(obj: MovingObjectState, query: PredictiveQuery,
                           eps: float) -> tuple[bool, bool]:
    """Exact match plus a boundary flag for float-robust comparisons.

    Returns ``(matched, on_boundary)``.  ``on_boundary`` is True when
    expanding or shrinking the query rectangles by ``eps`` flips the
    answer -- such objects sit within rounding distance of the query
    boundary, and index implementations that round coordinates (e.g. the
    paper's 4-byte floats) may legitimately classify them either way.
    Comparison tests treat boundary objects as "don't care".
    """
    moving = query.as_moving()
    matched = matches(obj, moving)
    grown = type(moving)(
        tuple(x - eps for x in moving.low1),
        tuple(x + eps for x in moving.high1),
        tuple(x - eps for x in moving.low2),
        tuple(x + eps for x in moving.high2),
        moving.t_low, moving.t_high,
    )
    shrunk_low1 = tuple(x + eps for x in moving.low1)
    shrunk_high1 = tuple(x - eps for x in moving.high1)
    shrunk_low2 = tuple(x + eps for x in moving.low2)
    shrunk_high2 = tuple(x - eps for x in moving.high2)
    degenerate = any(lo > hi for lo, hi in zip(shrunk_low1, shrunk_high1))
    degenerate = degenerate or any(
        lo > hi for lo, hi in zip(shrunk_low2, shrunk_high2))
    if degenerate:
        shrunk_matched = False
    else:
        shrunk = type(moving)(shrunk_low1, shrunk_high1,
                              shrunk_low2, shrunk_high2,
                              moving.t_low, moving.t_high)
        shrunk_matched = matches(obj, shrunk)
    grown_matched = matches(obj, grown)
    on_boundary = grown_matched != shrunk_matched
    return matched, on_boundary
