"""Query model: moving-object states, predictive query types, and exact
native-space matching predicates.

The three query classes follow Section 2.1 / 4.6 of the paper:

* :class:`repro.query.types.TimeSliceQuery` -- objects inside a rectangle at
  one future instant.
* :class:`repro.query.types.WindowQuery` -- objects crossing a static
  rectangle at any time inside a future window.
* :class:`repro.query.types.MovingQuery` -- objects crossing a rectangle
  that itself moves (a (d+1)-dimensional trapezoid).

:mod:`repro.query.predicates` evaluates these queries *exactly* against a
linear trajectory; every index in this repository is validated against it.
"""

from repro.query.predicates import matches, matches_with_tolerance
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    PredictiveQuery,
    TimeSliceQuery,
    WindowQuery,
)

__all__ = [
    "MovingObjectState",
    "PredictiveQuery",
    "TimeSliceQuery",
    "WindowQuery",
    "MovingQuery",
    "matches",
    "matches_with_tolerance",
]
