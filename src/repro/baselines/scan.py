"""Exact linear-scan baseline.

:class:`ScanIndex` stores every live trajectory in memory and answers
queries by evaluating the exact native-space predicate
(:func:`repro.query.predicates.matches`) against each one.  It deliberately
mirrors STRIPES' lifetime protocol -- entries whose update timestamp falls
two or more lifetime windows behind the newest update are expired -- so
that its result sets are directly comparable with the STRIPES and TPR
indexes in tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.query.predicates import matches
from repro.query.types import MovingObjectState, PredictiveQuery


class ScanIndex:
    """Correctness oracle with the same update/query interface as the
    real indexes."""

    def __init__(self, lifetime: float):
        if lifetime <= 0:
            raise ValueError("lifetime must be positive")
        self.lifetime = lifetime
        # window -> (oid -> list of states); a list per oid keeps the
        # oracle honest even if a caller inserts duplicate object ids.
        self._windows: Dict[int, Dict[int, List[MovingObjectState]]] = {}

    def _window(self, t: float) -> int:
        if t < 0:
            raise ValueError(f"timestamps must be non-negative, got {t}")
        return int(t // self.lifetime)

    def _retire_expired(self, newest: int) -> None:
        for window in [w for w in self._windows if w < newest - 1]:
            del self._windows[window]

    @property
    def live_windows(self) -> List[int]:
        return sorted(self._windows)

    def __len__(self) -> int:
        return sum(len(states)
                   for window in self._windows.values()
                   for states in window.values())

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, obj: MovingObjectState) -> None:
        window = self._window(obj.t)
        self._windows.setdefault(window, {}).setdefault(
            obj.oid, []).append(obj)
        self._retire_expired(newest=max(self._windows))

    def delete(self, obj: MovingObjectState) -> bool:
        window = self._windows.get(self._window(obj.t))
        if window is None:
            return False
        states = window.get(obj.oid)
        if not states:
            return False
        # Exact match first, then fall back to any entry with the oid
        # (mirrors the quadtree's rounding-tolerant delete).
        for i, state in enumerate(states):
            if state == obj:
                states.pop(i)
                break
        else:
            states.pop(0)
        if not states:
            del window[obj.oid]
        return True

    def update(self, old: Optional[MovingObjectState],
               new: MovingObjectState) -> bool:
        # Rotate on arrival of the update (before the old entry is looked
        # up), mirroring StripesIndex.update's window semantics.
        window = self._window(new.t)
        self._windows.setdefault(window, {})
        self._retire_expired(newest=max(self._windows))
        removed = self.delete(old) if old is not None else False
        self.insert(new)
        return removed

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, query: PredictiveQuery) -> List[int]:
        """Object ids matching the query, by exhaustive exact evaluation."""
        results: List[int] = []
        for window in self._windows.values():
            for states in window.values():
                for state in states:
                    if matches(state, query):
                        results.append(state.oid)
        return results

    def live_states(self) -> List[MovingObjectState]:
        """All live trajectories (test helper)."""
        return [state
                for window in self._windows.values()
                for states in window.values()
                for state in states]
