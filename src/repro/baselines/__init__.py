"""Reference baselines: the exact linear-scan index used as a correctness
oracle and as a no-index comparison point in the benchmarks."""

from repro.baselines.scan import ScanIndex

__all__ = ["ScanIndex"]
