"""Disk storage substrate: pages, page files, buffer pool, and node stores.

This package is the reproduction's stand-in for the SHORE storage manager
used in the paper (Section 5.1).  It provides:

* :mod:`repro.storage.page` -- fixed-size page abstraction (4 KB default,
  matching the paper's configuration).
* :mod:`repro.storage.pagefile` -- a page-addressed file, either on disk or
  in memory, with a free list for page reuse.
* :mod:`repro.storage.buffer_pool` -- an LRU buffer pool with pin counts,
  dirty tracking, and physical/logical IO statistics.  The paper uses a
  2048-page pool; benchmarks scale this with data size.
* :mod:`repro.storage.node_store` -- record-level allocation on top of the
  pool: full-page records, half-page records, and small slotted records
  (several per page), which is how STRIPES packs ~11 non-leaf nodes per page.
* :mod:`repro.storage.stats` -- IO counters and a synthetic disk-latency
  model used to convert IO counts into simulated elapsed time.
"""

from repro.storage.buffer_pool import BufferPool, BufferPoolFullError
from repro.storage.faults import (FAILPOINTS, FaultyPageFile, InjectedCrash,
                                  TransientIOError)
from repro.storage.node_store import RecordStore, SizeClass
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.pagefile import (InMemoryPageFile, OnDiskPageFile,
                                    PageFile, fsync_dir)
from repro.storage.stats import DiskModel, IOStats

__all__ = [
    "PAGE_SIZE",
    "Page",
    "PageFile",
    "InMemoryPageFile",
    "OnDiskPageFile",
    "fsync_dir",
    "BufferPool",
    "BufferPoolFullError",
    "RecordStore",
    "SizeClass",
    "IOStats",
    "DiskModel",
    "FAILPOINTS",
    "FaultyPageFile",
    "InjectedCrash",
    "TransientIOError",
]
