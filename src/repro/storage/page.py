"""Fixed-size page abstraction.

The paper compiles SHORE with a 4 KB page size (Section 5.1); ``PAGE_SIZE``
matches that default.  A :class:`Page` is a page id plus a mutable byte
buffer, a dirty flag, and a pin count.  Pages live inside frames of the
buffer pool; index code never holds raw buffers across operations without
pinning.
"""

from __future__ import annotations

PAGE_SIZE = 4096
"""Default page size in bytes, matching the paper's SHORE configuration."""

INVALID_PAGE_ID = -1
"""Sentinel page id used in serialized child/overflow pointers."""


class Page:
    """One in-memory page: id, buffer, dirty flag, and pin count."""

    __slots__ = ("page_id", "data", "dirty", "pin_count")

    def __init__(self, page_id: int, data: bytearray | None = None,
                 page_size: int = PAGE_SIZE):
        if page_id < 0:
            raise ValueError(f"page_id must be non-negative, got {page_id}")
        if data is None:
            data = bytearray(page_size)
        elif len(data) != page_size:
            raise ValueError(
                f"page buffer must be exactly {page_size} bytes, got {len(data)}"
            )
        self.page_id = page_id
        self.data = data
        self.dirty = False
        self.pin_count = 0

    @property
    def is_pinned(self) -> bool:
        return self.pin_count > 0

    def pin(self) -> None:
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise RuntimeError(f"page {self.page_id} unpinned more than pinned")
        self.pin_count -= 1

    def mark_dirty(self) -> None:
        self.dirty = True

    def write(self, offset: int, payload: bytes) -> None:
        """Copy ``payload`` into the buffer at ``offset`` and mark dirty."""
        end = offset + len(payload)
        if offset < 0 or end > len(self.data):
            raise ValueError(
                f"write [{offset}, {end}) out of page bounds 0..{len(self.data)}"
            )
        self.data[offset:end] = payload
        self.dirty = True

    def read(self, offset: int, length: int) -> bytes:
        """Return ``length`` bytes starting at ``offset``."""
        end = offset + length
        if offset < 0 or end > len(self.data):
            raise ValueError(
                f"read [{offset}, {end}) out of page bounds 0..{len(self.data)}"
            )
        return bytes(self.data[offset:end])

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, dirty={self.dirty}, "
            f"pins={self.pin_count})"
        )
