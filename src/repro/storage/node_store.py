"""Record-level storage on top of the buffer pool.

STRIPES stores non-leaf nodes as small records (352 bytes in the paper's
two-dimensional configuration, ~11 per 4 KB page -- Section 5.1), *small*
leaves as half-page records, and *large* leaves as full-page records.  The
TPR/TPR*-trees store one node per page.  :class:`RecordStore` supports all
of these through per-page size classes:

* every page is dedicated to a single record size;
* a small header carries the record size, slot count, and an occupancy
  bitmap;
* record ids encode ``(page_id, slot)`` so the object cache can invalidate
  by page on buffer pool eviction.

:class:`NodeCache` adds a deserialized-object cache with *write-through*
semantics: every read still performs a (logical) page access through the
buffer pool -- so IO accounting is identical to a system that parses node
bytes on every access -- but Python-level deserialization is skipped while
the page stays resident.  Mutations serialize immediately into the page.

Concurrency invariant (single writer per shard)
-----------------------------------------------
:class:`RecordStore` relies on the same discipline as the buffer pool it
wraps: exactly one thread mutates a shard's store at a time (the shard
writer lock in ``repro.service.sharding``), and tree-descent reads -- which
touch the pool's LRU state -- are serialized by the shard's tree mutex.
:class:`NodeCache` additionally holds its own ``threading.RLock`` around
its object-map mutation, because pool eviction callbacks and cache lookups
can interleave re-entrantly; the lock makes the cache safe to *read* from
the descent path while the single writer mutates it.
"""

from __future__ import annotations

import struct
import threading
from typing import Callable, Dict, Generic, Set, TypeVar

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import Page

MAX_SLOTS_PER_PAGE = 1024
"""Record ids are ``page_id * MAX_SLOTS_PER_PAGE + slot``."""

_HEADER = struct.Struct("<HH")  # record_size, num_slots


class SizeClass:
    """Layout of a page dedicated to records of one size."""

    __slots__ = ("record_size", "num_slots", "bitmap_offset", "bitmap_len",
                 "records_offset")

    def __init__(self, record_size: int, page_size: int):
        if record_size <= 0:
            raise ValueError("record_size must be positive")
        num_slots = 0
        while True:
            candidate = num_slots + 1
            bitmap_len = (candidate + 7) // 8
            if _HEADER.size + bitmap_len + candidate * record_size > page_size:
                break
            num_slots = candidate
        if num_slots == 0:
            raise ValueError(
                f"record size {record_size} does not fit in a "
                f"{page_size}-byte page"
            )
        if num_slots > MAX_SLOTS_PER_PAGE:
            num_slots = MAX_SLOTS_PER_PAGE
        self.record_size = record_size
        self.num_slots = num_slots
        self.bitmap_offset = _HEADER.size
        self.bitmap_len = (num_slots + 7) // 8
        self.records_offset = _HEADER.size + self.bitmap_len

    def record_offset(self, slot: int) -> int:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
        return self.records_offset + slot * self.record_size


def rid_page(rid: int) -> int:
    """Page id component of a record id."""
    return rid // MAX_SLOTS_PER_PAGE


def rid_slot(rid: int) -> int:
    """Slot component of a record id."""
    return rid % MAX_SLOTS_PER_PAGE


def make_rid(page_id: int, slot: int) -> int:
    """Build a record id from page and slot."""
    return page_id * MAX_SLOTS_PER_PAGE + slot


class RecordStore:
    """Fixed-size-record allocation over a buffer pool.

    One store can serve multiple record sizes at once; each *page* holds a
    single size.  Free-slot availability per size class is tracked in
    memory (the moral equivalent of a cached space map) so allocation does
    not scan pages.
    """

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._classes: Dict[int, SizeClass] = {}
        # record_size -> stack of page ids with at least one free slot.  A
        # stack (most-recently-touched first) keeps records allocated close
        # in time on the same page -- the sibling-clustering property the
        # paper relies on for STRIPES non-leaf nodes (Section 5.1).
        self._pages_with_space: Dict[int, list] = {}
        self._pages_with_space_set: Dict[int, Set[int]] = {}
        # page_id -> (size class, occupied-slot count); in-memory mirror
        self._page_meta: Dict[int, tuple[SizeClass, int]] = {}
        # rid -> write generation, bumped on every allocate/write/free so a
        # decoded-object cache can detect any byte-level change to the
        # record -- including slot reuse after free -- without comparing
        # payloads.  Monotonic and never reset for a rid: a generation
        # captured before a free can never collide with one captured after
        # the slot is reallocated.
        self._record_gen: Dict[int, int] = {}

    def size_class(self, record_size: int) -> SizeClass:
        """Return (and memoize) the layout for ``record_size``."""
        cls = self._classes.get(record_size)
        if cls is None:
            cls = SizeClass(record_size, self.pool.pagefile.page_size)
            self._classes[record_size] = cls
        return cls

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def allocate(self, record_size: int, payload: bytes) -> int:
        """Store ``payload`` in a fresh record of the given size class and
        return its record id.  ``payload`` may be shorter than the class
        size (trailing bytes are undefined, as in a real slotted page)."""
        cls = self.size_class(record_size)
        if len(payload) > record_size:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds record size "
                f"{record_size}"
            )
        page_id = self._find_page_with_space(cls)
        page = self.pool.fetch(page_id)
        try:
            slot = self._claim_free_slot(page, cls)
            page.write(cls.record_offset(slot), payload)
        finally:
            page.unpin()
        _, occupied = self._page_meta[page_id]
        occupied += 1
        self._page_meta[page_id] = (cls, occupied)
        if occupied >= cls.num_slots:
            self._drop_space(record_size, page_id)
        rid = make_rid(page_id, slot)
        self._bump_generation(rid)
        return rid

    def read(self, rid: int) -> bytes:
        """Return the full record-size byte slice for ``rid``."""
        cls, page = self._fetch_record_page(rid)
        try:
            return page.read(cls.record_offset(rid_slot(rid)), cls.record_size)
        finally:
            page.unpin()

    def write(self, rid: int, payload: bytes) -> None:
        """Overwrite record ``rid`` with ``payload`` (write-through)."""
        cls, page = self._fetch_record_page(rid)
        try:
            if len(payload) > cls.record_size:
                raise ValueError(
                    f"payload of {len(payload)} bytes exceeds record size "
                    f"{cls.record_size}"
                )
            page.write(cls.record_offset(rid_slot(rid)), payload)
        finally:
            page.unpin()
        self._bump_generation(rid)

    def write_many(self, items) -> None:
        """Overwrite many records, pinning each touched page once.

        ``items`` is an iterable of ``(rid, payload)``.  Byte- and
        generation-equivalent to calling :meth:`write` per item, but the
        buffer pool sees one fetch (one logical read, at most one physical
        read) per *page* per batch instead of per record -- the write-side
        twin of the sibling clustering the allocator maintains.  Payloads
        are size-checked against their page's class before any byte of
        that page is written, so a bad item cannot leave its page half
        applied.
        """
        by_page: Dict[int, list] = {}
        for rid, payload in items:
            by_page.setdefault(rid // MAX_SLOTS_PER_PAGE, []).append(
                (rid, payload))
        for page_id, recs in by_page.items():
            meta = self._page_meta.get(page_id)
            if meta is None:
                raise KeyError(f"record {recs[0][0]} does not exist")
            cls, _ = meta
            for _, payload in recs:
                if len(payload) > cls.record_size:
                    raise ValueError(
                        f"payload of {len(payload)} bytes exceeds record "
                        f"size {cls.record_size}"
                    )
            page = self.pool.fetch(page_id)
            try:
                for rid, payload in recs:
                    page.write(cls.record_offset(rid_slot(rid)), payload)
            finally:
                page.unpin()
            for rid, _ in recs:
                self._bump_generation(rid)

    def free(self, rid: int) -> None:
        """Release the record; empty pages are returned to the page file."""
        page_id = rid_page(rid)
        cls, page = self._fetch_record_page(rid)
        try:
            self._set_bitmap(page, cls, rid_slot(rid), occupied=False)
        finally:
            page.unpin()
        _, occupied = self._page_meta[page_id]
        occupied -= 1
        if occupied <= 0:
            del self._page_meta[page_id]
            self._drop_space(cls.record_size, page_id)
            self.pool.free_page(page_id)
        else:
            self._page_meta[page_id] = (cls, occupied)
            self._add_space(cls.record_size, page_id)
        self._bump_generation(rid)

    def generation_of(self, rid: int) -> int:
        """Current write generation of ``rid`` (0 for never-written)."""
        return self._record_gen.get(rid, 0)

    def _bump_generation(self, rid: int) -> None:
        self._record_gen[rid] = self._record_gen.get(rid, 0) + 1

    def record_size_of(self, rid: int) -> int:
        """Record size class of ``rid`` (from the in-memory space map)."""
        return self._page_meta[rid_page(rid)][0].record_size

    def pages_in_use(self) -> int:
        """Number of pages currently holding at least one record."""
        return len(self._page_meta)

    def occupied_rids(self):
        """Yield every record id whose bitmap slot is occupied, straight
        from the page bytes (not the in-memory mirror).  The index-level
        checker compares this set against the rids reachable from the
        tree roots to find leaked or dangling records."""
        for page_id in sorted(self._page_meta):
            cls, _ = self._page_meta[page_id]
            with self.pool.pinned(page_id) as page:
                bitmap = page.read(cls.bitmap_offset, cls.bitmap_len)
            for slot in range(cls.num_slots):
                if bitmap[slot >> 3] & (1 << (slot & 7)):
                    yield make_rid(page_id, slot)

    def check(self) -> list:
        """Verify the store's on-page state against its in-memory space
        map; returns a list of human-readable violations (empty when
        consistent).

        Checked per mapped page: the on-page header matches the size
        class the space map claims, the bitmap's population count
        matches the tracked occupied count, occupancy is non-zero
        (empty pages must have been freed), and space-list membership
        is exactly ``occupied < num_slots``.  Globally: no page is both
        mapped and on the page file's free list, every page-file page is
        either mapped, free, or was never handed to this store's pool
        (leak detection is the index-level reachability check), and the
        free list holds no duplicates.
        """
        problems: list = []
        freed = list(self.pool.pagefile.free_page_ids())
        freed_set = set(freed)
        if len(freed) != len(freed_set):
            problems.append("page file free list contains duplicate ids")
        for page_id in sorted(self._page_meta):
            cls, occupied = self._page_meta[page_id]
            if page_id in freed_set:
                problems.append(
                    f"page {page_id} is mapped in the store but on the "
                    f"page file free list (double free)")
                continue
            with self.pool.pinned(page_id) as page:
                rec_size, num_slots = _HEADER.unpack(
                    page.read(0, _HEADER.size))
                bitmap = page.read(cls.bitmap_offset, cls.bitmap_len)
            if rec_size != cls.record_size or num_slots != cls.num_slots:
                problems.append(
                    f"page {page_id} header says ({rec_size} bytes, "
                    f"{num_slots} slots) but the space map says "
                    f"({cls.record_size} bytes, {cls.num_slots} slots)")
            popcount = sum(bin(b).count("1") for b in bitmap)
            if popcount != occupied:
                problems.append(
                    f"page {page_id} bitmap holds {popcount} records but "
                    f"the space map counts {occupied}")
            if occupied <= 0:
                problems.append(
                    f"page {page_id} is mapped with zero records (empty "
                    f"pages must be freed)")
            in_space = page_id in self._pages_with_space_set.get(
                cls.record_size, ())
            should = occupied < cls.num_slots
            if in_space != should:
                problems.append(
                    f"page {page_id} ({occupied}/{cls.num_slots} slots) "
                    f"{'is' if in_space else 'is not'} on the free-space "
                    f"list but {'should not be' if in_space else 'should be'}")
        for record_size, members in self._pages_with_space_set.items():
            stack = self._pages_with_space.get(record_size, [])
            if set(stack) != members or len(stack) != len(members):
                problems.append(
                    f"free-space stack and set disagree for record size "
                    f"{record_size}")
            for page_id in members - set(self._page_meta):
                problems.append(
                    f"free-space list for record size {record_size} names "
                    f"unmapped page {page_id}")
        for page_id in range(self.pool.pagefile.capacity_pages):
            if page_id not in self._page_meta and page_id not in freed_set:
                problems.append(
                    f"page {page_id} is neither mapped nor free (leaked)")
        return problems

    def attach_metrics(self, registry, prefix: str = "store") -> None:
        """Expose store-level occupancy gauges in ``registry`` (a
        :class:`repro.obs.metrics.MetricsRegistry`) via a pull collector."""
        pages = registry.gauge(f"{prefix}_pages_in_use",
                               help="pages holding at least one record")
        size_classes = registry.gauge(f"{prefix}_size_classes",
                                      help="distinct record sizes in use")
        pages_with_space = registry.gauge(
            f"{prefix}_pages_with_space",
            help="non-full pages available for allocation")

        def collect() -> None:
            pages.set(len(self._page_meta))
            size_classes.set(len(self._classes))
            pages_with_space.set(sum(len(s) for s in
                                     self._pages_with_space_set.values()))

        registry.register_collector(collect)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _fetch_record_page(self, rid: int) -> tuple[SizeClass, Page]:
        meta = self._page_meta.get(rid_page(rid))
        if meta is None:
            raise KeyError(f"record {rid} does not exist")
        cls, _ = meta
        page = self.pool.fetch(rid_page(rid))
        return cls, page

    def _add_space(self, record_size: int, page_id: int) -> None:
        members = self._pages_with_space_set.setdefault(record_size, set())
        if page_id not in members:
            members.add(page_id)
            self._pages_with_space.setdefault(record_size, []).append(page_id)

    def _drop_space(self, record_size: int, page_id: int) -> None:
        members = self._pages_with_space_set.get(record_size)
        if members and page_id in members:
            members.discard(page_id)
            stack = self._pages_with_space[record_size]
            # Fast path: the most recent page is usually the one dropping.
            if stack and stack[-1] == page_id:
                stack.pop()
            else:
                stack.remove(page_id)

    def _find_page_with_space(self, cls: SizeClass) -> int:
        stack = self._pages_with_space.setdefault(cls.record_size, [])
        if stack:
            return stack[-1]
        page = self.pool.new_page()
        try:
            page.write(0, _HEADER.pack(cls.record_size, cls.num_slots))
            page.write(cls.bitmap_offset, b"\x00" * cls.bitmap_len)
        finally:
            page.unpin()
        self._page_meta[page.page_id] = (cls, 0)
        self._add_space(cls.record_size, page.page_id)
        return page.page_id

    def _claim_free_slot(self, page: Page, cls: SizeClass) -> int:
        bitmap = page.read(cls.bitmap_offset, cls.bitmap_len)
        for slot in range(cls.num_slots):
            if not bitmap[slot >> 3] & (1 << (slot & 7)):
                self._set_bitmap(page, cls, slot, occupied=True)
                return slot
        raise RuntimeError(
            f"page {page.page_id} advertised free space but has none"
        )

    def _set_bitmap(self, page: Page, cls: SizeClass, slot: int,
                    occupied: bool) -> None:
        byte_off = cls.bitmap_offset + (slot >> 3)
        current = page.read(byte_off, 1)[0]
        mask = 1 << (slot & 7)
        if occupied:
            current |= mask
        else:
            if not current & mask:
                raise ValueError(f"slot {slot} on page {page.page_id} "
                                 "already free")
            current &= ~mask
        page.write(byte_off, bytes([current]))


T = TypeVar("T")


class NodeCache(Generic[T]):
    """Generation-keyed deserialized-node cache with write-through
    persistence.

    ``serialize``/``deserialize`` convert between node objects and record
    payload bytes.  Reads always touch the buffer pool (so residency and IO
    counts behave exactly as if nodes were parsed from bytes each time);
    the Python object is only rebuilt after its page was evicted or its
    record was rewritten.  Each cached object carries the record's write
    generation (:meth:`RecordStore.generation_of`); a ``get`` whose stored
    generation no longer matches counts as a decoded miss and
    re-deserializes, so even raw :meth:`RecordStore.write`/``free`` calls
    that bypass this cache can never serve a stale node.  Generations are
    per record, not per page: rewriting one record does not invalidate its
    page siblings (~11 non-leaf nodes share a page in the paper layout).
    """

    def __init__(self, store: RecordStore,
                 serialize: Callable[[T], bytes],
                 deserialize: Callable[[bytes], T]):
        self.store = store
        self._serialize = serialize
        self._deserialize = deserialize
        # rid -> (record generation at decode time, node object)
        self._objects: Dict[int, tuple[int, T]] = {}
        self._rids_by_page: Dict[int, Set[int]] = {}
        # Plain ints on the hot path; pulled into a registry on export.
        self.hits = 0
        self.misses = 0
        # RLock: the pool's eviction callback (_on_eviction) can fire
        # inside get()'s fetch while this cache holds the lock.
        self._lock = threading.RLock()
        self._detached = False
        store.pool.add_eviction_listener(self._on_eviction)

    def get(self, rid: int) -> T:
        """Fetch the node for ``rid`` (page access always goes through the
        buffer pool; deserialization is skipped on object-cache hits)."""
        with self._lock:
            entry = self._objects.get(rid)
        if entry is not None \
                and entry[0] == self.store._record_gen.get(rid, 0):
            # Hit: the page access still happens and is counted exactly
            # as on the miss path, so IO accounting is independent of
            # cache state; only the decode is skipped.
            pool = self.store.pool
            page_id = rid // MAX_SLOTS_PER_PAGE
            if not pool.touch(page_id):
                pool.fetch(page_id).unpin()
            self.hits += 1
            return entry[1]
        cls, page = self.store._fetch_record_page(rid)
        try:
            raw = page.read(cls.record_offset(rid_slot(rid)),
                            cls.record_size)
            obj = self._deserialize(raw)
            self._remember(rid, obj)
            self.misses += 1
            return obj
        finally:
            page.unpin()

    def insert(self, record_size: int, obj: T) -> int:
        """Persist a new node and return its record id."""
        rid = self.store.allocate(record_size, self._serialize(obj))
        self._remember(rid, obj)
        return rid

    def update(self, rid: int, obj: T) -> None:
        """Serialize ``obj`` into its record (write-through)."""
        self.store.write(rid, self._serialize(obj))
        self._remember(rid, obj)

    def update_many(self, items) -> None:
        """Serialize many ``(rid, obj)`` pairs with one page pin per
        touched page (:meth:`RecordStore.write_many`); cache state ends
        identical to per-item :meth:`update` calls."""
        items = list(items)
        self.store.write_many(
            (rid, self._serialize(obj)) for rid, obj in items)
        for rid, obj in items:
            self._remember(rid, obj)

    def free(self, rid: int) -> None:
        """Delete the record and drop the cached object."""
        self.store.free(rid)
        with self._lock:
            entry = self._objects.pop(rid, None)
            if entry is not None:
                page_rids = self._rids_by_page.get(rid_page(rid))
                if page_rids is not None:
                    page_rids.discard(rid)

    def detach(self) -> None:
        """Disconnect this cache from its (shared) buffer pool and drop
        every cached object.

        A :class:`RecordStore`'s pool may outlive any one cache built on
        top of it (each rotating STRIPES sub-index creates its own cache
        over the index-wide pool).  Without detaching, the pool's eviction
        listener list would keep the dead cache -- and every node object it
        holds -- reachable forever, and keep paying a callback per
        eviction.  Idempotent; the cache remains usable as a pass-through
        (every ``get`` decodes) afterwards, but is not meant to be.
        """
        with self._lock:
            if self._detached:
                return
            self._detached = True
            self._objects.clear()
            self._rids_by_page.clear()
        self.store.pool.remove_eviction_listener(self._on_eviction)

    def cached_count(self) -> int:
        """Number of node objects currently cached (test helper)."""
        with self._lock:
            return len(self._objects)

    def attach_metrics(self, registry, prefix: str = "node_cache") -> None:
        """Expose deserialization hit/miss counters and the cached-object
        gauge in ``registry`` via a pull collector."""
        hits = registry.counter(f"{prefix}_decoded_hits_total",
                                help="node reads served without deserialize")
        misses = registry.counter(f"{prefix}_decoded_misses_total",
                                  help="node reads that deserialized bytes")
        cached = registry.gauge(f"{prefix}_cached_objects",
                                help="deserialized node objects held")

        def collect() -> None:
            hits.set_total(self.hits)
            misses.set_total(self.misses)
            cached.set(len(self._objects))

        registry.register_collector(collect)

    def _remember(self, rid: int, obj: T) -> None:
        with self._lock:
            if self._detached:
                return
            self._objects[rid] = (self.store.generation_of(rid), obj)
            self._rids_by_page.setdefault(rid_page(rid), set()).add(rid)

    def _on_eviction(self, page_id: int) -> None:
        with self._lock:
            rids = self._rids_by_page.pop(page_id, None)
            if rids:
                for rid in rids:
                    self._objects.pop(rid, None)
