"""IO statistics and a synthetic disk-latency model.

The paper reports costs split into IO and CPU components (Figures 10-14).
The IO component of those numbers is ``physical IO count x per-IO latency``
on a 2004-era 7200 RPM IDE disk.  We cannot reproduce that hardware, so the
benchmark harness counts physical IOs exactly (through the buffer pool) and
converts counts to time with :class:`DiskModel`.  Both the raw counts and
the modelled times are reported, so readers can re-derive times under any
disk assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class IOStats:
    """Counters for page traffic through a buffer pool.

    ``logical_reads`` counts every page request; ``physical_reads`` counts
    the subset that missed the pool and went to the page file.  The hit rate
    is therefore ``1 - physical_reads / logical_reads``.

    ``snapshot``/``diff``/``reset`` operate over ``dataclasses.fields`` so
    a counter added to this class is automatically covered by all three
    (and by every metrics collector built on them).
    """

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    pages_allocated: int = 0
    pages_freed: int = 0
    evictions: int = 0
    #: Pre-checkpoint page images copied into the undo journal before a
    #: between-checkpoint write-back (see repro.storage.journal).
    shadow_writes: int = 0

    def counters(self) -> dict:
        """Every counter as ``{field name: value}``."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counter values."""
        return IOStats(**self.counters())

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return counters accumulated since ``earlier`` (a prior snapshot)."""
        return IOStats(**{name: value - getattr(earlier, name)
                          for name, value in self.counters().items()})

    @property
    def physical_io(self) -> int:
        """Total physical page transfers (reads + writes)."""
        return self.physical_reads + self.physical_writes

    @property
    def hit_rate(self) -> float:
        """Buffer pool hit rate in [0, 1]; 1.0 when no reads were issued."""
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)


@dataclass
class DiskModel:
    """Convert physical IO counts into simulated elapsed seconds.

    The defaults approximate the paper's 40 GB 7200 RPM IDE drive: ~8.9 ms
    average seek + ~4.2 ms rotational latency for a random 4 KB access, and
    a much cheaper sequential transfer.  ``sequential_fraction`` is the
    share of IOs assumed to hit sequentially-laid-out pages (the paper notes
    STRIPES sibling non-leaf nodes are created contiguously; callers that
    track actual adjacency can compute the fraction instead of assuming).
    """

    random_io_ms: float = 12.0
    sequential_io_ms: float = 0.6
    sequential_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ValueError(
                f"sequential_fraction must be in [0, 1], got "
                f"{self.sequential_fraction} (values outside the range "
                f"would make the per-IO cost negative or inflated)")

    def seconds(self, physical_ios: int) -> float:
        """Simulated seconds for ``physical_ios`` page transfers."""
        if physical_ios < 0:
            raise ValueError("physical_ios must be non-negative")
        random_share = 1.0 - self.sequential_fraction
        per_io_ms = (
            random_share * self.random_io_ms
            + self.sequential_fraction * self.sequential_io_ms
        )
        return physical_ios * per_io_ms / 1000.0


@dataclass
class OperationCost:
    """Cost of one index operation: physical IOs plus measured CPU seconds."""

    physical_reads: int = 0
    physical_writes: int = 0
    cpu_seconds: float = 0.0

    @property
    def physical_io(self) -> int:
        return self.physical_reads + self.physical_writes

    def io_seconds(self, disk: DiskModel) -> float:
        """IO time under ``disk``'s latency model."""
        return disk.seconds(self.physical_io)

    def total_seconds(self, disk: DiskModel) -> float:
        """CPU time plus modelled IO time."""
        return self.cpu_seconds + self.io_seconds(disk)


@dataclass
class CostAccumulator:
    """Accumulates :class:`OperationCost` values and exposes averages."""

    count: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    cpu_seconds: float = 0.0
    _per_op: list = field(default_factory=list, repr=False)

    def add(self, cost: OperationCost, keep: bool = False) -> None:
        """Fold one operation's cost in; ``keep`` retains it for percentiles."""
        self.count += 1
        self.physical_reads += cost.physical_reads
        self.physical_writes += cost.physical_writes
        self.cpu_seconds += cost.cpu_seconds
        if keep:
            self._per_op.append(cost)

    @property
    def physical_io(self) -> int:
        return self.physical_reads + self.physical_writes

    def mean_io(self) -> float:
        """Average physical IOs per operation (0.0 when empty)."""
        return self.physical_io / self.count if self.count else 0.0

    def mean_cpu_seconds(self) -> float:
        """Average CPU seconds per operation (0.0 when empty)."""
        return self.cpu_seconds / self.count if self.count else 0.0

    def mean_total_seconds(self, disk: DiskModel) -> float:
        """Average total (CPU + modelled IO) seconds per operation."""
        if not self.count:
            return 0.0
        return self.mean_cpu_seconds() + disk.seconds(self.physical_io) / self.count

    # ------------------------------------------------------------------ #
    # Tail latency (requires costs added with ``keep=True``)
    # ------------------------------------------------------------------ #

    def per_op_costs(self) -> list:
        """The retained per-operation costs (empty unless ``keep=True``)."""
        return list(self._per_op)

    def percentile(self, q: float, disk: DiskModel | None = None) -> float:
        """Latency percentile (in seconds) over the retained per-op costs.

        ``q`` is a fraction in [0, 1].  Without ``disk`` the percentile is
        over measured CPU seconds; with ``disk`` each operation's physical
        IOs are priced by the model and added first.  Linear interpolation
        between order statistics; 0.0 when nothing was retained.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
        if not self._per_op:
            return 0.0
        values = sorted(
            cost.cpu_seconds if disk is None else cost.total_seconds(disk)
            for cost in self._per_op)
        rank = q * (len(values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (values[hi] - values[lo]) * (rank - lo)

    @property
    def p50(self) -> float:
        """Median CPU seconds per retained operation."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile CPU seconds per retained operation."""
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile CPU seconds per retained operation."""
        return self.percentile(0.99)
