"""Fault injection for the storage stack: failpoints and crash simulation.

Two mechanisms, both driven by the crash-matrix harness
(:mod:`repro.bench.crashmatrix`) and the recovery tests:

* :class:`FaultyPageFile` -- a :class:`repro.storage.pagefile.PageFile`
  wrapper that counts every read/write/sync and can be armed to fail the
  Nth write with a :class:`TransientIOError`, tear the Nth write at a
  byte offset, or simulate a process crash at the Nth read or write.
  The wrapper also models *durability*: a write is volatile until the
  next :meth:`FaultyPageFile.sync`, and :meth:`durable_image` returns
  the page images a crash would leave behind under a chosen survival
  policy (``"none"`` -- unsynced writes are lost, the strict fsync
  model; ``"all"`` -- every write reached the platter; or a seeded
  random mix).  Recovery code must be correct under every policy.

* :data:`FAILPOINTS` -- a process-wide named-failpoint registry.  The
  checkpoint/journal code calls ``FAILPOINTS.hit("checkpoint.sidecar_tmp")``
  at each step of its protocol; a test arms a name to raise at its Nth
  hit, which simulates a crash *between* page-file operations (mid
  journal write, mid sidecar rename, ...).  Unarmed hits cost one dict
  lookup.

Simulated crashes raise :class:`InjectedCrash`; after one fires the
page file is *frozen* -- every further operation re-raises, the way a
dead process stops issuing IO -- and the harness reopens the index from
:meth:`FaultyPageFile.durable_image`.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.storage.pagefile import InMemoryPageFile, PageFile

__all__ = [
    "TransientIOError",
    "InjectedCrash",
    "FaultyPageFile",
    "FailpointRegistry",
    "FAILPOINTS",
]


class TransientIOError(IOError):
    """A retryable IO failure: the operation did not happen, but an
    identical retry may succeed.  Storage backends raise this (and only
    this) to signal retryability to the service layer."""


class InjectedCrash(RuntimeError):
    """A simulated process death at a failpoint.  Whatever the crash
    interrupted did not happen; the on-disk state is whatever
    :meth:`FaultyPageFile.durable_image` reports."""


class FailpointRegistry:
    """Named code-site failpoints with one-shot arming.

    ``hit(name)`` is sprinkled through the checkpoint/recovery code;
    :meth:`arm` makes the Nth hit of a name raise.  :meth:`record`
    captures the ordered hit sequence so a harness can first discover
    every failpoint a workload crosses, then crash at each in turn.
    """

    def __init__(self) -> None:
        # name -> [remaining hits before firing, action]
        self._armed: Dict[str, list] = {}
        self._recording: Optional[List[str]] = None

    def hit(self, name: str) -> None:
        """Register one crossing of failpoint ``name`` (raises if armed)."""
        if self._recording is not None:
            self._recording.append(name)
        slot = self._armed.get(name)
        if slot is None:
            return
        slot[0] -= 1
        if slot[0] > 0:
            return
        del self._armed[name]
        if slot[1] == "transient":
            raise TransientIOError(f"injected transient error at {name}")
        raise InjectedCrash(f"injected crash at failpoint {name}")

    def arm(self, name: str, hit_number: int = 1,
            action: str = "crash") -> None:
        """Make the ``hit_number``-th future hit of ``name`` raise
        (``action``: ``"crash"`` or ``"transient"``).  One-shot."""
        if hit_number < 1:
            raise ValueError("hit_number must be >= 1")
        if action not in ("crash", "transient"):
            raise ValueError(f"unknown failpoint action {action!r}")
        self._armed[name] = [hit_number, action]

    def clear(self) -> None:
        """Disarm everything and stop recording."""
        self._armed.clear()
        self._recording = None

    @contextmanager
    def record(self) -> Iterator[List[str]]:
        """Capture every hit name, in order, for the duration of the
        block (nested recording is not supported)."""
        hits: List[str] = []
        self._recording = hits
        try:
            yield hits
        finally:
            self._recording = None


#: Process-wide registry the storage/persistence code reports hits to.
FAILPOINTS = FailpointRegistry()

#: Survival policy for unsynced writes at crash time.
SurvivalPolicy = Union[str, random.Random]


class FaultyPageFile(PageFile):
    """Failpoint-driven wrapper around another :class:`PageFile`.

    Delegates storage entirely to ``inner`` (allocation state included);
    adds operation counting, armable faults, and the volatile/durable
    write model described in the module docstring.
    """

    def __init__(self, inner: PageFile):
        super().__init__(inner.page_size)
        self.inner = inner
        self.reads = 0
        self.writes = 0
        self.syncs = 0
        self.crashed = False
        # First pre-write image of every page written since the last
        # sync: what the platter still holds if the write never lands.
        self._preimages: Dict[int, bytes] = {}
        # Armed faults: absolute operation numbers (1-based).
        self._fail_writes: Dict[int, None] = {}
        self._fail_reads: Dict[int, None] = {}
        self._crash_at_write: Optional[int] = None
        self._crash_at_read: Optional[int] = None
        self._tear_at_write: Optional[int] = None
        self._tear_bytes = 0

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #

    def fail_writes_at(self, first: int, times: int = 1) -> None:
        """Writes ``first .. first+times-1`` (1-based, counted over the
        file's lifetime) raise :class:`TransientIOError` without
        applying."""
        for n in range(first, first + times):
            self._fail_writes[n] = None

    def fail_next_writes(self, times: int = 1) -> None:
        """The next ``times`` writes raise :class:`TransientIOError`."""
        self.fail_writes_at(self.writes + 1, times)

    def fail_reads_at(self, first: int, times: int = 1) -> None:
        """Reads ``first .. first+times-1`` raise
        :class:`TransientIOError`."""
        for n in range(first, first + times):
            self._fail_reads[n] = None

    def fail_next_reads(self, times: int = 1) -> None:
        """The next ``times`` reads raise :class:`TransientIOError`."""
        self.fail_reads_at(self.reads + 1, times)

    def crash_at_write(self, n: int) -> None:
        """Simulate a crash *instead of* applying the ``n``-th write."""
        self._crash_at_write = n

    def crash_at_read(self, n: int) -> None:
        """Simulate a crash instead of serving the ``n``-th read."""
        self._crash_at_read = n

    def tear_at_write(self, n: int, byte_offset: int) -> None:
        """The ``n``-th write lands only its first ``byte_offset`` bytes
        (durably -- the partial sector reached the platter), then the
        process crashes."""
        if not 0 <= byte_offset <= self.page_size:
            raise ValueError(
                f"tear offset {byte_offset} outside page of "
                f"{self.page_size} bytes")
        self._tear_at_write = n
        self._tear_bytes = byte_offset

    def clear_faults(self) -> None:
        """Disarm every pending fault (counters keep running)."""
        self._fail_writes.clear()
        self._fail_reads.clear()
        self._crash_at_write = None
        self._crash_at_read = None
        self._tear_at_write = None

    # ------------------------------------------------------------------ #
    # Crash image
    # ------------------------------------------------------------------ #

    def _crash(self, reason: str) -> None:
        self.crashed = True
        raise InjectedCrash(reason)

    def durable_image(self, survival: SurvivalPolicy = "none") -> List[bytes]:
        """Page images a reopening process would find after a crash.

        ``survival`` decides the fate of writes issued since the last
        :meth:`sync`: ``"none"`` reverts them all to their pre-image
        (strict fsync semantics), ``"all"`` keeps them (the page cache
        made it out), and a :class:`random.Random` keeps each
        independently with probability one half (the adversarial mixed
        outcome recovery must also survive).
        """
        images = [bytes(self.inner.read(pid))
                  for pid in range(self.inner.capacity_pages)]
        if survival == "all":
            return images
        for page_id, pre in self._preimages.items():
            if survival == "none" or not survival.getrandbits(1):
                images[page_id] = pre
        return images

    def reopen_durable(self, survival: SurvivalPolicy = "none") \
            -> InMemoryPageFile:
        """Fresh in-memory page file holding :meth:`durable_image`."""
        return InMemoryPageFile.from_images(self.durable_image(survival),
                                            page_size=self.page_size)

    # ------------------------------------------------------------------ #
    # PageFile interface (full delegation to ``inner``)
    # ------------------------------------------------------------------ #

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    @property
    def capacity_pages(self) -> int:
        return self.inner.capacity_pages

    def allocate(self) -> int:
        self._check_alive()
        return self.inner.allocate()

    def free(self, page_id: int) -> None:
        self._check_alive()
        self.inner.free(page_id)

    def free_page_ids(self):
        return self.inner.free_page_ids()

    def read(self, page_id: int) -> bytearray:
        self._check_alive()
        self.reads += 1
        n = self.reads
        if n == self._crash_at_read:
            self._crash(f"crash at read #{n} (page {page_id})")
        if n in self._fail_reads:
            del self._fail_reads[n]
            raise TransientIOError(
                f"injected transient failure of read #{n} (page {page_id})")
        return self.inner.read(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        self._check_alive()
        if len(data) != self.page_size:
            raise ValueError(
                f"page write must be exactly {self.page_size} bytes, "
                f"got {len(data)}")
        self.writes += 1
        n = self.writes
        if n in self._fail_writes:
            del self._fail_writes[n]
            raise TransientIOError(
                f"injected transient failure of write #{n} (page {page_id})")
        if n == self._crash_at_write:
            self._crash(f"crash at write #{n} (page {page_id})")
        if n == self._tear_at_write:
            current = bytes(self.inner.read(page_id))
            torn = data[: self._tear_bytes] + current[self._tear_bytes:]
            # The torn half-write reached the platter: no pre-image.
            self.inner.write(page_id, torn)
            self._preimages.pop(page_id, None)
            self._crash(f"torn write #{n} (page {page_id}, "
                        f"{self._tear_bytes} bytes applied)")
        if page_id not in self._preimages:
            self._preimages[page_id] = bytes(self.inner.read(page_id))
        self.inner.write(page_id, data)

    def sync(self) -> None:
        self._check_alive()
        self.syncs += 1
        self._preimages.clear()
        self.inner.sync()

    def close(self) -> None:
        self.inner.close()

    def _check_alive(self) -> None:
        if self.crashed:
            raise InjectedCrash(
                "page file is frozen after a simulated crash")

    # The abstract hooks are never reached (all public entry points
    # delegate), but the ABC requires them.
    def _extend_to(self, num_pages: int) -> None:  # pragma: no cover
        raise AssertionError("FaultyPageFile delegates to inner")

    def _read_page(self, page_id: int) -> bytearray:  # pragma: no cover
        raise AssertionError("FaultyPageFile delegates to inner")

    def _write_page(self, page_id: int, data: bytes) -> None:  # pragma: no cover
        raise AssertionError("FaultyPageFile delegates to inner")

    def __repr__(self) -> str:
        return (f"FaultyPageFile(reads={self.reads}, writes={self.writes}, "
                f"syncs={self.syncs}, crashed={self.crashed})")
