"""Page-addressed files.

A page file is the persistence layer below the buffer pool.  Two
implementations share the :class:`PageFile` interface:

* :class:`OnDiskPageFile` -- a real file on the filesystem, used by the
  examples and the full-scale benchmarks.
* :class:`InMemoryPageFile` -- a list of buffers, used by tests and the
  default benchmark configuration.  Physical IO is still *counted* by the
  buffer pool; only the actual device traffic is elided, which keeps unit
  tests hermetic and fast while preserving the paper's IO accounting.

Freed pages go on a free list and are reused by subsequent allocations,
mirroring how SHORE recycles slotted pages.
"""

from __future__ import annotations

import abc
import os
from typing import Iterator, Sequence

from repro.storage.page import PAGE_SIZE


def fsync_dir(path: str | os.PathLike) -> None:
    """fsync a *directory*, making renames/removals inside it durable.

    POSIX only persists a directory entry once the directory itself is
    synced; the journal and sidecar protocols rely on this.  Platforms
    that cannot open directories (Windows) are silently skipped -- the
    rename is still atomic there, just not durably ordered.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class PageFile(abc.ABC):
    """Abstract page-addressed storage with allocate/read/write/free."""

    def __init__(self, page_size: int = PAGE_SIZE):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self._free_list: list[int] = []
        self._num_pages = 0

    @property
    def num_pages(self) -> int:
        """Number of allocated (non-free) pages."""
        return self._num_pages - len(self._free_list)

    @property
    def capacity_pages(self) -> int:
        """Highest page id ever allocated plus one (file extent)."""
        return self._num_pages

    def allocate(self) -> int:
        """Allocate a page and return its id, reusing freed pages first."""
        if self._free_list:
            return self._free_list.pop()
        page_id = self._num_pages
        self._num_pages += 1
        self._extend_to(self._num_pages)
        return page_id

    def free(self, page_id: int) -> None:
        """Return ``page_id`` to the free list.  Double frees are rejected."""
        self._check_page_id(page_id)
        if page_id in self._free_list:
            raise ValueError(f"page {page_id} already freed")
        self._free_list.append(page_id)

    def read(self, page_id: int) -> bytearray:
        """Read a full page; returns a fresh buffer the caller owns."""
        self._check_page_id(page_id)
        return self._read_page(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        """Write a full page buffer."""
        self._check_page_id(page_id)
        if len(data) != self.page_size:
            raise ValueError(
                f"page write must be exactly {self.page_size} bytes, "
                f"got {len(data)}"
            )
        self._write_page(page_id, data)

    def free_page_ids(self) -> Sequence[int]:
        """The current free list (ids awaiting reuse), oldest first.
        Public so invariant checkers can cross-check the space map
        without reaching into ``_free_list``."""
        return tuple(self._free_list)

    def sync(self) -> None:
        """Make every prior :meth:`write` durable (fsync).  In-memory
        implementations are trivially durable; the default is a no-op."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any underlying resources."""

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise ValueError(
                f"page id {page_id} out of range [0, {self._num_pages})"
            )

    @abc.abstractmethod
    def _extend_to(self, num_pages: int) -> None:
        """Grow the underlying storage to hold ``num_pages`` pages."""

    @abc.abstractmethod
    def _read_page(self, page_id: int) -> bytearray:
        ...

    @abc.abstractmethod
    def _write_page(self, page_id: int, data: bytes) -> None:
        ...


class InMemoryPageFile(PageFile):
    """Page file backed by a list of buffers (for tests and fast benches)."""

    def __init__(self, page_size: int = PAGE_SIZE):
        super().__init__(page_size)
        self._pages: list[bytearray] = []

    @classmethod
    def from_images(cls, images: Sequence[bytes],
                    page_size: int = PAGE_SIZE) -> "InMemoryPageFile":
        """Build a page file pre-loaded with ``images`` (one full page
        each), the way reopening a real file resumes with its extent.
        Used by the crash harness to reopen a frozen durable image."""
        pagefile = cls(page_size)
        for page_id, image in enumerate(images):
            if len(image) != page_size:
                raise ValueError(
                    f"image {page_id} is {len(image)} bytes, expected "
                    f"{page_size}")
            pagefile._pages.append(bytearray(image))
        pagefile._num_pages = len(pagefile._pages)
        return pagefile

    def _extend_to(self, num_pages: int) -> None:
        while len(self._pages) < num_pages:
            self._pages.append(bytearray(self.page_size))

    def _read_page(self, page_id: int) -> bytearray:
        return bytearray(self._pages[page_id])

    def _write_page(self, page_id: int, data: bytes) -> None:
        self._pages[page_id] = bytearray(data)

    def iter_pages(self) -> Iterator[bytes]:
        """Yield raw page buffers (test helper)."""
        for page in self._pages:
            yield bytes(page)


class OnDiskPageFile(PageFile):
    """Page file backed by a regular file.

    The file is created if missing.  Reopening an existing file resumes with
    its current extent; the free list is not persisted (freed pages from a
    previous session are simply not reused), which is sufficient for index
    files that are rebuilt each index lifetime (Section 2 of the paper).
    """

    def __init__(self, path: str | os.PathLike, page_size: int = PAGE_SIZE):
        super().__init__(page_size)
        self.path = os.fspath(path)
        exists = os.path.exists(self.path)
        self._fh = open(self.path, "r+b" if exists else "w+b")
        if exists:
            size = os.fstat(self._fh.fileno()).st_size
            if size % page_size:
                raise ValueError(
                    f"{self.path} has size {size}, not a multiple of the "
                    f"page size {page_size}"
                )
            self._num_pages = size // page_size

    def _extend_to(self, num_pages: int) -> None:
        self._fh.seek(0, os.SEEK_END)
        current = self._fh.tell() // self.page_size
        if current < num_pages:
            self._fh.write(b"\x00" * (num_pages - current) * self.page_size)

    def _read_page(self, page_id: int) -> bytearray:
        self._fh.seek(page_id * self.page_size)
        data = self._fh.read(self.page_size)
        if len(data) != self.page_size:
            raise IOError(f"short read of page {page_id} from {self.path}")
        return bytearray(data)

    def _write_page(self, page_id: int, data: bytes) -> None:
        self._fh.seek(page_id * self.page_size)
        self._fh.write(data)

    def sync(self) -> None:
        """Flush buffered writes and fsync the backing file."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()
