"""LRU buffer pool with pin counts and physical-IO accounting.

The pool mirrors the experimental setup in the paper (Section 5.1): a fixed
number of frames (2048 pages of 4 KB in the paper), LRU replacement among
unpinned frames, and write-back of dirty pages at eviction.  Every physical
read and write is counted in :class:`repro.storage.stats.IOStats`; these
counts are the IO component of every figure in the evaluation.

Index code interacts with the pool through short pin/unpin windows::

    with pool.pinned(page_id) as page:
        ...read or mutate page.data...

Eviction observers (registered with :meth:`BufferPool.add_eviction_listener`)
let higher layers (the node stores keep deserialized node objects) drop
cached objects when their backing page leaves memory, so that re-accessing
the node is correctly charged a physical read.

:meth:`BufferPool.attach_metrics` exports every :class:`IOStats` counter
(plus residency/hit-rate gauges) into a
:class:`repro.obs.metrics.MetricsRegistry` through a pull collector: the
hot paths keep incrementing the same plain integers, and the registry
mirrors them only when an export is taken.

Concurrency invariant (single writer per shard)
-----------------------------------------------
The pool itself is *not* internally locked.  In the concurrent service
(``repro.service``) each shard owns a private pagefile + pool, and the
shard's lock model guarantees at most one thread operates on the pool at
a time: writers hold the shard's exclusive lock, and tree-descent reads
(which mutate LRU order and pin counts) are serialized by the shard's
tree mutex.  Sharing one pool between unsynchronized threads is
unsupported.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.storage.page import PAGE_SIZE, Page
from repro.storage.pagefile import PageFile
from repro.storage.stats import IOStats

DEFAULT_POOL_PAGES = 2048
"""Default pool capacity in pages, matching the paper's configuration."""


class BufferPoolFullError(RuntimeError):
    """Raised when every frame is pinned and a new page must be brought in."""


class BufferPool:
    """Fixed-capacity LRU page cache over a :class:`PageFile`."""

    def __init__(self, pagefile: PageFile, capacity: int = DEFAULT_POOL_PAGES,
                 stats: IOStats | None = None):
        if capacity <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.pagefile = pagefile
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        # OrderedDict in LRU order: oldest first.
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self._eviction_listeners: list[Callable[[int], None]] = []
        # Optional write guard, invoked with the page id before every
        # dirty write-back.  The checkpoint layer installs one that
        # shadows the page's pre-checkpoint on-disk image into an undo
        # journal, which is what makes between-checkpoint evictions
        # crash-consistent (see repro.storage.journal).
        self._write_guard: Callable[[int], None] | None = None
        self._guard_suspended = 0

    # ------------------------------------------------------------------ #
    # Frame management
    # ------------------------------------------------------------------ #

    @property
    def num_frames(self) -> int:
        """Pages currently resident."""
        return len(self._frames)

    def is_resident(self, page_id: int) -> bool:
        """True if ``page_id`` is currently in the pool (no LRU touch)."""
        return page_id in self._frames

    def add_eviction_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the page id of every eviction."""
        self._eviction_listeners.append(listener)

    def remove_eviction_listener(self, listener: Callable[[int], None]) \
            -> None:
        """Unregister a previously added eviction listener (no-op if
        absent).  Listener owners that die before the pool (e.g. a retired
        sub-index's node cache) must call this, or the pool keeps them --
        and everything they reference -- alive and keeps invoking them."""
        try:
            self._eviction_listeners.remove(listener)
        except ValueError:
            pass

    def set_write_guard(self,
                        guard: Callable[[int], None] | None) -> None:
        """Install (or clear, with ``None``) the pre-write-back guard.

        The guard runs with the page id *before* a dirty page's bytes
        reach the page file, from :meth:`flush_page` and eviction alike.
        If it raises, the write-back is abandoned and the page stays
        resident and dirty -- nothing is lost.
        """
        self._write_guard = guard

    @contextmanager
    def unguarded(self) -> Iterator[None]:
        """Suspend the write guard for the block.  The checkpoint flush
        uses this: pages covered by a committed redo journal need no
        undo shadowing."""
        self._guard_suspended += 1
        try:
            yield
        finally:
            self._guard_suspended -= 1

    def dirty_page_images(self) -> "dict[int, bytes]":
        """Snapshot of every dirty resident page as ``{page id: bytes}``.

        This is the exact set :meth:`flush_all` would write, taken
        through a public API so the checkpoint journal and the flush are
        guaranteed to agree on the dirty set.
        """
        return {page.page_id: bytes(page.data)
                for page in self._frames.values() if page.dirty}

    def attach_metrics(self, registry, prefix: str = "pool") -> None:
        """Mirror this pool's counters into ``registry`` (a
        :class:`repro.obs.metrics.MetricsRegistry`) under ``prefix``.

        Registers a pull collector, so the fetch/evict hot paths are not
        touched: every :class:`IOStats` field becomes a
        ``{prefix}_{field}_total`` counter (new fields are picked up
        automatically), plus ``{prefix}_resident_pages`` /
        ``{prefix}_capacity_pages`` / ``{prefix}_hit_rate`` gauges.
        """
        counters = {
            name: registry.counter(f"{prefix}_{name}_total",
                                   help=f"buffer pool {name.replace('_', ' ')}")
            for name in self.stats.counters()
        }
        resident = registry.gauge(f"{prefix}_resident_pages",
                                  help="pages currently in the pool")
        capacity = registry.gauge(f"{prefix}_capacity_pages",
                                  help="pool capacity in pages")
        hit_rate = registry.gauge(f"{prefix}_hit_rate",
                                  help="1 - physical/logical reads")

        def collect() -> None:
            for name, value in self.stats.counters().items():
                counters[name].set_total(value)
            resident.set(len(self._frames))
            capacity.set(self.capacity)
            hit_rate.set(self.stats.hit_rate)

        registry.register_collector(collect)

    def fetch(self, page_id: int) -> Page:
        """Return the page, pinned.  Counts a logical read, and a physical
        read when the page was not resident.  Callers must unpin."""
        self.stats.logical_reads += 1
        page = self._frames.get(page_id)
        if page is None:
            self._make_room()
            data = self.pagefile.read(page_id)
            self.stats.physical_reads += 1
            page = Page(page_id, data, self.pagefile.page_size)
            self._frames[page_id] = page
        else:
            self._frames.move_to_end(page_id)
        page.pin()
        return page

    def touch(self, page_id: int) -> bool:
        """Account for a logical read of a resident page without pinning.

        Equivalent to ``fetch(page_id).unpin()`` when the page is in the
        pool: the logical read is counted and the frame moves to the MRU
        end.  Returns ``False`` -- counting nothing -- when the page is
        not resident; the caller must then fall back to :meth:`fetch` so
        the physical read is charged and the page brought in.  Exists for
        read paths that need the page's *bytes kept hot and accounted for*
        but not the bytes themselves (the decoded-node cache).
        """
        if page_id in self._frames:
            self.stats.logical_reads += 1
            self._frames.move_to_end(page_id)
            return True
        return False

    def new_page(self) -> Page:
        """Allocate a fresh page in the file and return it pinned and dirty.

        No physical read is charged; the write happens at eviction or flush.
        """
        self._make_room()
        page_id = self.pagefile.allocate()
        self.stats.pages_allocated += 1
        page = Page(page_id, None, self.pagefile.page_size)
        page.dirty = True
        page.pin()
        self._frames[page_id] = page
        return page

    def unpin(self, page: Page, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the page for write-back."""
        if dirty:
            page.mark_dirty()
        page.unpin()

    @contextmanager
    def pinned(self, page_id: int) -> Iterator[Page]:
        """Context manager that pins ``page_id`` for the duration of the
        block.  Mark the page dirty inside the block if it was mutated."""
        page = self.fetch(page_id)
        try:
            yield page
        finally:
            page.unpin()

    def free_page(self, page_id: int) -> None:
        """Drop the page from the pool (without write-back) and free it in
        the file.  The page must not be pinned."""
        page = self._frames.pop(page_id, None)
        if page is not None and page.is_pinned:
            raise RuntimeError(f"cannot free pinned page {page_id}")
        self.pagefile.free(page_id)
        self.stats.pages_freed += 1

    # ------------------------------------------------------------------ #
    # Write-back
    # ------------------------------------------------------------------ #

    def _write_back(self, page: Page) -> None:
        """Write one dirty page's bytes to the page file, running the
        write guard first.  Raises before any byte is written when
        either the guard or the page file fails."""
        if self._write_guard is not None and not self._guard_suspended:
            self._write_guard(page.page_id)
        self.pagefile.write(page.page_id, bytes(page.data))
        self.stats.physical_writes += 1

    def flush_page(self, page_id: int) -> None:
        """Write the page back if dirty; it stays resident."""
        page = self._frames.get(page_id)
        if page is not None and page.dirty:
            self._write_back(page)
            page.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty resident page, in ascending page-id
        order.

        Page ids order the backing file, so an id-ordered write-back is a
        (mostly) sequential pass over the file rather than the arbitrary
        LRU order the frame table happens to be in -- exactly the access
        pattern :class:`repro.storage.stats.DiskModel` rewards through
        ``sequential_fraction``.  The physical-write count is unchanged;
        only the order differs.
        """
        for page_id in sorted(page_id for page_id, page
                              in self._frames.items() if page.dirty):
            self.flush_page(page_id)

    def clear(self) -> None:
        """Flush everything and empty the pool (all pins must be released)."""
        pinned = [p.page_id for p in self._frames.values() if p.is_pinned]
        if pinned:
            raise RuntimeError(f"cannot clear pool with pinned pages {pinned}")
        self.flush_all()
        for page_id in list(self._frames):
            self._evict(page_id)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _make_room(self) -> None:
        """Evict LRU unpinned pages until a frame is available."""
        while len(self._frames) >= self.capacity:
            victim_id = self._pick_victim()
            self._evict(victim_id)

    def _pick_victim(self) -> int:
        for page_id, page in self._frames.items():  # oldest first
            if not page.is_pinned:
                return page_id
        raise BufferPoolFullError(
            f"all {self.capacity} frames are pinned; cannot evict"
        )

    def _evict(self, page_id: int) -> None:
        # Write back *before* dropping the frame: if the write (or its
        # guard) raises -- a transient IO fault, say -- the page stays
        # resident and dirty, and a retried operation still sees it.
        # The old pop-then-write order silently lost the page's bytes.
        page = self._frames[page_id]
        if page.dirty:
            self._write_back(page)
            page.dirty = False
        del self._frames[page_id]
        self.stats.evictions += 1
        for listener in self._eviction_listeners:
            listener(page_id)

    def __repr__(self) -> str:
        return (
            f"BufferPool(frames={len(self._frames)}/{self.capacity}, "
            f"reads={self.stats.physical_reads}, "
            f"writes={self.stats.physical_writes})"
        )
