"""Crash-consistent checkpoints: redo journal + eviction undo journal.

Two journals together make an on-disk index consistent at checkpoint
granularity no matter where a crash lands (the recovery contract is
specified in docs/DURABILITY.md):

**Redo journal** (the classic double-write protocol -- InnoDB's
doublewrite buffer): before a checkpoint flush touches the page file,
every dirty page image is written to a journal file with a CRC and a
commit marker, and both the journal and its directory are fsynced.  A
crash mid-flush is repaired by replaying the committed journal;
a journal without a commit marker is discarded (the flush never
started).  Since the checkpoint's *metadata sidecar* is what names the
committed state, the journal carries the sidecar's ``checkpoint_id``:
recovery replays it only when it matches the sidecar on disk, so a
crash between journal commit and sidecar rename can never push a new
checkpoint's pages under the old checkpoint's metadata.

**Undo journal** (a rollback journal, as in SQLite): between
checkpoints the buffer pool evicts dirty pages straight into the page
file, which would silently diverge the file from the last committed
sidecar.  :func:`attach_undo_journal` installs a buffer-pool write
guard that, before the *first* post-checkpoint write-back of each page,
appends the page's current on-disk image (its committed checkpoint
image) to an append-only undo file and fsyncs it.  Recovery applies the
undo journal to roll those pages back, restoring exactly the last
committed checkpoint.  Each record carries its own CRC so a torn tail
(crash mid-append) is detected and ignored -- safe, because the record
is made durable *before* the page write it shadows.

:func:`recover_checkpoint` is the decision procedure
:func:`repro.core.persistence.load_index` runs at open:

==============================  =====================================
on-disk state                   action
==============================  =====================================
redo committed, id == sidecar   replay redo, drop undo, drop redo
redo torn or id != sidecar      discard redo, then apply undo if any
no redo, undo present           apply undo (roll back evictions)
nothing left over               clean open
==============================  =====================================

Ordering note: recovery (and a successful checkpoint) removes the undo
journal *before* the redo journal -- an undo surviving a completed redo
replay would roll the new checkpoint back on the next open.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Optional, Tuple

from repro.storage.buffer_pool import BufferPool
from repro.storage.faults import FAILPOINTS
from repro.storage.pagefile import PageFile, fsync_dir

_MAGIC = b"STRJRNL2"
_COMMIT = b"JRNLDONE"
_HEADER = struct.Struct("<8sIIQ")     # magic, page_size, count, checkpoint id
_ENTRY_HEADER = struct.Struct("<Q")   # page id
_TRAILER = struct.Struct("<I8s")      # crc32 of entries, commit marker

_UNDO_MAGIC = b"STRUNDO1"
_UNDO_HEADER = struct.Struct("<8sI")     # magic, page_size
_UNDO_RECORD = struct.Struct("<QI")      # page id, crc32 of image


class JournalError(RuntimeError):
    """A journal exists but cannot be interpreted safely."""


def _dir_of(path: str | os.PathLike) -> str:
    return os.path.dirname(os.path.abspath(os.fspath(path)))


def _remove_durably(path: str | os.PathLike) -> None:
    """Remove ``path`` and fsync its directory so the removal survives
    a crash (a journal that resurrects would be replayed again)."""
    os.remove(path)
    fsync_dir(_dir_of(path))


# ---------------------------------------------------------------------- #
# Redo journal
# ---------------------------------------------------------------------- #

def write_journal(journal_path: str | os.PathLike,
                  pages: Dict[int, bytes], page_size: int,
                  checkpoint_id: int = 0) -> None:
    """Write (and fsync, file then directory) a committed journal
    holding ``pages``, tagged with the checkpoint it belongs to."""
    for page_id, image in pages.items():
        if len(image) != page_size:
            raise ValueError(
                f"page {page_id} image is {len(image)} bytes, expected "
                f"{page_size}")
    crc = 0
    with open(journal_path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, page_size, len(pages), checkpoint_id))
        for page_id in sorted(pages):
            entry = _ENTRY_HEADER.pack(page_id) + pages[page_id]
            crc = zlib.crc32(entry, crc)
            fh.write(entry)
        FAILPOINTS.hit("journal.partial")
        fh.write(_TRAILER.pack(crc, _COMMIT))
        fh.flush()
        os.fsync(fh.fileno())
    # The file's bytes are durable; now make its *directory entry*
    # durable too, or the whole journal can vanish on crash and defeat
    # the double-write protocol.
    fsync_dir(_dir_of(journal_path))
    FAILPOINTS.hit("journal.committed")


def read_journal_info(journal_path: str | os.PathLike,
                      page_size: int) -> Tuple[int, Dict[int, bytes]]:
    """Parse a journal into ``(checkpoint_id, pages)``; raises
    :class:`JournalError` when it is torn, uncommitted, or corrupt
    (callers then discard it)."""
    with open(journal_path, "rb") as fh:
        raw = fh.read()
    if len(raw) < _HEADER.size + _TRAILER.size:
        raise JournalError("journal too short to hold a commit marker")
    magic, journal_page_size, count, checkpoint_id = \
        _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise JournalError(f"bad journal magic {magic!r}")
    if journal_page_size != page_size:
        raise JournalError(
            f"journal page size {journal_page_size} does not match the "
            f"page file's {page_size}")
    entry_size = _ENTRY_HEADER.size + page_size
    body_end = _HEADER.size + count * entry_size
    if len(raw) < body_end + _TRAILER.size:
        raise JournalError("journal truncated before its commit marker")
    crc_stored, commit = _TRAILER.unpack_from(raw, body_end)
    if commit != _COMMIT:
        raise JournalError("journal has no commit marker")
    if zlib.crc32(raw[_HEADER.size:body_end]) != crc_stored:
        raise JournalError("journal body fails its checksum")
    pages: Dict[int, bytes] = {}
    offset = _HEADER.size
    for _ in range(count):
        (page_id,) = _ENTRY_HEADER.unpack_from(raw, offset)
        offset += _ENTRY_HEADER.size
        pages[page_id] = raw[offset: offset + page_size]
        offset += page_size
    return checkpoint_id, pages


def read_journal(journal_path: str | os.PathLike,
                 page_size: int) -> Dict[int, bytes]:
    """Parse a journal's page images (checkpoint id dropped)."""
    return read_journal_info(journal_path, page_size)[1]


def atomic_flush(pool: BufferPool, journal_path: str | os.PathLike,
                 checkpoint_id: int = 0) -> int:
    """Flush every dirty page atomically; returns the page count.

    The journal is written and fsynced before any page-file write, the
    page file is fsynced after the flush, and the journal is then
    removed durably.  A crash at any point leaves either the old page
    images (journal uncommitted) or enough information to replay the
    new ones (journal committed).

    If the pool carries an undo write guard
    (:func:`attach_undo_journal`), the flush runs *guarded*: the flushed
    pages' pre-images are shadowed first, so a later crash still rolls
    the file back to its last committed checkpoint.  The index-level
    checkpoint (:func:`repro.core.persistence.save_index`) runs its own
    sidecar-bound sequence instead of calling this helper.
    """
    page_size = pool.pagefile.page_size
    dirty = pool.dirty_page_images()
    if not dirty:
        return 0
    write_journal(journal_path, dirty, page_size,
                  checkpoint_id=checkpoint_id)
    pool.flush_all()
    pool.pagefile.sync()
    _remove_durably(journal_path)
    return len(dirty)


def _replay_pages(pagefile: PageFile, pages: Dict[int, bytes]) -> None:
    for page_id, image in sorted(pages.items()):
        while pagefile.capacity_pages <= page_id:
            pagefile.allocate()
        pagefile.write(page_id, image)


def recover(pagefile: PageFile, journal_path: str | os.PathLike) -> int:
    """Apply a leftover journal to the page file if it committed.

    Returns the number of pages replayed (0 when there is no journal or
    it never committed -- in the latter case the page file was never
    touched, so discarding the journal is the correct recovery).  This
    is the storage-level primitive paired with :func:`atomic_flush`;
    checkpointed indexes go through :func:`recover_checkpoint`, which
    also validates the checkpoint id and applies the undo journal.
    """
    if not os.path.exists(journal_path):
        return 0
    try:
        pages = read_journal(journal_path, pagefile.page_size)
    except JournalError:
        _remove_durably(journal_path)
        return 0
    _replay_pages(pagefile, pages)
    # The replayed images must be durable before the journal goes away,
    # or a second crash leaves neither.
    pagefile.sync()
    _remove_durably(journal_path)
    return len(pages)


def recover_checkpoint(pagefile: PageFile,
                       journal_path: Optional[str | os.PathLike],
                       undo_path: Optional[str | os.PathLike] = None,
                       expected_checkpoint_id: Optional[int] = None
                       ) -> Dict[str, int]:
    """Run the full recovery decision procedure (see module docstring).

    Returns ``{"replayed": n, "rolled_back": m}``: pages replayed from a
    committed matching redo journal and pages rolled back from the undo
    journal.  ``expected_checkpoint_id`` is the id in the sidecar on
    disk; ``None`` (a pre-checkpoint-id sidecar) replays any committed
    journal, the legacy behavior.
    """
    replayed = 0
    rolled_back = 0
    if journal_path is not None and os.path.exists(journal_path):
        try:
            journal_cid, pages = read_journal_info(journal_path,
                                                   pagefile.page_size)
        except JournalError:
            pages = None
        if pages is not None and (expected_checkpoint_id is None
                                  or journal_cid == expected_checkpoint_id):
            # The sidecar on disk names this very checkpoint: finish its
            # flush.  The undo journal protected the *previous*
            # checkpoint and must go first (see module docstring).
            _replay_pages(pagefile, pages)
            pagefile.sync()
            replayed = len(pages)
            if undo_path is not None and os.path.exists(undo_path):
                _remove_durably(undo_path)
            _remove_durably(journal_path)
            return {"replayed": replayed, "rolled_back": 0}
        # Torn journal, or one tagged for a checkpoint whose sidecar
        # never committed: its pages never reached the file (the flush
        # runs only after the sidecar rename), so discard it.
        _remove_durably(journal_path)
    if undo_path is not None and os.path.exists(undo_path):
        images = read_undo_journal(undo_path, pagefile.page_size)
        _replay_pages(pagefile, images)
        pagefile.sync()
        rolled_back = len(images)
        _remove_durably(undo_path)
    return {"replayed": replayed, "rolled_back": rolled_back}


# ---------------------------------------------------------------------- #
# Undo journal
# ---------------------------------------------------------------------- #

class UndoJournal:
    """Append-only rollback journal of pre-checkpoint page images.

    Records are appended (and fsynced) one at a time by the buffer
    pool's write guard; each carries its own CRC so
    :func:`read_undo_journal` can drop a torn tail.  A page is shadowed
    at most once per checkpoint interval -- its image at the last
    committed checkpoint is the only one recovery needs.
    """

    def __init__(self, path: str | os.PathLike, page_size: int):
        self.path = os.fspath(path)
        self.page_size = page_size
        self._fh = None
        self._dir_synced = False
        # Pages already shadowed this checkpoint interval.  If a
        # previous process left an undo file behind (it crashed without
        # recovery running yet), resume its record set rather than
        # double-shadowing with post-checkpoint images.
        if os.path.exists(self.path):
            self._recorded = set(read_undo_journal(self.path, page_size))
        else:
            self._recorded = set()

    @property
    def recorded(self) -> frozenset:
        """Page ids already shadowed since the last checkpoint."""
        return frozenset(self._recorded)

    def shadow(self, page_id: int, image: bytes) -> bool:
        """Append ``image`` as the rollback image for ``page_id`` and
        make it durable.  No-op (returns False) when the page was
        already shadowed this interval."""
        if page_id in self._recorded:
            return False
        if len(image) != self.page_size:
            raise ValueError(
                f"undo image for page {page_id} is {len(image)} bytes, "
                f"expected {self.page_size}")
        if self._fh is None:
            self._fh = open(self.path, "ab")
            if self._fh.tell() == 0:
                self._fh.write(_UNDO_HEADER.pack(_UNDO_MAGIC, self.page_size))
        self._fh.write(_UNDO_RECORD.pack(page_id, zlib.crc32(image)))
        self._fh.write(image)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if not self._dir_synced:
            # First record: the file itself must be findable after a
            # crash, so its directory entry needs one fsync too.
            fsync_dir(_dir_of(self.path))
            self._dir_synced = True
        self._recorded.add(page_id)
        FAILPOINTS.hit("undo.recorded")
        return True

    def reset(self) -> None:
        """Drop the journal (durably) and start a fresh interval.  The
        checkpoint calls this once the new sidecar is committed and
        flushed: the images it held protect a checkpoint that no longer
        needs protecting."""
        self.close()
        if os.path.exists(self.path):
            _remove_durably(self.path)
        self._recorded.clear()
        self._dir_synced = False

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_undo_journal(undo_path: str | os.PathLike,
                      page_size: int) -> Dict[int, bytes]:
    """Parse an undo journal, ignoring a torn tail record.

    Tolerance is safe by construction: a record is fsynced *before* the
    page write it shadows, so a torn tail means that write never
    happened and there is nothing to roll back for it.  A later record
    for the same page never occurs (one shadow per page per interval);
    if corruption ever produced one, the first image -- the committed
    one -- wins.
    """
    with open(undo_path, "rb") as fh:
        raw = fh.read()
    if len(raw) < _UNDO_HEADER.size:
        return {}
    magic, undo_page_size = _UNDO_HEADER.unpack_from(raw, 0)
    if magic != _UNDO_MAGIC:
        raise JournalError(f"bad undo journal magic {magic!r}")
    if undo_page_size != page_size:
        raise JournalError(
            f"undo journal page size {undo_page_size} does not match "
            f"the page file's {page_size}")
    images: Dict[int, bytes] = {}
    offset = _UNDO_HEADER.size
    record_size = _UNDO_RECORD.size + page_size
    while offset + record_size <= len(raw):
        page_id, crc_stored = _UNDO_RECORD.unpack_from(raw, offset)
        image = raw[offset + _UNDO_RECORD.size: offset + record_size]
        if zlib.crc32(image) != crc_stored:
            break  # torn tail: the shadowed write never happened
        images.setdefault(page_id, image)
        offset += record_size
    return images


def attach_undo_journal(pool: BufferPool,
                        undo_path: str | os.PathLike) -> UndoJournal:
    """Install the eviction write guard that keeps ``pool``'s page file
    recoverable to its last committed checkpoint.

    Before the first post-checkpoint write-back of each page, the
    page's *current on-disk image* -- by construction its image at the
    last committed checkpoint -- is appended to the undo journal and
    fsynced.  Only then may the new bytes overwrite it.  The journal
    object is also exposed as ``pool.undo_journal`` so the checkpoint
    can reset it.
    """
    undo = UndoJournal(undo_path, pool.pagefile.page_size)

    def guard(page_id: int) -> None:
        if page_id in undo._recorded:
            return
        undo.shadow(page_id, bytes(pool.pagefile.read(page_id)))
        pool.stats.shadow_writes += 1

    pool.set_write_guard(guard)
    pool.undo_journal = undo
    return undo
