"""Crash-consistent checkpoints via a double-write journal.

A buffer pool flush writes many pages; a crash partway through leaves the
page file with a mix of old and new images -- a torn checkpoint that can
corrupt the index.  :func:`atomic_flush` makes the flush atomic with the
classic double-write protocol (InnoDB's doublewrite buffer, SQLite's
rollback journal):

1. every dirty page image is first appended to a *journal* file, followed
   by a CRC and a commit marker, and the journal is fsynced;
2. only then are the pages written to the page file;
3. on success the journal is deleted.

:func:`recover` runs at open time: a journal with a valid commit marker
is replayed into the page file (the crash happened during or after step
2 -- replaying is idempotent); a journal without one is discarded (the
crash happened during step 1, so the page file was never touched).

Combined with the atomically-renamed metadata sidecar of
:mod:`repro.core.persistence`, an on-disk STRIPES index is consistent at
checkpoint granularity no matter where a crash lands.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict

from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile

_MAGIC = b"STRJRNL1"
_COMMIT = b"JRNLDONE"
_HEADER = struct.Struct("<8sII")      # magic, page_size, page count
_ENTRY_HEADER = struct.Struct("<Q")   # page id
_TRAILER = struct.Struct("<I8s")      # crc32 of entries, commit marker


class JournalError(RuntimeError):
    """A journal exists but cannot be interpreted safely."""


def write_journal(journal_path: str | os.PathLike,
                  pages: Dict[int, bytes], page_size: int) -> None:
    """Write (and fsync) a committed journal holding ``pages``."""
    for page_id, image in pages.items():
        if len(image) != page_size:
            raise ValueError(
                f"page {page_id} image is {len(image)} bytes, expected "
                f"{page_size}")
    crc = 0
    with open(journal_path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, page_size, len(pages)))
        for page_id in sorted(pages):
            entry = _ENTRY_HEADER.pack(page_id) + pages[page_id]
            crc = zlib.crc32(entry, crc)
            fh.write(entry)
        fh.write(_TRAILER.pack(crc, _COMMIT))
        fh.flush()
        os.fsync(fh.fileno())


def read_journal(journal_path: str | os.PathLike,
                 page_size: int) -> Dict[int, bytes]:
    """Parse a journal; raises :class:`JournalError` when it is torn,
    uncommitted, or corrupt (callers then discard it)."""
    with open(journal_path, "rb") as fh:
        raw = fh.read()
    if len(raw) < _HEADER.size + _TRAILER.size:
        raise JournalError("journal too short to hold a commit marker")
    magic, journal_page_size, count = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise JournalError(f"bad journal magic {magic!r}")
    if journal_page_size != page_size:
        raise JournalError(
            f"journal page size {journal_page_size} does not match the "
            f"page file's {page_size}")
    entry_size = _ENTRY_HEADER.size + page_size
    body_end = _HEADER.size + count * entry_size
    if len(raw) < body_end + _TRAILER.size:
        raise JournalError("journal truncated before its commit marker")
    crc_stored, commit = _TRAILER.unpack_from(raw, body_end)
    if commit != _COMMIT:
        raise JournalError("journal has no commit marker")
    if zlib.crc32(raw[_HEADER.size:body_end]) != crc_stored:
        raise JournalError("journal body fails its checksum")
    pages: Dict[int, bytes] = {}
    offset = _HEADER.size
    for _ in range(count):
        (page_id,) = _ENTRY_HEADER.unpack_from(raw, offset)
        offset += _ENTRY_HEADER.size
        pages[page_id] = raw[offset: offset + page_size]
        offset += page_size
    return pages


def atomic_flush(pool: BufferPool, journal_path: str | os.PathLike) -> int:
    """Flush every dirty page atomically; returns the page count.

    The journal is written and fsynced before any page-file write, then
    removed once all pages are down.  A crash at any point leaves either
    the old page images (journal uncommitted) or enough information to
    replay the new ones (journal committed).
    """
    page_size = pool.pagefile.page_size
    dirty = {page.page_id: bytes(page.data)
             for page in pool._frames.values() if page.dirty}
    if not dirty:
        return 0
    write_journal(journal_path, dirty, page_size)
    pool.flush_all()
    os.remove(journal_path)
    return len(dirty)


def recover(pagefile: PageFile, journal_path: str | os.PathLike) -> int:
    """Apply a leftover journal to the page file if it committed.

    Returns the number of pages replayed (0 when there is no journal or
    it never committed -- in the latter case the page file was never
    touched, so discarding the journal is the correct recovery).
    """
    if not os.path.exists(journal_path):
        return 0
    try:
        pages = read_journal(journal_path, pagefile.page_size)
    except JournalError:
        os.remove(journal_path)
        return 0
    for page_id, image in pages.items():
        while pagefile.capacity_pages <= page_id:
            pagefile.allocate()
        pagefile.write(page_id, image)
    os.remove(journal_path)
    return len(pages)
