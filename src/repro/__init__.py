"""STRIPES reproduction: predicted-trajectory indexing (SIGMOD 2004).

This package reproduces *STRIPES: An Efficient Index for Predicted
Trajectories* (Patel, Chen & Chakka, SIGMOD 2004) as a complete Python
library:

* :class:`repro.StripesIndex` -- the paper's contribution: a dual-space
  quadtree index over predicted trajectories.
* :class:`repro.tpr.TPRTree` / :class:`repro.tpr.TPRStarTree` -- the
  baselines it is evaluated against.
* :mod:`repro.workload` -- a reimplementation of the Saltenis et al.
  moving-object workload generator used by the paper.
* :mod:`repro.bench` -- the harness that regenerates every figure of the
  paper's evaluation section.

Quickstart::

    from repro import MovingObjectState, StripesConfig, StripesIndex
    from repro.query import TimeSliceQuery

    index = StripesIndex(StripesConfig(vmax=(3.0, 3.0),
                                       pmax=(1000.0, 1000.0),
                                       lifetime=120.0))
    index.insert(MovingObjectState(oid=1, pos=(100.0, 200.0),
                                   vel=(1.5, -2.0), t=0.0))
    print(index.query(TimeSliceQuery((0.0, 0.0), (500.0, 500.0), t=60.0)))
"""

from repro.baselines.scan import ScanIndex
from repro.core.persistence import load_index, save_index
from repro.core.quadtree import QuadTreeConfig
from repro.core.stripes import StripesConfig, StripesIndex
from repro.extensions import distance_join, knn
from repro.obs import MetricsRegistry, QueryExplain, Tracer
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)
from repro.service import ServiceConfig, ShardedStripes, StripesService

__version__ = "1.0.0"

__all__ = [
    "MovingObjectState",
    "TimeSliceQuery",
    "WindowQuery",
    "MovingQuery",
    "StripesConfig",
    "StripesIndex",
    "QuadTreeConfig",
    "ScanIndex",
    "knn",
    "distance_join",
    "MetricsRegistry",
    "Tracer",
    "QueryExplain",
    "ShardedStripes",
    "StripesService",
    "ServiceConfig",
    "save_index",
    "load_index",
    "__version__",
]
