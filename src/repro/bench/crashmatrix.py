"""Crash-matrix harness: kill the index everywhere, prove recovery.

The harness replays one deterministic mixed workload (bulk load, then
interleaved inserts / updates / deletes / checkpoints across a lifetime
rotation) over a :class:`repro.storage.faults.FaultyPageFile`, and kills
the process at every interesting point:

* at the *k*-th page write (stride-sampled over the whole run, which
  covers evictions between checkpoints, journal-covered checkpoint
  flushes, and everything in between);
* with a *torn* page write -- only a byte prefix reaches the platter;
* at every named failpoint the workload crosses (mid redo journal, mid
  sidecar rename, between undo drop and redo drop, ...), discovered by
  recording a clean run first;
* with transient IO errors (failed writes that abort the op but leave
  the process notionally dead, so recovery still has to work);
* at stray reads, and once with no fault at all (the control).

After each kill the index is reopened from the page file's *durable*
image -- unsynced writes survive or die according to the chosen survival
policy -- via :func:`repro.core.persistence.load_index`, which resolves
any leftover redo/undo journals.  The reopened index must:

1. report ``index.check() == []`` (structural invariants at the store,
   quadtree, and index level);
2. answer a panel of probe queries identically to a never-crashed
   :class:`repro.baselines.scan.ScanIndex` replica frozen at the same
   checkpoint (exact id-set parity, plus live-count parity);
3. *resume*: replay the rest of the workload -- further checkpoints
   included -- and still match the oracle at the end.

Run it from the bench CLI::

    python -m repro.bench.cli crashmatrix --survival none --json out.json
"""

from __future__ import annotations

import os
import random
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.scan import ScanIndex
from repro.core.persistence import load_index, save_index
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import (MovingObjectState, MovingQuery,
                               PredictiveQuery, TimeSliceQuery, WindowQuery)
from repro.storage.buffer_pool import BufferPool
from repro.storage.faults import (FAILPOINTS, FaultyPageFile, InjectedCrash,
                                  TransientIOError)
from repro.storage.pagefile import InMemoryPageFile

__all__ = [
    "CrashWorkload",
    "MatrixReport",
    "ScenarioResult",
    "build_workload",
    "run_crash_matrix",
]


# --------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------- #

#: Default index configuration for the matrix (small domain, short
#: lifetime so the workload crosses a window rotation quickly).
DEFAULT_CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0),
                               lifetime=30.0)


@dataclass
class CrashWorkload:
    """A deterministic op tape plus where its checkpoints sit.

    ``ops`` entries are tuples: ``("insert", state)``,
    ``("update", old, new)``, ``("delete", state)``, or
    ``("checkpoint", t_now)``.  ``checkpoint_positions[cid]`` is the op
    index of the checkpoint that committed ``cid``.
    """

    config: StripesConfig
    seed: int
    ops: List[tuple]
    checkpoint_positions: Dict[int, int]
    final_time: float

    @property
    def n_checkpoints(self) -> int:
        return len(self.checkpoint_positions)


def build_workload(seed: int = 0, n_initial: int = 600, n_ops: int = 600,
                   n_checkpoints: int = 4,
                   config: Optional[StripesConfig] = None) -> CrashWorkload:
    """Bulk load ``n_initial`` objects in window 0, checkpoint, then run
    ``n_ops`` mixed operations with ``n_checkpoints - 1`` further
    checkpoints while time advances across ~2.5 lifetime windows."""
    config = config or DEFAULT_CONFIG
    rng = random.Random(seed)
    lifetime = config.lifetime
    ops: List[tuple] = []
    positions: Dict[int, int] = {}
    live: Dict[int, MovingObjectState] = {}
    next_oid = 0

    def new_state(oid: int, t: float) -> MovingObjectState:
        return MovingObjectState(
            oid,
            (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            (rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)),
            t)

    for _ in range(n_initial):
        state = new_state(next_oid, rng.uniform(0.0, lifetime * 0.85))
        live[next_oid] = state
        next_oid += 1
        ops.append(("insert", state))

    cid = 1
    t_now = lifetime * 0.9
    ops.append(("checkpoint", t_now))
    positions[cid] = len(ops) - 1

    checkpoint_every = max(1, n_ops // max(1, n_checkpoints - 1))
    dt = (lifetime * 1.6) / max(1, n_ops)
    for i in range(n_ops):
        t_now += dt
        roll = rng.random()
        if roll < 0.55 and live:
            oid = rng.choice(sorted(live))
            old = live[oid]
            new = new_state(oid, t_now)
            live[oid] = new
            ops.append(("update", old, new))
        elif roll < 0.90 or not live:
            state = new_state(next_oid, t_now)
            live[next_oid] = state
            next_oid += 1
            ops.append(("insert", state))
        else:
            oid = rng.choice(sorted(live))
            ops.append(("delete", live.pop(oid)))
        if (i + 1) % checkpoint_every == 0 and cid < n_checkpoints:
            cid += 1
            ops.append(("checkpoint", t_now))
            positions[cid] = len(ops) - 1

    return CrashWorkload(config=config, seed=seed, ops=ops,
                         checkpoint_positions=positions, final_time=t_now)


def probe_queries(config: StripesConfig,
                  t_now: float) -> Tuple[PredictiveQuery, ...]:
    """Fixed probe panel, anchored at workload time ``t_now``: a
    full-domain time slice, a selective slice, a window query, and a
    moving query."""
    span = config.lifetime
    return (
        TimeSliceQuery((0.0, 0.0), config.pmax, t_now),
        TimeSliceQuery((20.0, 20.0), (70.0, 80.0), t_now + 0.3 * span),
        WindowQuery((10.0, 40.0), (55.0, 90.0), t_now, t_now + 0.5 * span),
        MovingQuery((0.0, 0.0), (30.0, 30.0), (50.0, 50.0), (80.0, 80.0),
                    t_now, t_now + span),
    )


def _evaluate(index, probes) -> List[List[int]]:
    return [sorted(index.query(q)) for q in probes]


@dataclass
class _Snapshot:
    """The oracle's answers frozen at one checkpoint (or at the end)."""
    t_now: float
    answers: List[List[int]]
    live: int


def _oracle_snapshots(workload: CrashWorkload) \
        -> Tuple[Dict[int, _Snapshot], _Snapshot]:
    """Replay the tape through :class:`ScanIndex`; freeze probe answers
    at every checkpoint and at the end of the tape."""
    scan = ScanIndex(workload.config.lifetime)
    snapshots: Dict[int, _Snapshot] = {}
    cid = 0
    for op in workload.ops:
        if op[0] == "checkpoint":
            cid += 1
            t_now = op[1]
            snapshots[cid] = _Snapshot(
                t_now, _evaluate(scan, probe_queries(workload.config, t_now)),
                len(scan))
        else:
            _apply_scan(scan, op)
    final = _Snapshot(
        workload.final_time,
        _evaluate(scan, probe_queries(workload.config, workload.final_time)),
        len(scan))
    return snapshots, final


def _apply_scan(scan: ScanIndex, op: tuple) -> None:
    if op[0] == "insert":
        scan.insert(op[1])
    elif op[0] == "update":
        scan.update(op[1], op[2])
    elif op[0] == "delete":
        scan.delete(op[1])


def _scan_through(workload: CrashWorkload, upto: int) -> ScanIndex:
    """Fresh oracle replayed through ``ops[:upto]`` (checkpoints skipped)."""
    scan = ScanIndex(workload.config.lifetime)
    for op in workload.ops[:upto]:
        if op[0] != "checkpoint":
            _apply_scan(scan, op)
    return scan


# --------------------------------------------------------------------- #
# Scenario execution
# --------------------------------------------------------------------- #

@dataclass
class _Paths:
    meta: str
    journal: str
    undo: str

    @classmethod
    def in_dir(cls, directory: str) -> "_Paths":
        return cls(meta=os.path.join(directory, "idx.meta"),
                   journal=os.path.join(directory, "idx.journal"),
                   undo=os.path.join(directory, "idx.journal.undo"))


def _apply_index(index: StripesIndex, op: tuple, paths: _Paths) -> None:
    if op[0] == "insert":
        index.insert(op[1])
    elif op[0] == "update":
        index.update(op[1], op[2])
    elif op[0] == "delete":
        index.delete(op[1])
    else:
        save_index(index, paths.meta, journal_path=paths.journal,
                   undo_path=paths.undo)


@dataclass
class ScenarioResult:
    name: str
    fault: str
    crashed: bool
    recovered_checkpoint: Optional[int]
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fault": self.fault,
            "crashed": self.crashed,
            "recovered_checkpoint": self.recovered_checkpoint,
            "ok": self.ok,
            "failures": list(self.failures),
        }


@dataclass
class MatrixReport:
    seed: int
    survival: str
    total_writes: int
    total_reads: int
    failpoint_hits: Dict[str, int]
    scenarios: List[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for s in self.scenarios if s.ok)

    @property
    def failed(self) -> int:
        return len(self.scenarios) - self.passed

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "survival": self.survival,
            "total_writes": self.total_writes,
            "total_reads": self.total_reads,
            "failpoint_hits": dict(self.failpoint_hits),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "passed": self.passed,
            "failed": self.failed,
            "ok": self.ok,
        }

    def summary_lines(self) -> List[str]:
        lines = [f"crash matrix: {self.passed}/{len(self.scenarios)} "
                 f"scenarios passed (survival={self.survival}, "
                 f"seed={self.seed}, {self.total_writes} writes, "
                 f"{sum(self.failpoint_hits.values())} failpoint hits)"]
        for s in self.scenarios:
            if not s.ok:
                lines.append(f"  FAIL {s.name} [{s.fault}]")
                for failure in s.failures:
                    lines.append(f"       {failure}")
        return lines


def _new_index(workload: CrashWorkload,
               pool_pages: int) -> Tuple[StripesIndex, FaultyPageFile]:
    faulty = FaultyPageFile(InMemoryPageFile())
    pool = BufferPool(faulty, capacity=pool_pages)
    return StripesIndex(workload.config, pool), faulty


def _survival_policy(survival: str, seed: int):
    if survival == "mix":
        return random.Random(seed)
    if survival in ("none", "all"):
        return survival
    raise ValueError(f"unknown survival policy {survival!r} "
                     "(expected 'none', 'all', or 'mix')")


def _run_scenario(name: str, fault: str, workload: CrashWorkload,
                  snapshots: Dict[int, _Snapshot], final: _Snapshot,
                  directory: str, pool_pages: int, survival: str,
                  arm: Callable[[FaultyPageFile], None],
                  resume: bool = True) -> ScenarioResult:
    """Replay the tape with ``arm``'s fault installed; on a kill, reopen
    from the durable image and verify invariants + oracle parity."""
    paths = _Paths.in_dir(directory)
    os.makedirs(directory, exist_ok=True)
    result = ScenarioResult(name=name, fault=fault, crashed=False,
                            recovered_checkpoint=None)
    index, faulty = _new_index(workload, pool_pages)
    try:
        arm(faulty)
        for op in workload.ops:
            _apply_index(index, op, paths)
    except (InjectedCrash, TransientIOError):
        # The process is dead (a transient error is treated as an abort:
        # in-memory state is no longer trustworthy mid-op).
        result.crashed = True
    finally:
        FAILPOINTS.clear()

    if not result.crashed:
        # Fault never fired (or control run): verify the live index.
        result.failures.extend(
            _compare(index, final, probe_queries(workload.config,
                                                 final.t_now), "live"))
        result.failures.extend(index.check())

    if not os.path.exists(paths.meta):
        # Killed before the first checkpoint ever committed: there is no
        # index to reopen, which is the correct contract.
        return result

    pagefile = faulty.reopen_durable(_survival_policy(
        survival, workload.seed ^ hash(name) & 0xFFFF))
    pool = BufferPool(pagefile, capacity=pool_pages)
    try:
        reopened = load_index("<crashmatrix-in-memory>", paths.meta,
                              pool=pool, journal_path=paths.journal,
                              undo_path=paths.undo)
    except Exception as exc:  # noqa: BLE001 - any reopen error is a finding
        result.failures.append(f"reopen failed: {exc!r}")
        return result

    cid = reopened.checkpoint_id
    result.recovered_checkpoint = cid
    snapshot = snapshots.get(cid)
    if snapshot is None:
        result.failures.append(
            f"recovered checkpoint id {cid} matches no oracle snapshot")
        return result

    problems = reopened.check()
    if problems:
        result.failures.extend(f"check after reopen: {p}" for p in problems)
    result.failures.extend(_compare(
        reopened, snapshot, probe_queries(workload.config, snapshot.t_now),
        f"checkpoint {cid}"))

    if resume and not result.failures:
        result.failures.extend(
            _resume_and_verify(reopened, workload, cid, paths, final))
    return result


def _compare(index, snapshot: _Snapshot, probes, label: str) -> List[str]:
    failures = []
    got = _evaluate(index, probes)
    for i, (probe, want, have) in enumerate(zip(probes, snapshot.answers,
                                                got)):
        if want != have:
            missing = sorted(set(want) - set(have))[:5]
            extra = sorted(set(have) - set(want))[:5]
            failures.append(
                f"{label}: probe {i} ({type(probe).__name__}) mismatch: "
                f"missing={missing} extra={extra} "
                f"({len(want)} expected, {len(have)} got)")
    if len(index) != snapshot.live:
        failures.append(f"{label}: live count {len(index)} != oracle "
                        f"{snapshot.live}")
    return failures


def _resume_and_verify(index: StripesIndex, workload: CrashWorkload,
                       cid: int, paths: _Paths,
                       final: _Snapshot) -> List[str]:
    """Prove the reopened index is *usable*: replay everything after the
    recovered checkpoint (lost ops re-submitted, further checkpoints
    included) and gate on end-of-tape parity with a fresh oracle."""
    pos = workload.checkpoint_positions[cid]
    scan = _scan_through(workload, pos + 1)
    try:
        for op in workload.ops[pos + 1:]:
            _apply_index(index, op, paths)
            _apply_scan(scan, op)
    except Exception as exc:  # noqa: BLE001
        return [f"resume after checkpoint {cid} raised {exc!r}"]
    probes = probe_queries(workload.config, workload.final_time)
    oracle_final = _Snapshot(workload.final_time, _evaluate(scan, probes),
                             len(scan))
    failures = _compare(index, oracle_final, probes, f"resume from {cid}")
    failures.extend(f"check after resume: {p}" for p in index.check())
    return failures


# --------------------------------------------------------------------- #
# The matrix
# --------------------------------------------------------------------- #

def _sample_positions(total: int, count: int) -> List[int]:
    """``count`` distinct 1-based positions spread over ``[1, total]``."""
    if total <= 0 or count <= 0:
        return []
    picks = {max(1, min(total, round(total * (i + 1) / (count + 1))))
             for i in range(count)}
    return sorted(picks)


def run_crash_matrix(seed: int = 0, *, n_initial: int = 600,
                     n_ops: int = 600, n_checkpoints: int = 4,
                     pool_pages: int = 12, write_stride: int = 5,
                     failpoint_stride: int = 1, torn_samples: int = 6,
                     transient_samples: int = 4, read_samples: int = 3,
                     survival: str = "none", resume: bool = True,
                     workdir: Optional[str] = None,
                     log: Optional[Callable[[str], None]] = None
                     ) -> MatrixReport:
    """Run the full crash matrix; every scenario must pass.

    ``write_stride`` thins the crash-at-write-k axis (stride 1 kills the
    index at *every* page write).  ``survival`` picks the fate of
    unsynced writes at crash time: ``"none"`` (strict fsync), ``"all"``,
    or ``"mix"`` (seeded coin flip per page).
    """
    _survival_policy(survival, 0)  # validate early
    workload = build_workload(seed, n_initial=n_initial, n_ops=n_ops,
                              n_checkpoints=n_checkpoints)
    snapshots, final = _oracle_snapshots(workload)

    owned_tmp: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="crashmatrix-")
        workdir = owned_tmp.name
    try:
        # Discovery: one clean run, recording every write and failpoint.
        FAILPOINTS.clear()
        with FAILPOINTS.record() as hits:
            index, faulty = _new_index(workload, pool_pages)
            paths = _Paths.in_dir(os.path.join(workdir, "discover"))
            os.makedirs(os.path.dirname(paths.meta), exist_ok=True)
            for op in workload.ops:
                _apply_index(index, op, paths)
        hit_counts = Counter(hits)
        report = MatrixReport(seed=seed, survival=survival,
                              total_writes=faulty.writes,
                              total_reads=faulty.reads,
                              failpoint_hits=dict(hit_counts))

        scenarios: List[Tuple[str, str, Callable[[FaultyPageFile], None]]] = \
            [("control", "none", lambda f: None)]
        for k in range(1, faulty.writes + 1, max(1, write_stride)):
            scenarios.append((f"crash-write-{k}", f"crash at write #{k}",
                              lambda f, k=k: f.crash_at_write(k)))
        page_size = faulty.page_size
        offsets = (8, page_size // 2, page_size - 8)
        for i, k in enumerate(_sample_positions(faulty.writes,
                                                torn_samples)):
            off = offsets[i % len(offsets)]
            scenarios.append(
                (f"torn-write-{k}", f"tear write #{k} at byte {off}",
                 lambda f, k=k, off=off: f.tear_at_write(k, off)))
        for k in _sample_positions(faulty.writes, transient_samples):
            scenarios.append(
                (f"failed-write-{k}", f"transient error at write #{k}",
                 lambda f, k=k: f.fail_writes_at(k)))
        for k in _sample_positions(faulty.reads, read_samples):
            scenarios.append((f"crash-read-{k}", f"crash at read #{k}",
                              lambda f, k=k: f.crash_at_read(k)))
        for name in sorted(hit_counts):
            for occurrence in range(1, hit_counts[name] + 1,
                                    max(1, failpoint_stride)):
                scenarios.append(
                    (f"failpoint-{name}-{occurrence}",
                     f"crash at failpoint {name} (hit #{occurrence})",
                     lambda f, name=name, occ=occurrence:
                         FAILPOINTS.arm(name, occ)))
            scenarios.append(
                (f"transient-{name}",
                 f"transient error at failpoint {name} (hit #1)",
                 lambda f, name=name:
                     FAILPOINTS.arm(name, 1, action="transient")))

        for i, (name, fault, arm) in enumerate(scenarios):
            result = _run_scenario(
                name, fault, workload, snapshots, final,
                os.path.join(workdir, f"s{i:04d}"), pool_pages, survival,
                arm, resume=resume)
            report.scenarios.append(result)
            if log is not None:
                status = "ok" if result.ok else "FAIL"
                log(f"[{i + 1}/{len(scenarios)}] {name}: {status}")
        return report
    finally:
        FAILPOINTS.clear()
        if owned_tmp is not None:
            owned_tmp.cleanup()
