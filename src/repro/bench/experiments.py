"""One entry point per paper figure/table (the experiment index of
DESIGN.md).

Every experiment follows the paper's setup (Section 5.1-5.2) at a
configurable *scale*: the paper's object counts, operation counts, batch
sizes, and buffer-pool pages are all multiplied by ``scale`` while the
**space dimensions stay at paper size** (a scaled-down space would change
the dual-space geometry -- the ratio of ``vmax * L`` to the position
extent -- and with it the query-region shapes; keeping the paper's space
and subsampling objects preserves the geometry and the pool:index ratio,
which are what drive the measured IO behaviour).

The paper's reference setup: space side ``1000 km * sqrt(N / 100K)``,
speeds in [0, 3] km/min, UI = 60, 600 time units, query mix 60/20/20,
spatial range 0.25 %, temporal range 40, buffer pool 2048 x 4 KB pages,
50K measured operations in batches of 5K.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import (
    IndexSetup,
    RunResult,
    make_scan,
    make_stripes,
    make_tpr,
    make_tprstar,
    run_workload,
)
from repro.core.quadtree import QuadTreeConfig
from repro.obs import MetricsRegistry
from repro.storage.page import PAGE_SIZE
from repro.storage.stats import DiskModel
from repro.workload.generator import WorkloadSpec, generate_workload
from repro.workload.operations import Workload

PAPER_POOL_PAGES = 2048
PAPER_OPS = 50_000
PAPER_BATCH = 5_000
PAPER_REFERENCE_N = 100_000
PAPER_REFERENCE_SIDE = 1000.0

MIX_LABELS = {0.8: "80-20", 0.5: "50-50", 0.2: "20-80"}


@dataclass(frozen=True)
class ExperimentScale:
    """Scales the paper's experiment sizes down to Python-friendly runs.

    ``scale=1.0`` is the paper's exact configuration (500K objects for the
    main experiments); the default 0.01 runs the same shapes with 1/100 of
    the objects, operations, and buffer pool.
    """

    scale: float = 0.01
    seed: int = 7
    disk: DiskModel = field(default_factory=DiskModel)

    def n_objects(self, paper_n: int) -> int:
        return max(500, round(paper_n * self.scale))

    @property
    def pool_pages(self) -> int:
        return max(16, round(PAPER_POOL_PAGES * self.scale))

    @property
    def n_ops(self) -> int:
        return max(200, round(PAPER_OPS * self.scale))

    @property
    def batch_size(self) -> int:
        return max(20, round(PAPER_BATCH * self.scale))

    @staticmethod
    def paper_side(paper_n: int) -> float:
        """The paper's space side for a ``paper_n``-object data set."""
        return PAPER_REFERENCE_SIDE * math.sqrt(paper_n / PAPER_REFERENCE_N)

    def workload(self, paper_n: int, update_fraction: float,
                 nd: Optional[int] = None, seed_offset: int = 0,
                 **spec_overrides) -> Workload:
        spec = WorkloadSpec(
            n_objects=self.n_objects(paper_n),
            update_fraction=update_fraction,
            nd=nd,
            space_side=self.paper_side(paper_n),
            n_operations=self.n_ops,
            seed=self.seed + seed_offset,
            **spec_overrides,
        )
        return generate_workload(spec)


_BUILDERS = {
    "STRIPES": make_stripes,
    "TPR*": make_tprstar,
    "TPR": make_tpr,
    "SCAN": lambda workload, pool_pages, **kw: make_scan(workload),
}


def _run_indexes(workload: Workload, scale: ExperimentScale,
                 indexes: Sequence[str],
                 batch_size: Optional[int] = None
                 ) -> Dict[str, RunResult]:
    results: Dict[str, RunResult] = {}
    for name in indexes:
        registry = MetricsRegistry()
        setup = _BUILDERS[name](workload, scale.pool_pages,
                                registry=registry)
        results[name] = run_workload(
            setup, workload, n_ops=scale.n_ops,
            batch_size=batch_size if batch_size is not None
            else scale.batch_size,
            keep_per_op=True, registry=registry)
    return results


# --------------------------------------------------------------------- #
# E1-E4: Figures 9-12 (500K uniform, three workload mixes)
# --------------------------------------------------------------------- #

def workload_mix_runs(scale: ExperimentScale,
                      mixes: Sequence[float] = (0.8, 0.5, 0.2),
                      indexes: Sequence[str] = ("STRIPES", "TPR*"),
                      paper_n: int = 500_000
                      ) -> Dict[str, Dict[str, RunResult]]:
    """The shared 500K-uniform runs behind Figures 9, 10, 11, and 12:
    ``{mix label: {index name: RunResult}}``."""
    out: Dict[str, Dict[str, RunResult]] = {}
    for mix in mixes:
        workload = scale.workload(paper_n, update_fraction=mix)
        label = MIX_LABELS.get(mix, f"{int(mix * 100)}-{int(100 - mix * 100)}")
        out[label] = _run_indexes(workload, scale, indexes)
    return out


def continuous_performance(scale: ExperimentScale,
                           mixes: Sequence[float] = (0.8, 0.5, 0.2),
                           indexes: Sequence[str] = ("STRIPES", "TPR*")
                           ) -> Dict[str, Dict[str, RunResult]]:
    """Figure 9: total cost per batch of operations over the first
    ``50K * scale`` operations."""
    return workload_mix_runs(scale, mixes, indexes)


# --------------------------------------------------------------------- #
# E5: Figure 13 (scaling the number of moving objects)
# --------------------------------------------------------------------- #

def scaling(scale: ExperimentScale,
            paper_ns: Sequence[int] = (100_000, 900_000),
            update_fraction: float = 0.5,
            indexes: Sequence[str] = ("STRIPES", "TPR*")
            ) -> Dict[int, Dict[str, RunResult]]:
    """Figure 13: per-update and per-query costs at 100K and 900K objects
    (scaled), 50-50 mix.  At 100K the TPR*-tree fits entirely in the
    buffer pool, which is the crossover regime the paper highlights."""
    out: Dict[int, Dict[str, RunResult]] = {}
    for paper_n in paper_ns:
        workload = scale.workload(paper_n, update_fraction)
        out[paper_n] = _run_indexes(workload, scale, indexes)
    return out


# --------------------------------------------------------------------- #
# E6: Figure 14 (data skew)
# --------------------------------------------------------------------- #

def skew(scale: ExperimentScale, nds: Sequence[int] = (20, 60),
         update_fraction: float = 0.5,
         indexes: Sequence[str] = ("STRIPES", "TPR*"),
         paper_n: int = 500_000) -> Dict[int, Dict[str, RunResult]]:
    """Figure 14: network-skewed data sets with ND destinations."""
    out: Dict[int, Dict[str, RunResult]] = {}
    for nd in nds:
        workload = scale.workload(paper_n, update_fraction, nd=nd)
        out[nd] = _run_indexes(workload, scale, indexes)
    return out


# --------------------------------------------------------------------- #
# E7: Section 5.1 structure statistics
# --------------------------------------------------------------------- #

@dataclass
class StructureStats:
    """Index structure after loading the 500K-analog uniform data set."""

    stripes_pages: int = 0
    stripes_height: int = 0
    stripes_nonleaf_nodes: int = 0
    stripes_nonleaf_bytes: int = 0
    stripes_leaf_occupancy: float = 0.0
    stripes_small_leaves: int = 0
    stripes_large_leaves: int = 0
    tprstar_pages: int = 0
    tprstar_height: int = 0

    @property
    def size_ratio(self) -> float:
        """STRIPES pages / TPR* pages (the paper reports ~2.4x)."""
        if not self.tprstar_pages:
            return float("nan")
        return self.stripes_pages / self.tprstar_pages


def structure_stats(scale: ExperimentScale, paper_n: int = 500_000,
                    float32: bool = True) -> StructureStats:
    """Load both indexes with the uniform data set and report the
    structural numbers of Section 5.1 (pages, heights, non-leaf count,
    occupancy, size ratio).  ``float32`` uses the paper's 4-byte floats."""
    workload = scale.workload(paper_n, update_fraction=0.5)
    out = StructureStats()

    stripes = make_stripes(workload, scale.pool_pages, float32=float32)
    run_workload(stripes, workload, n_ops=0)
    out.stripes_pages = stripes.index.pages_in_use()
    for tree_stats in stripes.index.stats().values():
        out.stripes_height = max(out.stripes_height, tree_stats.height)
        out.stripes_nonleaf_nodes += tree_stats.nonleaf_nodes
        out.stripes_small_leaves += tree_stats.small_leaves
        out.stripes_large_leaves += tree_stats.large_leaves
        out.stripes_leaf_occupancy = tree_stats.leaf_occupancy
    tree = next(iter(stripes.index._trees.values()))
    out.stripes_nonleaf_bytes = tree.codec.nonleaf_record_size

    tprstar = make_tprstar(workload, scale.pool_pages, float32=float32)
    run_workload(tprstar, workload, n_ops=0)
    out.tprstar_pages = tprstar.index.store.pages_in_use()
    out.tprstar_height = tprstar.index.height()
    return out


# --------------------------------------------------------------------- #
# X4-X6: parameter sweeps beyond the paper's figures
# --------------------------------------------------------------------- #

def dimension_sweep(scale: ExperimentScale,
                    dimensions: Sequence[int] = (1, 2, 3),
                    update_fraction: float = 0.5,
                    indexes: Sequence[str] = ("STRIPES", "TPR*"),
                    paper_n: int = 500_000) -> Dict[int, Dict[str, RunResult]]:
    """X4: effect of native-space dimensionality.

    The paper's central motivation (Section 1) is that TPR-style indexes
    effectively operate in ``2d`` dimensions with *boxes*, which degrade
    as ``d`` grows, while STRIPES indexes *points*.  This sweep measures
    both indexes on uniform workloads in d = 1, 2, 3 (quadtree fanout 4,
    16, 64; TPBRs with 2, 4, 6 parameterised faces)."""
    out: Dict[int, Dict[str, RunResult]] = {}
    for d in dimensions:
        workload = scale.workload(paper_n, update_fraction, d=d)
        out[d] = _run_indexes(workload, scale, indexes)
    return out


def selectivity_sweep(scale: ExperimentScale,
                      spatial_fractions: Sequence[float] = (
                          0.0005, 0.0025, 0.01, 0.04),
                      update_fraction: float = 0.2,
                      indexes: Sequence[str] = ("STRIPES", "TPR*"),
                      paper_n: int = 500_000
                      ) -> Dict[float, Dict[str, RunResult]]:
    """X5: effect of the query's spatial extent (the paper fixes it at
    0.25 % of the space; the TPR-tree evaluations sweep it)."""
    out: Dict[float, Dict[str, RunResult]] = {}
    for fraction in spatial_fractions:
        workload = scale.workload(paper_n, update_fraction,
                                  query_spatial_fraction=fraction)
        out[fraction] = _run_indexes(workload, scale, indexes)
    return out


def temporal_range_sweep(scale: ExperimentScale,
                         ranges: Sequence[float] = (1.0, 20.0, 40.0, 80.0),
                         update_fraction: float = 0.2,
                         indexes: Sequence[str] = ("STRIPES", "TPR*"),
                         paper_n: int = 500_000
                         ) -> Dict[float, Dict[str, RunResult]]:
    """X6: effect of the query temporal range W (how far into the future
    queries look; the paper fixes W = 40).  Larger W tilts the STRIPES
    dual-space bands and inflates the TPR trees' extrapolated boxes."""
    out: Dict[float, Dict[str, RunResult]] = {}
    for window in ranges:
        workload = scale.workload(paper_n, update_fraction,
                                  query_temporal_range=window)
        out[window] = _run_indexes(workload, scale, indexes)
    return out


# --------------------------------------------------------------------- #
# A1-A4: ablations
# --------------------------------------------------------------------- #

def leaf_size_ablation(scale: ExperimentScale,
                       update_fraction: float = 0.5,
                       paper_n: int = 500_000) -> Dict[str, RunResult]:
    """A1: leaf sizing schemes.  ``single-size`` = every leaf a full page;
    ``two-sizes`` = the paper's half/full scheme (Section 5.1);
    ``ladder-4`` = the paper's stated future work of more than two leaf
    sizes (1/8, 1/4, 1/2, full page), which should push occupancy higher
    still."""
    workload = scale.workload(paper_n, update_fraction)
    page = PAGE_SIZE
    configs = {
        "single-size": QuadTreeConfig(use_small_leaves=False),
        "two-sizes": QuadTreeConfig(use_small_leaves=True),
        "ladder-4": QuadTreeConfig(leaf_size_ladder=(
            (page - 10) // 8, (page - 8) // 4, (page - 6) // 2, page - 5)),
    }
    results = {}
    for label, quadtree in configs.items():
        setup = make_stripes(workload, scale.pool_pages, quadtree=quadtree,
                             name=f"STRIPES[{label}]")
        results[label] = run_workload(setup, workload, n_ops=scale.n_ops,
                                      batch_size=scale.batch_size,
                                      keep_per_op=True)
    return results


def pruning_ablation(scale: ExperimentScale,
                     update_fraction: float = 0.2,
                     paper_n: int = 500_000) -> Dict[str, RunResult]:
    """A2: the shared per-plane quad classification (Section 4.6.4) versus
    classifying every child independently.  Same answers and IOs; only
    query CPU differs."""
    workload = scale.workload(paper_n, update_fraction)
    results = {}
    for label, pruning in (("pruned", True), ("unpruned", False)):
        setup = make_stripes(
            workload, scale.pool_pages,
            quadtree=QuadTreeConfig(quad_pruning=pruning),
            name=f"STRIPES[{label}]")
        results[label] = run_workload(setup, workload, n_ops=scale.n_ops,
                                      batch_size=scale.batch_size,
                                      keep_per_op=True)
    return results


def horizon_ablation(scale: ExperimentScale,
                     horizons: Sequence[float] = (1.0, 20.0, 60.0, 120.0),
                     update_fraction: float = 0.5,
                     paper_n: int = 500_000) -> Dict[float, RunResult]:
    """A4: sensitivity of the TPR*-tree to the metric-integration horizon
    ``H``.

    All time-parameterized metrics integrate over ``[now, now+H]``
    (Section 3.1).  A short horizon optimises boxes for *current* overlap
    only, letting velocity spread blow them up by future query times; a
    horizon near the update interval (the paper's configuration and our
    default) keeps them tight across the query window.  This quantifies
    how sensitive the STRIPES-vs-TPR* query comparison is to the
    baseline's tuning.
    """
    workload = scale.workload(paper_n, update_fraction)
    results = {}
    for horizon in horizons:
        setup = make_tprstar(workload, scale.pool_pages, horizon=horizon,
                             name=f"TPR*[H={horizon:g}]")
        results[horizon] = run_workload(setup, workload, n_ops=scale.n_ops,
                                        batch_size=scale.batch_size,
                                        keep_per_op=True)
    return results


def choosepath_ablation(scale: ExperimentScale,
                        update_fraction: float = 0.5,
                        paper_n: int = 500_000) -> Dict[str, RunResult]:
    """A3: TPR*-tree (global ChoosePath + forced reinsert) versus the base
    TPR-tree greedy insertion (Section 3.2's motivation)."""
    workload = scale.workload(paper_n, update_fraction)
    return _run_indexes(workload, scale, ("TPR*", "TPR"))
