"""Render experiment results as the rows/series the paper reports.

All output is plain text so it survives CI logs and ``pytest -s``.  Costs
are reported three ways: raw physical IOs, measured CPU milliseconds, and
a *modelled total* (CPU + IOs priced by the
:class:`repro.storage.stats.DiskModel`).  The paper's absolute
milliseconds are not reproducible on a different substrate; the raw IO
and CPU columns are the comparable quantities.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.runner import RunResult
from repro.storage.stats import DiskModel


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Simple aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cost_row(name: str, result: RunResult, disk: DiskModel) -> List[object]:
    upd, qry = result.updates, result.queries
    return [
        name,
        upd.count,
        f"{upd.mean_io():.2f}",
        f"{upd.mean_cpu_seconds() * 1e3:.3f}",
        f"{upd.mean_total_seconds(disk) * 1e3:.2f}",
        qry.count,
        f"{qry.mean_io():.2f}",
        f"{qry.mean_cpu_seconds() * 1e3:.3f}",
        f"{qry.mean_total_seconds(disk) * 1e3:.2f}",
    ]


COST_HEADERS = ["index", "#upd", "upd IO/op", "upd CPU ms", "upd total ms",
                "#qry", "qry IO/op", "qry CPU ms", "qry total ms"]


def render_cost_table(title: str, results: Dict[str, RunResult],
                      disk: DiskModel) -> str:
    """Figures 11-14 style: average per-update and per-query costs."""
    rows = [_cost_row(name, result, disk)
            for name, result in results.items()]
    return format_table(COST_HEADERS, rows, title)


def render_breakdown(title: str, results: Dict[str, RunResult],
                     disk: DiskModel) -> str:
    """Figure 10 style: total IO and CPU components over the run."""
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.ops,
            result.total_physical_io(),
            f"{disk.seconds(result.total_physical_io()):.3f}",
            f"{result.total_cpu_seconds():.3f}",
            f"{result.total_seconds(disk):.3f}",
        ])
    return format_table(
        ["index", "ops", "physical IO", "IO s (model)", "CPU s", "total s"],
        rows, title)


def render_batches(title: str, results: Dict[str, RunResult],
                   disk: DiskModel) -> str:
    """Figure 9 style: per-batch total cost series for each index."""
    names = list(results)
    n_batches = max((len(r.batches) for r in results.values()), default=0)
    headers = ["batch"] + [f"{n} total s" for n in names] \
        + [f"{n} IO" for n in names]
    rows = []
    for b in range(n_batches):
        row: List[object] = [b + 1]
        for name in names:
            batches = results[name].batches
            row.append(f"{batches[b].total_seconds(disk):.3f}"
                       if b < len(batches) else "-")
        for name in names:
            batches = results[name].batches
            row.append(batches[b].physical_io if b < len(batches) else "-")
        rows.append(row)
    return format_table(headers, rows, title)


def render_load(title: str, results: Dict[str, RunResult],
                disk: DiskModel) -> str:
    """Initial bulk-load cost and resulting index size."""
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.load.physical_io,
            f"{result.load.cpu_seconds:.2f}",
            result.pages_used,
        ])
    return format_table(["index", "load IO", "load CPU s", "pages"],
                        rows, title)
