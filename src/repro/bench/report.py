"""Render experiment results as the rows/series the paper reports.

All output is plain text so it survives CI logs and ``pytest -s``.  Costs
are reported three ways: raw physical IOs, measured CPU milliseconds, and
a *modelled total* (CPU + IOs priced by the
:class:`repro.storage.stats.DiskModel`).  The paper's absolute
milliseconds are not reproducible on a different substrate; the raw IO
and CPU columns are the comparable quantities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.runner import RunResult
from repro.storage.stats import CostAccumulator, DiskModel


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Simple aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cost_row(name: str, result: RunResult, disk: DiskModel) -> List[object]:
    upd, qry = result.updates, result.queries
    return [
        name,
        upd.count,
        f"{upd.mean_io():.2f}",
        f"{upd.mean_cpu_seconds() * 1e3:.3f}",
        f"{upd.mean_total_seconds(disk) * 1e3:.2f}",
        qry.count,
        f"{qry.mean_io():.2f}",
        f"{qry.mean_cpu_seconds() * 1e3:.3f}",
        f"{qry.mean_total_seconds(disk) * 1e3:.2f}",
    ]


COST_HEADERS = ["index", "#upd", "upd IO/op", "upd CPU ms", "upd total ms",
                "#qry", "qry IO/op", "qry CPU ms", "qry total ms"]


def render_cost_table(title: str, results: Dict[str, RunResult],
                      disk: DiskModel) -> str:
    """Figures 11-14 style: average per-update and per-query costs."""
    rows = [_cost_row(name, result, disk)
            for name, result in results.items()]
    return format_table(COST_HEADERS, rows, title)


def render_breakdown(title: str, results: Dict[str, RunResult],
                     disk: DiskModel) -> str:
    """Figure 10 style: total IO and CPU components over the run."""
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.ops,
            result.total_physical_io(),
            f"{disk.seconds(result.total_physical_io()):.3f}",
            f"{result.total_cpu_seconds():.3f}",
            f"{result.total_seconds(disk):.3f}",
        ])
    return format_table(
        ["index", "ops", "physical IO", "IO s (model)", "CPU s", "total s"],
        rows, title)


def render_batches(title: str, results: Dict[str, RunResult],
                   disk: DiskModel) -> str:
    """Figure 9 style: per-batch total cost series for each index."""
    names = list(results)
    n_batches = max((len(r.batches) for r in results.values()), default=0)
    headers = ["batch"] + [f"{n} total s" for n in names] \
        + [f"{n} IO" for n in names]
    rows = []
    for b in range(n_batches):
        row: List[object] = [b + 1]
        for name in names:
            batches = results[name].batches
            row.append(f"{batches[b].total_seconds(disk):.3f}"
                       if b < len(batches) else "-")
        for name in names:
            batches = results[name].batches
            row.append(batches[b].physical_io if b < len(batches) else "-")
        rows.append(row)
    return format_table(headers, rows, title)


def _percentile_cells(acc: CostAccumulator,
                      disk: Optional[DiskModel]) -> List[str]:
    if not acc.per_op_costs():
        return ["-", "-", "-"]
    return [f"{acc.percentile(q, disk) * 1e3:.3f}"
            for q in (0.50, 0.95, 0.99)]


LATENCY_HEADERS = ["index",
                   "upd p50 ms", "upd p95 ms", "upd p99 ms",
                   "qry p50 ms", "qry p95 ms", "qry p99 ms"]


def render_latency_table(title: str, results: Dict[str, RunResult],
                         disk: Optional[DiskModel] = None) -> str:
    """Tail-latency percentiles per operation kind.

    Requires per-op costs retained by ``run_workload(keep_per_op=True)``
    (columns show ``-`` otherwise).  Without ``disk`` the percentiles are
    over measured CPU milliseconds; with it, modelled IO time is added.
    """
    rows = []
    for name, result in results.items():
        rows.append([name]
                    + _percentile_cells(result.updates, disk)
                    + _percentile_cells(result.queries, disk))
    return format_table(LATENCY_HEADERS, rows, title)


def render_metrics_snapshot(title: str, snapshot: dict,
                            prefix: str = "") -> str:
    """A metrics-registry snapshot (``MetricsRegistry.to_dict()``) as
    plain text: counters and gauges one per line, histograms as a
    count/sum/percentile summary.  ``prefix`` filters by name prefix."""
    lines = [title] if title else []
    for name in sorted(snapshot.get("counters", {})):
        if name.startswith(prefix):
            lines.append(f"  {name} = {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        if name.startswith(prefix):
            lines.append(f"  {name} = {snapshot['gauges'][name]:g}")
    for name in sorted(snapshot.get("histograms", {})):
        if not name.startswith(prefix):
            continue
        h = snapshot["histograms"][name]
        lines.append(
            f"  {name}: count={h['count']} sum={h['sum']:.6g} "
            f"p50={h['p50']:.6g} p95={h['p95']:.6g} p99={h['p99']:.6g}")
    return "\n".join(lines)


CACHE_HEADERS = ["index", "decoded hits", "decoded misses", "hit rate"]


def render_cache_table(title: str, results: Dict[str, RunResult]) -> str:
    """Decoded-node cache effectiveness per index.

    Reads the ``*_node_cache_decoded_{hits,misses}_total`` counters out
    of each result's final metrics snapshot (rows show ``-`` for indexes
    run without a registry or without a node cache, e.g. the scan
    baseline).  A hit means a node read skipped Python-level
    deserialization; the page access itself still happened.
    """
    rows = []
    for name, result in results.items():
        counters = (result.metrics or {}).get("counters", {})
        hits = misses = None
        for key, value in counters.items():
            if key.endswith("node_cache_decoded_hits_total"):
                hits = (hits or 0) + value
            elif key.endswith("node_cache_decoded_misses_total"):
                misses = (misses or 0) + value
        if hits is None and misses is None:
            rows.append([name, "-", "-", "-"])
            continue
        hits = hits or 0
        misses = misses or 0
        total = hits + misses
        rate = f"{hits / total:.3f}" if total else "-"
        rows.append([name, hits, misses, rate])
    return format_table(CACHE_HEADERS, rows, title)


WRITE_HEADERS = ["index", "inserts", "splits", "promotions", "spills",
                 "ins p50 ms", "ins p95 ms", "ins p99 ms"]

_WRITE_COUNTER_SUFFIXES = (("inserts", "_inserts_total"),
                           ("splits", "_leaf_splits_total"),
                           ("promotions", "_leaf_promotions_total"),
                           ("spills", "_overflow_spills_total"))


def render_write_table(title: str, results: Dict[str, RunResult]) -> str:
    """Write-path effort per index: insert/split/promotion/spill counters
    plus per-insert latency percentiles.

    Reads the ``*_inserts_total``-family counters and the
    ``*_insert_latency_seconds`` histogram out of each result's final
    metrics snapshot (rows show ``-`` for indexes run without a registry
    or without those instruments, e.g. the TPR trees and the scan
    baseline).
    """
    rows = []
    for name, result in results.items():
        snapshot = result.metrics or {}
        counters = snapshot.get("counters", {})
        cells: List[object] = [name]
        found = False
        for _, suffix in _WRITE_COUNTER_SUFFIXES:
            value = None
            for key, count in counters.items():
                if key.endswith(suffix):
                    value = (value or 0) + count
                    found = True
            cells.append("-" if value is None else value)
        hist = None
        for key, h in snapshot.get("histograms", {}).items():
            if key.endswith("_insert_latency_seconds"):
                hist = h
                found = True
                break
        if hist is not None and hist.get("count"):
            cells += [f"{hist[q] * 1e3:.4f}" for q in ("p50", "p95", "p99")]
        else:
            cells += ["-", "-", "-"]
        rows.append(cells if found else [name] + ["-"] * 7)
    return format_table(WRITE_HEADERS, rows, title)


def render_load(title: str, results: Dict[str, RunResult],
                disk: DiskModel) -> str:
    """Initial bulk-load cost and resulting index size."""
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.load.physical_io,
            f"{result.load.cpu_seconds:.2f}",
            result.pages_used,
        ])
    return format_table(["index", "load IO", "load CPU s", "pages"],
                        rows, title)
