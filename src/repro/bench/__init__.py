"""Benchmark harness reproducing the paper's evaluation (Section 5).

* :mod:`repro.bench.runner` -- builds each index over its own buffer pool
  and replays a workload, recording physical IOs and CPU time per
  operation.
* :mod:`repro.bench.experiments` -- one entry point per paper figure/table
  (Figures 9-14, the Section 5.1 structure statistics) plus the ablations
  of DESIGN.md.
* :mod:`repro.bench.report` -- renders results as the rows/series the
  paper plots, plus tail-latency percentile tables and metrics-registry
  snapshots.
* :mod:`repro.bench.cli` -- the ``stripes-bench`` command.
"""

from repro.bench.runner import (
    IndexSetup,
    RunResult,
    make_scan,
    make_stripes,
    make_tpr,
    make_tprstar,
    run_workload,
)
from repro.bench.experiments import ExperimentScale
from repro.bench.report import (
    render_cost_table,
    render_latency_table,
    render_metrics_snapshot,
)

__all__ = [
    "IndexSetup",
    "RunResult",
    "run_workload",
    "make_stripes",
    "make_tpr",
    "make_tprstar",
    "make_scan",
    "ExperimentScale",
    "render_cost_table",
    "render_latency_table",
    "render_metrics_snapshot",
]
