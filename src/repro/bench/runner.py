"""Workload execution and per-operation cost measurement.

Each index under test gets its own in-memory page file and buffer pool (as
in the paper, where each index is a separate SHORE volume competing for a
2048-page pool).  The runner replays a :class:`repro.workload.Workload`,
snapshotting the pool's IO counters around every operation and timing its
CPU with ``perf_counter``.  All work is in-memory, so wall time is CPU
time; physical IOs are converted to simulated disk time by
:class:`repro.storage.stats.DiskModel` at reporting time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.scan import ScanIndex
from repro.core.quadtree import QuadTreeConfig
from repro.core.stripes import StripesConfig, StripesIndex
from repro.obs import DEFAULT_LATENCY_BUCKETS_S, MetricsRegistry
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.storage.stats import CostAccumulator, DiskModel, OperationCost
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTree, TPRTreeConfig
from repro.workload.operations import InsertOp, QueryOp, UpdateOp, Workload

DEFAULT_LIFETIME = 120.0   # 2 * UI: every object updates within one lifetime
DEFAULT_HORIZON = 60.0     # TPR integration horizon H = UI


@dataclass
class IndexSetup:
    """An index under test together with its private buffer pool."""

    name: str
    index: object            # insert/update/delete/query interface
    pool: Optional[BufferPool]

    def pages_in_use(self) -> int:
        if isinstance(self.index, StripesIndex):
            return self.index.pages_in_use()
        if isinstance(self.index, TPRTree):
            return self.index.store.pages_in_use()
        return 0


def make_stripes(workload: Workload, pool_pages: int,
                 lifetime: float = DEFAULT_LIFETIME, float32: bool = False,
                 quadtree: Optional[QuadTreeConfig] = None,
                 name: str = "STRIPES",
                 registry: Optional[MetricsRegistry] = None) -> IndexSetup:
    """A STRIPES index sized for ``workload`` over a fresh pool."""
    pool = BufferPool(InMemoryPageFile(), capacity=pool_pages)
    config = StripesConfig(
        vmax=workload.vmax, pmax=workload.pmax, lifetime=lifetime,
        float32=float32,
        quadtree=quadtree if quadtree is not None else QuadTreeConfig())
    index = StripesIndex(config, pool)
    if registry is not None:
        index.attach_metrics(registry)
    return IndexSetup(name, index, pool)


def _make_tpr(cls, workload: Workload, pool_pages: int, horizon: float,
              float32: bool, name: str,
              registry: Optional[MetricsRegistry] = None) -> IndexSetup:
    pool = BufferPool(InMemoryPageFile(), capacity=pool_pages)
    config = TPRTreeConfig(d=len(workload.pmax), horizon=horizon,
                           float32=float32,
                           delete_eps=1e-4 if float32 else 1e-7)
    index = cls(config, RecordStore(pool))
    if registry is not None:
        index.attach_metrics(registry)
    return IndexSetup(name, index, pool)


def make_tprstar(workload: Workload, pool_pages: int,
                 horizon: float = DEFAULT_HORIZON, float32: bool = False,
                 name: str = "TPR*",
                 registry: Optional[MetricsRegistry] = None) -> IndexSetup:
    """A TPR*-tree sized for ``workload`` over a fresh pool."""
    return _make_tpr(TPRStarTree, workload, pool_pages, horizon, float32,
                     name, registry)


def make_tpr(workload: Workload, pool_pages: int,
             horizon: float = DEFAULT_HORIZON, float32: bool = False,
             name: str = "TPR",
             registry: Optional[MetricsRegistry] = None) -> IndexSetup:
    """A base TPR-tree (greedy insert, no forced reinsert)."""
    return _make_tpr(TPRTree, workload, pool_pages, horizon, float32, name,
                     registry)


def make_scan(workload: Workload, lifetime: float = DEFAULT_LIFETIME,
              name: str = "SCAN") -> IndexSetup:
    """The exact linear-scan baseline (no pool; zero IO by construction)."""
    return IndexSetup(name, ScanIndex(lifetime), None)


@dataclass
class BatchCost:
    """Aggregate cost of one batch of operations (Figure 9 granularity)."""

    index: int
    ops: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    cpu_seconds: float = 0.0

    @property
    def physical_io(self) -> int:
        return self.physical_reads + self.physical_writes

    def total_seconds(self, disk: DiskModel) -> float:
        return self.cpu_seconds + disk.seconds(self.physical_io)


@dataclass
class RunResult:
    """Everything measured while replaying a workload against one index."""

    name: str
    load: CostAccumulator = field(default_factory=CostAccumulator)
    updates: CostAccumulator = field(default_factory=CostAccumulator)
    queries: CostAccumulator = field(default_factory=CostAccumulator)
    batches: List[BatchCost] = field(default_factory=list)
    query_hits: int = 0
    pages_used: int = 0
    #: Registry snapshots taken as each phase completes, keyed by phase
    #: name ("load", "ops"); empty when no registry was passed.
    phase_metrics: Dict[str, dict] = field(default_factory=dict)

    @property
    def metrics(self) -> Optional[dict]:
        """The final metrics snapshot (after the op stream), if any."""
        return self.phase_metrics.get("ops")

    @property
    def ops(self) -> int:
        return self.updates.count + self.queries.count

    def total_cpu_seconds(self) -> float:
        return self.updates.cpu_seconds + self.queries.cpu_seconds

    def total_physical_io(self) -> int:
        return self.updates.physical_io + self.queries.physical_io

    def total_seconds(self, disk: DiskModel) -> float:
        return self.total_cpu_seconds() + disk.seconds(
            self.total_physical_io())


def run_workload(setup: IndexSetup, workload: Workload,
                 n_ops: Optional[int] = None,
                 batch_size: Optional[int] = None,
                 on_batch: Optional[Callable[[BatchCost], None]] = None,
                 keep_per_op: bool = False,
                 registry: Optional[MetricsRegistry] = None) -> RunResult:
    """Load the initial objects, then replay (a prefix of) the operation
    stream, measuring every operation.

    ``batch_size`` groups operations into :class:`BatchCost` buckets (the
    paper plots batches of 5K ops in Figure 9).  ``on_batch`` is invoked as
    each batch completes.  ``keep_per_op`` retains each operation's cost so
    the accumulators can answer percentile queries afterwards.  With a
    ``registry``, per-op wall times feed ``bench_update_latency_seconds`` /
    ``bench_query_latency_seconds`` histograms and a snapshot of the whole
    registry is stored in :attr:`RunResult.phase_metrics` after each phase
    (pass the same registry to the ``make_*`` builder to fold the index's
    own instruments into those snapshots).
    """
    index = setup.index
    pool = setup.pool
    result = RunResult(setup.name)
    update_hist = query_hist = None
    if registry is not None:
        update_hist = registry.histogram(
            "bench_update_latency_seconds", DEFAULT_LATENCY_BUCKETS_S,
            help="wall time per replayed update/insert operation")
        query_hist = registry.histogram(
            "bench_query_latency_seconds", DEFAULT_LATENCY_BUCKETS_S,
            help="wall time per replayed query operation")

    def measure() -> tuple:
        if pool is None:
            return (0, 0)
        stats = pool.stats
        return (stats.physical_reads, stats.physical_writes)

    # Initial load (the paper loads all N objects before the op mix).
    # Indexes exposing a batch insert (STRIPES) get the whole list at
    # once so per-call routing overhead is amortised; the entries and
    # page images produced are identical to sequential inserts.
    insert_batch = getattr(index, "insert_batch", None)
    before = measure()
    start = time.perf_counter()
    if insert_batch is not None:
        insert_batch(workload.initial)
    else:
        for state in workload.initial:
            index.insert(state)
    elapsed = time.perf_counter() - start
    after = measure()
    result.load.add(OperationCost(after[0] - before[0],
                                  after[1] - before[1], elapsed),
                    keep=keep_per_op)
    if registry is not None:
        result.phase_metrics["load"] = registry.to_dict()

    operations = workload.operations
    if n_ops is not None:
        operations = operations[:n_ops]
    if batch_size is None:
        batch_size = max(1, len(operations))

    batch = BatchCost(index=0)
    for op in operations:
        before = measure()
        start = time.perf_counter()
        if isinstance(op, UpdateOp):
            index.update(op.old, op.new)
            kind = result.updates
            hist = update_hist
        elif isinstance(op, InsertOp):
            index.insert(op.state)
            kind = result.updates
            hist = update_hist
        elif isinstance(op, QueryOp):
            hits = index.query(op.query)
            result.query_hits += len(hits)
            kind = result.queries
            hist = query_hist
        else:  # pragma: no cover - exhaustive over Operation
            raise TypeError(f"unknown operation {type(op).__name__}")
        elapsed = time.perf_counter() - start
        after = measure()
        cost = OperationCost(after[0] - before[0], after[1] - before[1],
                             elapsed)
        kind.add(cost, keep=keep_per_op)
        if hist is not None:
            hist.observe(elapsed)
        batch.ops += 1
        batch.physical_reads += cost.physical_reads
        batch.physical_writes += cost.physical_writes
        batch.cpu_seconds += cost.cpu_seconds
        if batch.ops >= batch_size:
            result.batches.append(batch)
            if on_batch is not None:
                on_batch(batch)
            batch = BatchCost(index=len(result.batches))
    if batch.ops:
        result.batches.append(batch)
        if on_batch is not None:
            on_batch(batch)
    result.pages_used = setup.pages_in_use()
    if registry is not None:
        result.phase_metrics["ops"] = registry.to_dict()
    return result
