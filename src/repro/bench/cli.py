"""The ``stripes-bench`` command: regenerate any paper figure from the
command line.

Examples::

    stripes-bench fig9                 # continuous performance, 1% scale
    stripes-bench fig12 --scale 0.05   # per-query costs, 5% scale
    stripes-bench all --scale 0.002    # everything, tiny and fast
    stripes-bench explain --query-type window --index tprstar
    stripes-bench serve --json BENCH_PR3.json
    stripes-bench update --json BENCH_PR4.json

The ``explain`` subcommand builds a small index, replays a prefix of the
workload, then runs one query under full tracing and prints the descent
trace (nodes visited, quads INSIDE/OVERLAP/DISJUNCT, candidates refined
away) together with the index's metrics snapshot.

The ``serve`` subcommand benchmarks the concurrent query service
(``repro.service``): it verifies sharded-vs-serial parity on the
workload's queries, measures a serial-service baseline (1 shard, 1
worker, no batching) and the sharded micro-batching service under
closed-loop load, demonstrates explicit ``Overloaded`` rejection against
a tiny admission queue, and optionally snapshots everything to JSON.

The ``update`` subcommand reproduces the paper's update-cost experiment
with the batched write path: it replays the same update stream per-point
(the seed path, also the sequential-equivalence oracle), batched through
``update_batch``, and per-point on the TPR/TPR* baselines, then gates on
exact query-set parity between the batched and sequential STRIPES
replicas.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import experiments
from repro.bench.experiments import ExperimentScale
from repro.bench.report import (
    render_batches,
    render_breakdown,
    render_cache_table,
    render_cost_table,
    render_latency_table,
    render_load,
    render_metrics_snapshot,
    render_write_table,
)
from repro.bench.runner import make_stripes, make_tpr, make_tprstar

EXPERIMENTS = ("fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
               "structure", "ablation-leaf", "ablation-pruning",
               "ablation-choosepath", "ablation-horizon",
               "sweep-dimension", "sweep-selectivity", "sweep-temporal")

EXPLAIN_BUILDERS = {"stripes": make_stripes, "tpr": make_tpr,
                    "tprstar": make_tprstar}

QUERY_TYPE_NAMES = {"timeslice": "TimeSliceQuery", "window": "WindowQuery",
                    "moving": "MovingQuery"}


def _print(text: str) -> None:
    print(text)
    print()


def _print_costs(title: str, results, disk, metrics: bool = False) -> None:
    """One cost table plus its tail-latency companion (and, on request,
    each index's metrics snapshot)."""
    _print(render_cost_table(title, results, disk))
    _print(render_latency_table(f"{title} -- tail latency (CPU ms/op)",
                                results))
    if metrics:
        _print(render_cache_table(
            f"{title} -- decoded-node cache effectiveness", results))
        _print(render_write_table(
            f"{title} -- write-path effort", results))
        for name, result in results.items():
            if result.metrics:
                _print(render_metrics_snapshot(
                    f"{title} -- {name} metrics snapshot", result.metrics))


def run_experiment(name: str, scale: ExperimentScale) -> None:
    """Run one named experiment and print its paper-style tables."""
    disk = scale.disk
    if name in ("fig9", "fig10", "fig11", "fig12"):
        runs = experiments.workload_mix_runs(scale)
        for mix, results in runs.items():
            if name == "fig9":
                _print(render_batches(
                    f"Figure 9 analog -- 500K-Uniform, {mix} mix, "
                    f"cost per batch", results, disk))
            elif name == "fig10":
                _print(render_breakdown(
                    f"Figure 10 analog -- 500K-Uniform, {mix} mix, "
                    f"IO/CPU breakdown", results, disk))
            else:
                _print_costs(
                    f"Figures 11/12 analog -- 500K-Uniform, {mix} mix, "
                    f"per-op costs", results, disk, metrics=True)
    elif name == "fig13":
        for paper_n, results in experiments.scaling(scale).items():
            _print_costs(
                f"Figure 13 analog -- {paper_n // 1000}K objects, 50-50 mix",
                results, disk)
    elif name == "fig14":
        for nd, results in experiments.skew(scale).items():
            _print_costs(
                f"Figure 14 analog -- 500K-Skew ND={nd}, 50-50 mix",
                results, disk)
    elif name == "structure":
        stats = experiments.structure_stats(scale)
        print(f"Section 5.1 analog -- structure statistics "
              f"(scale {scale.scale}):")
        print(f"  STRIPES pages:          {stats.stripes_pages}")
        print(f"  STRIPES height:         {stats.stripes_height}")
        print(f"  STRIPES non-leaf nodes: {stats.stripes_nonleaf_nodes} "
              f"({stats.stripes_nonleaf_bytes} bytes each)")
        print(f"  STRIPES leaves:         {stats.stripes_small_leaves} "
              f"small + {stats.stripes_large_leaves} large, occupancy "
              f"{stats.stripes_leaf_occupancy:.1%}")
        print(f"  TPR* pages:             {stats.tprstar_pages}")
        print(f"  TPR* height:            {stats.tprstar_height}")
        print(f"  size ratio STRIPES/TPR*: {stats.size_ratio:.2f}x "
              f"(paper: ~2.4x)")
        print()
    elif name == "ablation-leaf":
        results = experiments.leaf_size_ablation(scale)
        _print(render_load("A1 -- two leaf sizes vs single size (load)",
                           results, disk))
        _print_costs("A1 -- per-op costs", results, disk)
    elif name == "ablation-pruning":
        results = experiments.pruning_ablation(scale)
        _print_costs(
            "A2 -- quad pruning on/off (same IOs, CPU differs)",
            results, disk)
    elif name == "ablation-choosepath":
        results = experiments.choosepath_ablation(scale)
        _print_costs("A3 -- TPR* ChoosePath vs greedy TPR", results, disk)
    elif name == "ablation-horizon":
        results = experiments.horizon_ablation(scale)
        named = {f"H={h:g}": r for h, r in results.items()}
        _print_costs("A4 -- TPR* metric-horizon sensitivity", named, disk)
    elif name == "sweep-dimension":
        for d, results in experiments.dimension_sweep(scale).items():
            _print_costs(f"X4 -- dimensionality d={d}", results, disk)
    elif name == "sweep-selectivity":
        for fraction, results in experiments.selectivity_sweep(scale).items():
            _print_costs(
                f"X5 -- query area fraction {fraction}", results, disk)
    elif name == "sweep-temporal":
        for window, results in experiments.temporal_range_sweep(
                scale).items():
            _print_costs(
                f"X6 -- query temporal range W={window:g}", results, disk)
    else:
        raise ValueError(f"unknown experiment {name!r}")


def run_explain(index: str, query_type: str, n_objects: int,
                pool_pages: int, seed: int) -> int:
    """Build a small index, replay updates, then trace one query."""
    from repro.obs import MetricsRegistry, Tracer
    from repro.workload.generator import WorkloadSpec, generate_workload
    from repro.workload.operations import QueryOp, UpdateOp

    spec = WorkloadSpec(n_objects=n_objects,
                        n_operations=max(200, n_objects // 2),
                        seed=seed)
    workload = generate_workload(spec)
    registry = MetricsRegistry()
    setup = EXPLAIN_BUILDERS[index](workload, pool_pages, registry=registry)
    idx = setup.index

    for state in workload.initial:
        idx.insert(state)
    wanted = QUERY_TYPE_NAMES[query_type]
    target: Optional[QueryOp] = None
    for op in workload.operations:
        if isinstance(op, UpdateOp):
            idx.update(op.old, op.new)
        elif isinstance(op, QueryOp) and target is None \
                and type(op.query).__name__ == wanted:
            target = op
            break
    if target is None:
        print(f"workload produced no {query_type} query; "
              f"try a larger --n-objects", file=sys.stderr)
        return 1

    tracer = Tracer()
    if index == "stripes":
        result = idx.explain(target.query, tracer=tracer)
    else:
        result = idx.explain(target.query)
    _print(result.format())
    _print(render_metrics_snapshot("metrics snapshot:", registry.to_dict()))
    return 0


#: Buffer-pool pages for the serve benchmark (split across shards).
SERVE_POOL_PAGES = 512


def run_serve(shards: int, workers: int, batch_max: int,
              batch_window_ms: float, threads: int,
              requests_per_thread: int, n_objects: int, n_operations: int,
              policy_name: str, seed: int,
              json_path: Optional[str] = None) -> int:
    """Benchmark the concurrent query service against a serial baseline.

    Prints (and optionally writes to ``json_path``) four measurements:

    * **parity** -- every workload query evaluated on the sharded facade
      vs a serial :class:`StripesIndex` fed the same operations;
    * **serial-service baseline** -- the same queue/worker/Future
      machinery with 1 shard, 1 worker and no batching (the honest
      like-for-like "single-shard serial" number; the raw library-call
      throughput is reported alongside);
    * **sharded service under closed-loop load** -- throughput and exact
      p50/p95/p99 latency at the tuned configuration;
    * **overload** -- a deliberately tiny admission queue under burst
      load, demonstrating explicit ``Overloaded`` rejection.
    """
    import json
    import time as _time

    from repro.obs import MetricsRegistry
    from repro.service import (
        HashShardPolicy,
        LoadDriver,
        ServiceConfig,
        ShardedStripes,
        StripesService,
        VelocityBandShardPolicy,
    )
    from repro.workload.generator import WorkloadSpec, generate_workload
    from repro.workload.operations import InsertOp, QueryOp, UpdateOp

    spec = WorkloadSpec(n_objects=n_objects, n_operations=n_operations,
                        update_fraction=0.2, seed=seed)
    workload = generate_workload(spec)

    def feed(ix):
        ix.insert_batch(workload.initial)
        queries = []
        for op in workload.operations:
            if isinstance(op, UpdateOp):
                ix.update(op.old, op.new)
            elif isinstance(op, InsertOp):
                ix.insert(op.obj)
            elif isinstance(op, QueryOp):
                queries.append(op.query)
        return queries

    def make_policy():
        if policy_name == "velocity":
            return VelocityBandShardPolicy(spec.max_speed)
        return HashShardPolicy()

    serial = make_stripes(workload, SERVE_POOL_PAGES).index
    queries = feed(serial)
    if not queries:
        print("workload produced no queries; raise --service-ops",
              file=sys.stderr)
        return 1
    config = serial.config

    # --- parity: sharded facade vs the serial index, exact id sets.
    sharded = ShardedStripes(config, n_shards=shards, policy=make_policy(),
                             pool_pages=SERVE_POOL_PAGES)
    feed(sharded)
    mismatches = sum(
        1 for q in queries if set(serial.query(q)) != set(sharded.query(q)))
    print(f"parity: {len(queries) - mismatches}/{len(queries)} queries "
          f"match the serial index ({mismatches} mismatches)")
    if mismatches:
        print("PARITY FAILURE: sharded results diverge from serial",
              file=sys.stderr)
        return 1

    # --- raw library-call throughput (no service machinery), for context.
    t0 = _time.perf_counter()
    n = 0
    while _time.perf_counter() - t0 < 0.5:
        for q in queries:
            serial.query(q)
            n += 1
    library_qps = n / (_time.perf_counter() - t0)
    print(f"library serial (direct calls):    {library_qps:>8,.0f} q/s")

    def drive(service, n_threads, rpt):
        with service:
            LoadDriver(service, queries, n_threads=min(8, n_threads),
                       requests_per_thread=30).run()  # warm-up
            return LoadDriver(service, queries, n_threads=n_threads,
                              requests_per_thread=rpt).run()

    # --- serial-service baseline: same machinery, no sharding/batching.
    base_sharded = ShardedStripes(config, n_shards=1,
                                  pool_pages=SERVE_POOL_PAGES,
                                  scan_threshold=0)
    feed(base_sharded)
    base_service = StripesService(base_sharded, ServiceConfig(
        workers=1, max_queue=4096, batch_max=1, batch_window_s=0.0))
    base = drive(base_service, 1, max(400, requests_per_thread))
    print(f"serial service (1 shard/1 worker): {base.throughput_qps:>7,.0f} "
          f"q/s   {base.format()}")

    # --- the tuned sharded, micro-batching service under load.
    registry = MetricsRegistry()
    service = StripesService(sharded, ServiceConfig(
        workers=workers, max_queue=4096, batch_max=batch_max,
        batch_window_s=batch_window_ms / 1e3), registry=registry)
    report = drive(service, threads, requests_per_thread)
    ratio = report.throughput_qps / base.throughput_qps \
        if base.throughput_qps else 0.0
    batch_hist = registry.get("service_batch_size")
    avg_batch = batch_hist.sum / batch_hist.count if batch_hist.count else 0.0
    print(f"sharded service ({shards} shards/{workers} workers): "
          f"{report.throughput_qps:>7,.0f} q/s   {report.format()}")
    print(f"  avg batch {avg_batch:.1f} queries; "
          f"{ratio:.2f}x the serial service")

    # --- overload: a tiny queue under burst load must reject explicitly.
    overload_sharded = ShardedStripes(config, n_shards=shards,
                                      policy=make_policy(),
                                      pool_pages=SERVE_POOL_PAGES)
    feed(overload_sharded)
    overload_service = StripesService(overload_sharded, ServiceConfig(
        workers=1, max_queue=8, batch_max=4, batch_window_s=0.005))
    overload = drive(overload_service, 32, 20)
    print(f"overload demo (queue=8, burst of 32 threads): "
          f"{overload.rejected} of {overload.offered} rejected "
          f"with Overloaded")
    if overload.rejected == 0:
        print("OVERLOAD FAILURE: tiny queue produced no rejections",
              file=sys.stderr)
        return 1

    if json_path:
        snapshot = {
            "workload": {"n_objects": n_objects,
                         "n_operations": n_operations,
                         "queries": len(queries), "seed": seed},
            "config": {"shards": shards, "workers": workers,
                       "batch_max": batch_max,
                       "batch_window_ms": batch_window_ms,
                       "threads": threads, "policy": policy_name,
                       "requests_per_thread": requests_per_thread},
            "parity": {"queries": len(queries), "mismatches": mismatches},
            "library_serial_qps": round(library_qps, 1),
            "serial_service": base.as_dict(),
            "sharded_service": report.as_dict(),
            "speedup_vs_serial_service": round(ratio, 3),
            "avg_batch_size": round(avg_batch, 2),
            "overload": {"offered": overload.offered,
                         "rejected": overload.rejected},
            "metrics": registry.to_dict(),
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_path}")
    return 0


#: Buffer-pool pages for the update benchmark.
UPDATE_POOL_PAGES = 1024


def run_update(n_objects: int, n_operations: int, batch_size: int,
               seed: int, json_path: Optional[str] = None) -> int:
    """Reproduce the paper's update-cost experiment with the batched
    write path against per-point baselines.

    Four indexes replay the same update stream:

    * **STRIPES serial** -- the seed per-point path (``insert`` /
      ``update`` one object at a time);
    * **STRIPES batched** -- ``insert_batch`` for the load and
      ``update_batch`` in chunks of ``batch_size``;
    * **TPR / TPR*** -- the paper's baselines, per-point (they have no
      batch write path).

    A parity gate then evaluates every workload query on the serial and
    batched STRIPES indexes: the id sets must match exactly (the serial
    replay *is* the sequential-equivalence oracle for the batched
    writes).  Any mismatch fails the run.  Results -- including the
    batched index's write-path metrics -- print as tables and optionally
    land in ``json_path``.
    """
    import json
    import time as _time

    from repro.bench.runner import RunResult
    from repro.obs import MetricsRegistry
    from repro.workload.generator import WorkloadSpec, generate_workload
    from repro.workload.operations import QueryOp, UpdateOp

    spec = WorkloadSpec(n_objects=n_objects, n_operations=n_operations,
                        update_fraction=0.8, seed=seed)
    workload = generate_workload(spec)
    updates = [op for op in workload.operations if isinstance(op, UpdateOp)]
    queries = [op.query for op in workload.operations
               if isinstance(op, QueryOp)]
    if not updates or not queries:
        print("workload produced no updates or no queries; raise "
              "--update-ops", file=sys.stderr)
        return 1
    print(f"workload: {len(workload.initial)} objects, {len(updates)} "
          f"updates, {len(queries)} queries (seed {seed})")

    def timed(fn):
        t0 = _time.perf_counter()
        out = fn()
        return out, _time.perf_counter() - t0

    results = {}

    def record(name, setup, load_s, update_s, removed):
        results[name] = {
            "load_s": round(load_s, 4),
            "load_objects_per_s": round(len(workload.initial) / load_s, 1),
            "update_s": round(update_s, 4),
            "updates_per_s": round(len(updates) / update_s, 1),
            "removed": removed,
            "pages": setup.pages_in_use(),
        }
        print(f"{name:<16} load {load_s:7.3f}s   updates {update_s:7.3f}s   "
              f"{len(updates) / update_s:>9,.0f} upd/s")

    # --- STRIPES, seed per-point path (the sequential-replay oracle).
    serial_setup = make_stripes(workload, UPDATE_POOL_PAGES,
                                name="STRIPES serial")
    serial = serial_setup.index

    def load_serial():
        for state in workload.initial:
            serial.insert(state)

    def replay_serial():
        return sum(1 for op in updates if serial.update(op.old, op.new))

    _, load_s = timed(load_serial)
    removed, update_s = timed(replay_serial)
    serial_ups = len(updates) / update_s
    record("STRIPES serial", serial_setup, load_s, update_s, removed)

    # --- STRIPES, batched write path, with write-path metrics attached.
    registry = MetricsRegistry()
    batched_setup = make_stripes(workload, UPDATE_POOL_PAGES,
                                 name="STRIPES batched", registry=registry)
    batched = batched_setup.index

    def replay_batched():
        n = 0
        for i in range(0, len(updates), batch_size):
            n += batched.update_batch(
                [(op.old, op.new) for op in updates[i:i + batch_size]])
        return n

    _, load_s = timed(lambda: batched.insert_batch(workload.initial))
    removed_b, update_s = timed(replay_batched)
    batched_ups = len(updates) / update_s
    record("STRIPES batched", batched_setup, load_s, update_s, removed_b)

    # --- TPR / TPR* per-point baselines.
    for maker, name in ((make_tpr, "TPR"), (make_tprstar, "TPR*")):
        setup = maker(workload, UPDATE_POOL_PAGES, name=name)
        idx = setup.index

        def load_baseline(idx=idx):
            for state in workload.initial:
                idx.insert(state)

        def replay_baseline(idx=idx):
            return sum(1 for op in updates if idx.update(op.old, op.new))

        _, load_s = timed(load_baseline)
        removed_t, update_s = timed(replay_baseline)
        record(name, setup, load_s, update_s, removed_t)

    speedup = batched_ups / serial_ups
    print(f"batched vs serial STRIPES: {speedup:.2f}x updates/s "
          f"(batch size {batch_size}); removed {removed_b} vs {removed}")

    # --- parity gate: batched writes must answer every query exactly
    # like the sequential replay.
    mismatches = sum(1 for q in queries
                     if set(serial.query(q)) != set(batched.query(q)))
    entries_match = len(serial) == len(batched)
    print(f"parity: {len(queries) - mismatches}/{len(queries)} queries "
          f"match sequential replay ({mismatches} mismatches); entry "
          f"counts {'match' if entries_match else 'DIVERGE'} "
          f"({len(batched)} vs {len(serial)})")

    # --- the batched index's write-path effort, via its metrics.
    fake = RunResult("STRIPES batched")
    fake.phase_metrics["ops"] = registry.to_dict()
    _print(render_write_table("write-path effort (batched index)",
                              {"STRIPES batched": fake}))
    _print(render_metrics_snapshot("insert latency (batched index):",
                                   registry.to_dict(),
                                   prefix="stripes_insert"))

    if json_path:
        snapshot = {
            "workload": {"n_objects": n_objects,
                         "n_operations": n_operations,
                         "updates": len(updates),
                         "queries": len(queries), "seed": seed},
            "batch_size": batch_size,
            "indexes": results,
            "speedup_batched_vs_serial": round(speedup, 3),
            "parity": {"queries": len(queries), "mismatches": mismatches,
                       "entry_counts_match": entries_match},
            "metrics": registry.to_dict(),
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_path}")

    if mismatches or not entries_match:
        print("PARITY FAILURE: batched writes diverge from sequential "
              "replay", file=sys.stderr)
        return 1
    if speedup < 2.0:
        print(f"WARNING: batched speedup {speedup:.2f}x is below the 2x "
              f"target", file=sys.stderr)
    return 0


def run_crashmatrix(seed: int, survival: str, write_stride: int,
                    failpoint_stride: int,
                    json_path: Optional[str] = None) -> int:
    """Run the crash matrix (``repro.bench.crashmatrix``): kill the
    index at every sampled page write, torn write, and failpoint of a
    mixed insert/update/checkpoint workload, reopen from the durable
    image, and gate on structural invariants plus exact query parity
    with a never-crashed linear-scan replica.  Non-zero exit on any
    scenario failure."""
    import json

    from repro.bench.crashmatrix import run_crash_matrix

    survivals = ("none", "all", "mix") if survival == "every" \
        else (survival,)
    reports = []
    failed = 0
    for policy in survivals:
        report = run_crash_matrix(
            seed=seed, survival=policy, write_stride=write_stride,
            failpoint_stride=failpoint_stride,
            log=lambda line: print(f"  {line}", file=sys.stderr))
        reports.append(report)
        for line in report.summary_lines():
            print(line)
        failed += report.failed
    if json_path:
        with open(json_path, "w") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
        print(f"wrote {json_path}")
    if failed:
        print(f"CRASH MATRIX FAILURE: {failed} scenario(s) recovered to "
              f"a corrupt or divergent index", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stripes-bench",
        description="Regenerate the STRIPES paper's evaluation figures.")
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + ("all", "explain", "serve",
                                               "update", "crashmatrix"),
                        help="which figure/table to regenerate, 'explain' "
                             "to trace one query descent, 'serve' to "
                             "benchmark the concurrent query service, "
                             "'update' to benchmark the batched write "
                             "path, or 'crashmatrix' to fault-inject "
                             "every checkpoint/recovery path")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="fraction of the paper's experiment size "
                             "(default 0.01; 1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload random seed")
    explain_group = parser.add_argument_group("explain options")
    explain_group.add_argument("--index", choices=sorted(EXPLAIN_BUILDERS),
                               default="stripes",
                               help="index to explain (default stripes)")
    explain_group.add_argument("--query-type",
                               choices=sorted(QUERY_TYPE_NAMES),
                               default="timeslice",
                               help="query kind to trace "
                                    "(default timeslice)")
    explain_group.add_argument("--n-objects", type=int, default=2000,
                               help="objects to load before tracing "
                                    "(default 2000)")
    explain_group.add_argument("--pool-pages", type=int, default=256,
                               help="buffer-pool pages for explain "
                                    "(default 256)")
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument("--shards", type=int, default=4,
                             help="shard count (default 4)")
    serve_group.add_argument("--workers", type=int, default=4,
                             help="service worker threads (default 4)")
    serve_group.add_argument("--batch-max", type=int, default=16,
                             help="max queries per micro-batch (default 16)")
    serve_group.add_argument("--batch-window-ms", type=float, default=0.5,
                             help="batch coalescing window in ms "
                                  "(default 0.5)")
    serve_group.add_argument("--threads", type=int, default=64,
                             help="closed-loop client threads (default 64)")
    serve_group.add_argument("--requests-per-thread", type=int, default=150,
                             help="requests each client issues "
                                  "(default 150)")
    serve_group.add_argument("--service-objects", type=int, default=2000,
                             help="workload objects for serve "
                                  "(default 2000)")
    serve_group.add_argument("--service-ops", type=int, default=400,
                             help="workload operations for serve "
                                  "(default 400)")
    serve_group.add_argument("--policy", choices=("hash", "velocity"),
                             default="hash",
                             help="shard policy (default hash)")
    serve_group.add_argument("--json", metavar="PATH", default=None,
                             help="write the serve/update results to PATH "
                                  "as JSON")
    update_group = parser.add_argument_group("update options")
    update_group.add_argument("--update-objects", type=int, default=4000,
                              help="workload objects for the update "
                                   "benchmark (default 4000)")
    update_group.add_argument("--update-ops", type=int, default=3000,
                              help="workload operations for the update "
                                   "benchmark (default 3000)")
    update_group.add_argument("--batch-size", type=int, default=512,
                              help="updates per update_batch call "
                                   "(default 512)")
    crash_group = parser.add_argument_group("crashmatrix options")
    crash_group.add_argument("--survival", default="every",
                             choices=("none", "all", "mix", "every"),
                             help="fate of unsynced writes at crash time "
                                  "(default 'every': run all three "
                                  "policies)")
    crash_group.add_argument("--write-stride", type=int, default=5,
                             help="crash at every Nth page write "
                                  "(default 5; 1 = every write)")
    crash_group.add_argument("--failpoint-stride", type=int, default=1,
                             help="thin the per-failpoint occurrence axis "
                                  "(default 1 = every occurrence)")
    args = parser.parse_args(argv)
    if args.experiment == "explain":
        return run_explain(args.index, args.query_type, args.n_objects,
                           args.pool_pages, args.seed)
    if args.experiment == "serve":
        return run_serve(args.shards, args.workers, args.batch_max,
                         args.batch_window_ms, args.threads,
                         args.requests_per_thread, args.service_objects,
                         args.service_ops, args.policy, args.seed,
                         json_path=args.json)
    if args.experiment == "update":
        return run_update(args.update_objects, args.update_ops,
                          args.batch_size, args.seed, json_path=args.json)
    if args.experiment == "crashmatrix":
        return run_crashmatrix(args.seed, args.survival, args.write_stride,
                               args.failpoint_stride, json_path=args.json)
    scale = ExperimentScale(scale=args.scale, seed=args.seed)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        run_experiment(name, scale)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
