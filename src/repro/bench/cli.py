"""The ``stripes-bench`` command: regenerate any paper figure from the
command line.

Examples::

    stripes-bench fig9                 # continuous performance, 1% scale
    stripes-bench fig12 --scale 0.05   # per-query costs, 5% scale
    stripes-bench all --scale 0.002    # everything, tiny and fast
    stripes-bench explain --query-type window --index tprstar

The ``explain`` subcommand builds a small index, replays a prefix of the
workload, then runs one query under full tracing and prints the descent
trace (nodes visited, quads INSIDE/OVERLAP/DISJUNCT, candidates refined
away) together with the index's metrics snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import experiments
from repro.bench.experiments import ExperimentScale
from repro.bench.report import (
    render_batches,
    render_breakdown,
    render_cache_table,
    render_cost_table,
    render_latency_table,
    render_load,
    render_metrics_snapshot,
)
from repro.bench.runner import make_stripes, make_tpr, make_tprstar

EXPERIMENTS = ("fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
               "structure", "ablation-leaf", "ablation-pruning",
               "ablation-choosepath", "ablation-horizon",
               "sweep-dimension", "sweep-selectivity", "sweep-temporal")

EXPLAIN_BUILDERS = {"stripes": make_stripes, "tpr": make_tpr,
                    "tprstar": make_tprstar}

QUERY_TYPE_NAMES = {"timeslice": "TimeSliceQuery", "window": "WindowQuery",
                    "moving": "MovingQuery"}


def _print(text: str) -> None:
    print(text)
    print()


def _print_costs(title: str, results, disk, metrics: bool = False) -> None:
    """One cost table plus its tail-latency companion (and, on request,
    each index's metrics snapshot)."""
    _print(render_cost_table(title, results, disk))
    _print(render_latency_table(f"{title} -- tail latency (CPU ms/op)",
                                results))
    if metrics:
        _print(render_cache_table(
            f"{title} -- decoded-node cache effectiveness", results))
        for name, result in results.items():
            if result.metrics:
                _print(render_metrics_snapshot(
                    f"{title} -- {name} metrics snapshot", result.metrics))


def run_experiment(name: str, scale: ExperimentScale) -> None:
    """Run one named experiment and print its paper-style tables."""
    disk = scale.disk
    if name in ("fig9", "fig10", "fig11", "fig12"):
        runs = experiments.workload_mix_runs(scale)
        for mix, results in runs.items():
            if name == "fig9":
                _print(render_batches(
                    f"Figure 9 analog -- 500K-Uniform, {mix} mix, "
                    f"cost per batch", results, disk))
            elif name == "fig10":
                _print(render_breakdown(
                    f"Figure 10 analog -- 500K-Uniform, {mix} mix, "
                    f"IO/CPU breakdown", results, disk))
            else:
                _print_costs(
                    f"Figures 11/12 analog -- 500K-Uniform, {mix} mix, "
                    f"per-op costs", results, disk, metrics=True)
    elif name == "fig13":
        for paper_n, results in experiments.scaling(scale).items():
            _print_costs(
                f"Figure 13 analog -- {paper_n // 1000}K objects, 50-50 mix",
                results, disk)
    elif name == "fig14":
        for nd, results in experiments.skew(scale).items():
            _print_costs(
                f"Figure 14 analog -- 500K-Skew ND={nd}, 50-50 mix",
                results, disk)
    elif name == "structure":
        stats = experiments.structure_stats(scale)
        print(f"Section 5.1 analog -- structure statistics "
              f"(scale {scale.scale}):")
        print(f"  STRIPES pages:          {stats.stripes_pages}")
        print(f"  STRIPES height:         {stats.stripes_height}")
        print(f"  STRIPES non-leaf nodes: {stats.stripes_nonleaf_nodes} "
              f"({stats.stripes_nonleaf_bytes} bytes each)")
        print(f"  STRIPES leaves:         {stats.stripes_small_leaves} "
              f"small + {stats.stripes_large_leaves} large, occupancy "
              f"{stats.stripes_leaf_occupancy:.1%}")
        print(f"  TPR* pages:             {stats.tprstar_pages}")
        print(f"  TPR* height:            {stats.tprstar_height}")
        print(f"  size ratio STRIPES/TPR*: {stats.size_ratio:.2f}x "
              f"(paper: ~2.4x)")
        print()
    elif name == "ablation-leaf":
        results = experiments.leaf_size_ablation(scale)
        _print(render_load("A1 -- two leaf sizes vs single size (load)",
                           results, disk))
        _print_costs("A1 -- per-op costs", results, disk)
    elif name == "ablation-pruning":
        results = experiments.pruning_ablation(scale)
        _print_costs(
            "A2 -- quad pruning on/off (same IOs, CPU differs)",
            results, disk)
    elif name == "ablation-choosepath":
        results = experiments.choosepath_ablation(scale)
        _print_costs("A3 -- TPR* ChoosePath vs greedy TPR", results, disk)
    elif name == "ablation-horizon":
        results = experiments.horizon_ablation(scale)
        named = {f"H={h:g}": r for h, r in results.items()}
        _print_costs("A4 -- TPR* metric-horizon sensitivity", named, disk)
    elif name == "sweep-dimension":
        for d, results in experiments.dimension_sweep(scale).items():
            _print_costs(f"X4 -- dimensionality d={d}", results, disk)
    elif name == "sweep-selectivity":
        for fraction, results in experiments.selectivity_sweep(scale).items():
            _print_costs(
                f"X5 -- query area fraction {fraction}", results, disk)
    elif name == "sweep-temporal":
        for window, results in experiments.temporal_range_sweep(
                scale).items():
            _print_costs(
                f"X6 -- query temporal range W={window:g}", results, disk)
    else:
        raise ValueError(f"unknown experiment {name!r}")


def run_explain(index: str, query_type: str, n_objects: int,
                pool_pages: int, seed: int) -> int:
    """Build a small index, replay updates, then trace one query."""
    from repro.obs import MetricsRegistry, Tracer
    from repro.workload.generator import WorkloadSpec, generate_workload
    from repro.workload.operations import QueryOp, UpdateOp

    spec = WorkloadSpec(n_objects=n_objects,
                        n_operations=max(200, n_objects // 2),
                        seed=seed)
    workload = generate_workload(spec)
    registry = MetricsRegistry()
    setup = EXPLAIN_BUILDERS[index](workload, pool_pages, registry=registry)
    idx = setup.index

    for state in workload.initial:
        idx.insert(state)
    wanted = QUERY_TYPE_NAMES[query_type]
    target: Optional[QueryOp] = None
    for op in workload.operations:
        if isinstance(op, UpdateOp):
            idx.update(op.old, op.new)
        elif isinstance(op, QueryOp) and target is None \
                and type(op.query).__name__ == wanted:
            target = op
            break
    if target is None:
        print(f"workload produced no {query_type} query; "
              f"try a larger --n-objects", file=sys.stderr)
        return 1

    tracer = Tracer()
    if index == "stripes":
        result = idx.explain(target.query, tracer=tracer)
    else:
        result = idx.explain(target.query)
    _print(result.format())
    _print(render_metrics_snapshot("metrics snapshot:", registry.to_dict()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stripes-bench",
        description="Regenerate the STRIPES paper's evaluation figures.")
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + ("all", "explain"),
                        help="which figure/table to regenerate, or "
                             "'explain' to trace one query descent")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="fraction of the paper's experiment size "
                             "(default 0.01; 1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload random seed")
    explain_group = parser.add_argument_group("explain options")
    explain_group.add_argument("--index", choices=sorted(EXPLAIN_BUILDERS),
                               default="stripes",
                               help="index to explain (default stripes)")
    explain_group.add_argument("--query-type",
                               choices=sorted(QUERY_TYPE_NAMES),
                               default="timeslice",
                               help="query kind to trace "
                                    "(default timeslice)")
    explain_group.add_argument("--n-objects", type=int, default=2000,
                               help="objects to load before tracing "
                                    "(default 2000)")
    explain_group.add_argument("--pool-pages", type=int, default=256,
                               help="buffer-pool pages for explain "
                                    "(default 256)")
    args = parser.parse_args(argv)
    if args.experiment == "explain":
        return run_explain(args.index, args.query_type, args.n_objects,
                           args.pool_pages, args.seed)
    scale = ExperimentScale(scale=args.scale, seed=args.seed)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        run_experiment(name, scale)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
