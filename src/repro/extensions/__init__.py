"""Extensions beyond the paper's evaluation: the index-based predictive
kNN and join operations its Conclusions name as future work
("index-based algorithms for supporting more complex predictive queries,
such those involving nearest-neighbor and join operations").

* :mod:`repro.extensions.knn` -- best-first k-nearest-neighbour search at
  a future instant, for STRIPES (dual-space cell bounds), the TPR trees
  (TPBR bounds), and the scan oracle.
* :mod:`repro.extensions.join` -- predictive distance joins (all pairs of
  objects within ``r`` of each other at a future instant) via synchronized
  tree traversal.

Every operation dispatches on the index type, so the call sites are
uniform::

    from repro.extensions import knn, distance_join

    knn(index, point=(10.0, 20.0), t=60.0, k=5)
    distance_join(index_a, index_b, radius=2.0, t=60.0)
"""

from repro.extensions.join import distance_join
from repro.extensions.knn import knn

__all__ = ["knn", "distance_join"]
