"""Predictive k-nearest-neighbour search (the paper's future work).

``knn(index, point, t, k)`` returns the ``k`` objects whose *predicted*
position at the future instant ``t`` is nearest to ``point``, as a list of
``(oid, distance)`` sorted by distance.

The search is the classic best-first traversal with distance lower bounds:

* **STRIPES**: a quadtree cell ``[v1,v2] x [p1,p2]`` per plane maps, at
  time ``t``, to the native-space interval ``p + (V - vmax)(t - t_ref) -
  vmax*L`` minimised/maximised over the cell corners -- a box whose
  distance to the query point lower-bounds every entry in the cell.  Both
  live lifetime windows feed one shared priority queue.
* **TPR/TPR***: the TPBR extrapolated to ``t`` is the bounding box.
* **ScanIndex**: exact evaluation over all live states (the oracle).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Optional, Sequence, Tuple

from repro.baselines.scan import ScanIndex
from repro.core.dual import DualSpace
from repro.core.stripes import StripesIndex
from repro.tpr.tprtree import TPRTree

Neighbor = Tuple[int, float]


def _trajectory_min_dist2(p0: Sequence[float], pv: Sequence[float],
                          point: Sequence[float], t1: float,
                          t2: float) -> float:
    """Exact minimum of ``|p(t) - point|^2`` over ``t in [t1, t2]`` for the
    line ``p(t) = p0 + pv t`` (a quadratic in ``t``)."""
    a = sum(v * v for v in pv)
    b = 2.0 * sum(v * (p - q) for v, p, q in zip(pv, p0, point))
    c = sum((p - q) * (p - q) for p, q in zip(p0, point))
    candidates = [t1, t2]
    if a > 0.0:
        vertex = -b / (2.0 * a)
        if t1 < vertex < t2:
            candidates.append(vertex)
    return min(a * t * t + b * t + c for t in candidates)


def _moving_box_min_dist2(lo_lines, hi_lines, point: Sequence[float],
                          t1: float, t2: float) -> float:
    """Exact minimum over ``t in [t1, t2]`` of the distance from ``point``
    to a box whose per-dimension bounds move linearly.

    ``lo_lines``/``hi_lines`` hold ``(value at t=0, slope)`` per dimension.
    Per dimension the gap ``d_i(t) = max(0, lo_i(t) - q_i, q_i - hi_i(t))``
    is convex piecewise linear with at most two breakpoints (the roots of
    the two linear arms), so the total squared distance is piecewise
    quadratic; each segment is minimised in closed form.
    """
    breakpoints = {t1, t2}
    for i, q in enumerate(point):
        lo0, lo_s = lo_lines[i]
        hi0, hi_s = hi_lines[i]
        if lo_s != 0.0:
            root = (q - lo0) / lo_s
            if t1 < root < t2:
                breakpoints.add(root)
        if hi_s != 0.0:
            root = (q - hi0) / hi_s
            if t1 < root < t2:
                breakpoints.add(root)
    knots = sorted(breakpoints)
    best = math.inf
    for left, right in zip(knots, knots[1:]):
        mid = (left + right) / 2.0
        # Identify each dimension's active linear arm on this segment and
        # accumulate quadratic coefficients of the squared distance.
        a = b = c = 0.0
        for i, q in enumerate(point):
            lo0, lo_s = lo_lines[i]
            hi0, hi_s = hi_lines[i]
            below = lo0 + lo_s * mid - q          # > 0: point below box
            above = q - hi0 - hi_s * mid          # > 0: point above box
            if below > 0.0 and below >= above:
                d0, d_s = lo0 - q, lo_s
            elif above > 0.0:
                d0, d_s = q - hi0, -hi_s
            else:
                continue
            a += d_s * d_s
            b += 2.0 * d0 * d_s
            c += d0 * d0
        candidates = [left, right]
        if a > 0.0:
            vertex = -b / (2.0 * a)
            if left < vertex < right:
                candidates.append(vertex)
        for t in candidates:
            value = a * t * t + b * t + c
            if value < best:
                best = value
    if len(knots) == 1:  # degenerate interval t1 == t2
        t = knots[0]
        best = 0.0
        for i, q in enumerate(point):
            lo = lo_lines[i][0] + lo_lines[i][1] * t
            hi = hi_lines[i][0] + hi_lines[i][1] * t
            if q < lo:
                best += (lo - q) ** 2
            elif q > hi:
                best += (q - hi) ** 2
    return max(0.0, best)


def _box_min_dist2(lo: Sequence[float], hi: Sequence[float],
                   point: Sequence[float]) -> float:
    total = 0.0
    for i, q in enumerate(point):
        if q < lo[i]:
            delta = lo[i] - q
        elif q > hi[i]:
            delta = q - hi[i]
        else:
            continue
        total += delta * delta
    return total


def _point_dist2(pos: Sequence[float], point: Sequence[float]) -> float:
    return sum((a - b) * (a - b) for a, b in zip(pos, point))


def _stripes_cell_box(space: DualSpace, v_corner, p_corner, sl_v, sl_p,
                      t: float):
    """Native-space bounding box, at time ``t``, of every trajectory whose
    dual point lies in the cell."""
    dt = t - space.t_ref
    lo = []
    hi = []
    for i in range(space.d):
        shift = -space.vmax[i] * dt - space.vmax[i] * space.lifetime
        term1 = v_corner[i] * dt
        term2 = (v_corner[i] + sl_v[i]) * dt
        lo.append(p_corner[i] + shift + min(term1, term2))
        hi.append(p_corner[i] + sl_p[i] + shift + max(term1, term2))
    return lo, hi


class _ResultHeap:
    """Keeps the k smallest distances (max-heap on the inside)."""

    def __init__(self, k: int):
        self.k = k
        self._heap: List[Tuple[float, int]] = []  # (-dist2, oid)

    def offer(self, dist2: float, oid: int) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-dist2, oid))
        elif dist2 < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-dist2, oid))

    def bound(self) -> float:
        """Current kth-best distance squared (inf until k results)."""
        if len(self._heap) < self.k:
            return math.inf
        return -self._heap[0][0]

    def sorted_results(self) -> List[Neighbor]:
        return [(oid, math.sqrt(-neg)) for neg, oid in
                sorted(self._heap, key=lambda item: (-item[0], item[1]))]


def _stripes_cell_lines(space: DualSpace, v_corner, p_corner, sl_v, sl_p):
    """Per-dimension ``(value at t=0, slope)`` lines bounding every
    trajectory in a cell, valid for ``t >= space.t_ref``."""
    lo_lines = []
    hi_lines = []
    for i in range(space.d):
        v1 = v_corner[i] - space.vmax[i]                 # slowest velocity
        v2 = v_corner[i] + sl_v[i] - space.vmax[i]       # fastest velocity
        shift = -space.vmax[i] * space.lifetime
        lo_lines.append((p_corner[i] + shift - v1 * space.t_ref, v1))
        hi_lines.append((p_corner[i] + sl_p[i] + shift - v2 * space.t_ref,
                         v2))
    return lo_lines, hi_lines


def _stripes_knn(index: StripesIndex, point, t1: float, t2: float,
                 k: int) -> List[Neighbor]:
    results = _ResultHeap(k)
    tie = itertools.count()
    heap = []
    for tree in index._trees.values():
        if tree.count == 0:
            continue
        origin = (0.0,) * tree.d
        heapq.heappush(heap, (
            0.0, next(tie), tree,
            tree._root_rid, tree._root_is_leaf, origin, origin, 0))
    while heap:
        bound, _, tree, rid, is_leaf, v_corner, p_corner, level = \
            heapq.heappop(heap)
        if bound >= results.bound():
            break
        # Cell lines are valid from the sub-index's reference time on.
        lo_t = max(t1, tree.space.t_ref)
        hi_t = max(t2, lo_t)
        if is_leaf:
            leaf = tree.cache.get(rid)
            vmax = tree.space.vmax
            t_ref = tree.space.t_ref
            lifetime = tree.space.lifetime
            for entry in tree._leaf_all_entries(leaf):
                pv = [v - vm for v, vm in zip(entry.v, vmax)]
                p0 = [p - pvi * t_ref - vm * lifetime
                      for p, pvi, vm in zip(entry.p, pv, vmax)]
                results.offer(
                    _trajectory_min_dist2(p0, pv, point, t1, t2),
                    entry.oid)
            continue
        node = tree.cache.get(rid)
        sl_v, sl_p = tree._child_sides(level + 1)
        for idx in node.present_children():
            cv, cp = tree._child_corner(node, idx)
            lo_lines, hi_lines = _stripes_cell_lines(
                tree.space, cv, cp, sl_v, sl_p)
            child_bound = _moving_box_min_dist2(lo_lines, hi_lines, point,
                                                lo_t, hi_t)
            if child_bound < results.bound():
                heapq.heappush(heap, (
                    child_bound, next(tie), tree, node.children[idx],
                    node.child_is_leaf[idx], cv, cp, level + 1))
    return results.sorted_results()


def _tpr_knn(tree: TPRTree, point, t1: float, t2: float,
             k: int) -> List[Neighbor]:
    results = _ResultHeap(k)
    tie = itertools.count()
    heap = [(0.0, next(tie), tree._root)]
    while heap:
        bound, _, rid = heapq.heappop(heap)
        if bound >= results.bound():
            break
        node = tree.cache.get(rid)
        if node.is_leaf:
            for entry in node.entries:
                results.offer(
                    _trajectory_min_dist2(entry.p0, entry.vel, point,
                                          t1, t2),
                    entry.oid)
            continue
        for child in node.entries:
            box = child.tpbr
            lo_t = max(t1, box.t0)
            hi_t = max(t2, lo_t)
            lo_lines = [(box.lower[i] - box.vlower[i] * box.t0,
                         box.vlower[i]) for i in range(box.d)]
            hi_lines = [(box.upper[i] - box.vupper[i] * box.t0,
                         box.vupper[i]) for i in range(box.d)]
            child_bound = _moving_box_min_dist2(lo_lines, hi_lines, point,
                                                lo_t, hi_t)
            if child_bound < results.bound():
                heapq.heappush(heap, (child_bound, next(tie), child.rid))
    return results.sorted_results()


def _scan_knn(scan: ScanIndex, point, t1: float, t2: float,
              k: int) -> List[Neighbor]:
    results = _ResultHeap(k)
    for state in scan.live_states():
        p0 = [p - v * state.t for p, v in zip(state.pos, state.vel)]
        results.offer(
            _trajectory_min_dist2(p0, state.vel, point, t1, t2),
            state.oid)
    return results.sorted_results()


def knn(index, point: Sequence[float], t: float, k: int,
        t_high: Optional[float] = None) -> List[Neighbor]:
    """The k objects predicted nearest to ``point``.

    With ``t_high=None`` (the default), distances are evaluated at the
    single future instant ``t``.  With ``t_high``, the *interval* kNN is
    answered: each object's distance is the minimum of its predicted
    distance over ``[t, t_high]`` ("who comes closest to this point during
    the next five minutes?").

    Returns ``[(oid, distance), ...]`` sorted by ascending distance (ties
    broken by oid); fewer than ``k`` results when the index holds fewer
    live entries.  Query times should not precede the index's current
    time (predicted-trajectory indexes answer future queries).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    t2 = t if t_high is None else t_high
    if t2 < t:
        raise ValueError(f"t_high {t2} precedes t {t}")
    if isinstance(index, StripesIndex):
        if len(point) != index.config.d:
            raise ValueError(
                f"query point is {len(point)}-d but the index is "
                f"{index.config.d}-d")
        return _stripes_knn(index, tuple(point), t, t2, k)
    if isinstance(index, TPRTree):
        if len(point) != index.config.d:
            raise ValueError(
                f"query point is {len(point)}-d but the tree is "
                f"{index.config.d}-d")
        return _tpr_knn(index, tuple(point), t, t2, k)
    if isinstance(index, ScanIndex):
        return _scan_knn(index, tuple(point), t, t2, k)
    raise TypeError(f"knn does not support {type(index).__name__}")
