"""Predictive distance joins (the paper's future work).

``distance_join(a, b, radius, t)`` returns every pair of objects -- one
from each index -- whose predicted positions at the future instant ``t``
are within ``radius`` of each other.  When ``a is b`` (self-join) each
unordered pair is reported once, as ``(smaller oid, larger oid)``.

Both tree families use the classic synchronized traversal: a pair of
nodes is pruned when the minimum distance between their native-space
bounding boxes at time ``t`` exceeds the radius.  Self-joins avoid
visiting symmetric node pairs twice by ordering record ids.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.baselines.scan import ScanIndex
from repro.core.stripes import StripesIndex
from repro.extensions.knn import _stripes_cell_box
from repro.tpr.tprtree import TPRTree

Pair = Tuple[int, int]


def _boxes_min_dist2(lo1, hi1, lo2, hi2) -> float:
    total = 0.0
    for i in range(len(lo1)):
        if hi1[i] < lo2[i]:
            delta = lo2[i] - hi1[i]
        elif hi2[i] < lo1[i]:
            delta = lo1[i] - hi2[i]
        else:
            continue
        total += delta * delta
    return total


def _dist2(p1: Sequence[float], p2: Sequence[float]) -> float:
    return sum((a - b) * (a - b) for a, b in zip(p1, p2))


def _point_box_dist2(point, lo, hi) -> float:
    total = 0.0
    for i, q in enumerate(point):
        if q < lo[i]:
            delta = lo[i] - q
        elif q > hi[i]:
            delta = q - hi[i]
        else:
            continue
        total += delta * delta
    return total


def _positions_bbox(positions):
    """Tight bounding box of a list of ``(oid, position)`` pairs."""
    d = len(positions[0][1])
    lo = [math.inf] * d
    hi = [-math.inf] * d
    for _, pos in positions:
        for i in range(d):
            if pos[i] < lo[i]:
                lo[i] = pos[i]
            if pos[i] > hi[i]:
                hi[i] = pos[i]
    return lo, hi


def _join_leaf_lists(left, right, r2: float, dedupe: bool,
                     results: List[Pair]) -> None:
    """All qualifying pairs between two entry lists.  Entries on the left
    are pre-filtered against the right list's position bounding box, which
    skips most of the cartesian product when the leaves barely touch."""
    if not left or not right:
        return
    lo, hi = _positions_bbox(right)
    for oid_l, pos_l in left:
        if _point_box_dist2(pos_l, lo, hi) > r2:
            continue
        for oid_r, pos_r in right:
            if _dist2(pos_l, pos_r) <= r2:
                if dedupe:
                    if oid_l == oid_r:
                        continue
                    results.append((min(oid_l, oid_r), max(oid_l, oid_r)))
                else:
                    results.append((oid_l, oid_r))


def _join_leaf_self(entries, r2: float, results: List[Pair]) -> None:
    """Qualifying pairs within one entry list."""
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            if _dist2(entries[i][1], entries[j][1]) <= r2:
                oid_i, oid_j = entries[i][0], entries[j][0]
                results.append((min(oid_i, oid_j), max(oid_i, oid_j)))


# --------------------------------------------------------------------- #
# STRIPES
# --------------------------------------------------------------------- #

def _stripes_leaf_positions(tree, rid, t):
    leaf = tree.cache.get(rid)
    return [(entry.oid, tree.space.position_at(entry, t))
            for entry in tree._leaf_all_entries(leaf)]


def _stripes_join_trees(tree_a, tree_b, r2: float, t: float,
                        same_tree: bool, results: List[Pair]) -> None:
    origin_a = (0.0,) * tree_a.d
    origin_b = (0.0,) * tree_b.d
    stack = [((tree_a._root_rid, tree_a._root_is_leaf, origin_a, origin_a, 0),
              (tree_b._root_rid, tree_b._root_is_leaf, origin_b, origin_b,
               0))]
    # Self-joins generate each unordered node pair through two expansion
    # orders; visit each once.
    seen = set() if same_tree else None

    def cell_box(tree, v_corner, p_corner, level):
        sl_v, sl_p = tree._child_sides(level)
        return _stripes_cell_box(tree.space, v_corner, p_corner, sl_v, sl_p,
                                 t)

    while stack:
        (rid_a, leaf_a, va, pa, la), (rid_b, leaf_b, vb, pb, lb) = \
            stack.pop()
        if seen is not None:
            key = (min(rid_a, rid_b), max(rid_a, rid_b))
            if key in seen:
                continue
            seen.add(key)
        lo1, hi1 = cell_box(tree_a, va, pa, la)
        lo2, hi2 = cell_box(tree_b, vb, pb, lb)
        if _boxes_min_dist2(lo1, hi1, lo2, hi2) > r2:
            continue
        if leaf_a and leaf_b:
            if same_tree and rid_a == rid_b:
                _join_leaf_self(_stripes_leaf_positions(tree_a, rid_a, t),
                                r2, results)
            else:
                _join_leaf_lists(_stripes_leaf_positions(tree_a, rid_a, t),
                                 _stripes_leaf_positions(tree_b, rid_b, t),
                                 r2, dedupe=same_tree, results=results)
            continue
        # Expand the shallower non-leaf side.
        if not leaf_a and (leaf_b or la <= lb):
            node = tree_a.cache.get(rid_a)
            pair_b = (rid_b, leaf_b, vb, pb, lb)
            for idx in node.present_children():
                cv, cp = tree_a._child_corner(node, idx)
                child = (node.children[idx], node.child_is_leaf[idx],
                         cv, cp, la + 1)
                stack.append((child, pair_b))
        else:
            node = tree_b.cache.get(rid_b)
            for idx in node.present_children():
                cv, cp = tree_b._child_corner(node, idx)
                child = (node.children[idx], node.child_is_leaf[idx],
                         cv, cp, lb + 1)
                stack.append(((rid_a, leaf_a, va, pa, la), child))


def _stripes_join(a: StripesIndex, b: StripesIndex, radius: float,
                  t: float) -> List[Pair]:
    r2 = radius * radius
    results: List[Pair] = []
    self_join = a is b
    windows_a = sorted(a._trees)
    windows_b = sorted(b._trees)
    for wa in windows_a:
        for wb in windows_b:
            if self_join and wa > wb:
                continue
            _stripes_join_trees(a._trees[wa], b._trees[wb], r2, t,
                                same_tree=self_join and wa == wb,
                                results=results)
    return sorted(set(results)) if self_join else sorted(results)


# --------------------------------------------------------------------- #
# TPR / TPR*
# --------------------------------------------------------------------- #

def _tpr_leaf_positions(tree, rid, t):
    node = tree.cache.get(rid)
    return [(e.oid, tuple(p + v * t for p, v in zip(e.p0, e.vel)))
            for e in node.entries]


def _tpr_join(a: TPRTree, b: TPRTree, radius: float, t: float) -> List[Pair]:
    r2 = radius * radius
    self_join = a is b
    results: List[Pair] = []
    stack = [(a._root, b._root)]
    seen_pairs = set()
    while stack:
        rid_a, rid_b = stack.pop()
        if self_join and (rid_a, rid_b) in seen_pairs:
            continue
        seen_pairs.add((rid_a, rid_b))
        node_a = a.cache.get(rid_a)
        node_b = b.cache.get(rid_b)
        if node_a.is_leaf and node_b.is_leaf:
            if self_join and rid_a == rid_b:
                _join_leaf_self(_tpr_leaf_positions(a, rid_a, t), r2,
                                results)
            else:
                _join_leaf_lists(_tpr_leaf_positions(a, rid_a, t),
                                 _tpr_leaf_positions(b, rid_b, t),
                                 r2, dedupe=self_join, results=results)
            continue
        if not node_a.is_leaf and (node_b.is_leaf
                                   or node_a.level >= node_b.level):
            for child in node_a.entries:
                lo1, hi1 = child.tpbr.bounds_at(t)
                if node_b.is_leaf:
                    prune = False
                else:
                    prune = True
                    for other in node_b.entries:
                        lo2, hi2 = other.tpbr.bounds_at(t)
                        if _boxes_min_dist2(lo1, hi1, lo2, hi2) <= r2:
                            prune = False
                            break
                if not prune:
                    pair = (child.rid, rid_b)
                    if self_join:
                        pair = (min(pair), max(pair))
                    stack.append(pair)
        else:
            for child in node_b.entries:
                pair = (rid_a, child.rid)
                if self_join:
                    pair = (min(pair), max(pair))
                stack.append(pair)
    return sorted(set(results)) if self_join else sorted(set(results))


# --------------------------------------------------------------------- #
# Scan oracle
# --------------------------------------------------------------------- #

def _scan_join(a: ScanIndex, b: ScanIndex, radius: float,
               t: float) -> List[Pair]:
    r2 = radius * radius
    results: List[Pair] = []
    if a is b:
        states = a.live_states()
        positions = [(s.oid, s.position_at(t)) for s in states]
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                if positions[i][0] == positions[j][0]:
                    continue
                if _dist2(positions[i][1], positions[j][1]) <= r2:
                    oid_i, oid_j = positions[i][0], positions[j][0]
                    results.append((min(oid_i, oid_j), max(oid_i, oid_j)))
        return sorted(set(results))
    left = [(s.oid, s.position_at(t)) for s in a.live_states()]
    right = [(s.oid, s.position_at(t)) for s in b.live_states()]
    for oid_l, pos_l in left:
        for oid_r, pos_r in right:
            if _dist2(pos_l, pos_r) <= r2:
                results.append((oid_l, oid_r))
    return sorted(results)


def distance_join(a, b, radius: float, t: float) -> List[Pair]:
    """All pairs of objects within ``radius`` of each other at time ``t``.

    ``a`` and ``b`` must be indexes of the same family (two STRIPES
    indexes, two TPR/TPR* trees, or two scan baselines); pass the same
    object twice for a self-join.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if isinstance(a, StripesIndex) and isinstance(b, StripesIndex):
        return _stripes_join(a, b, radius, t)
    if isinstance(a, TPRTree) and isinstance(b, TPRTree):
        return _tpr_join(a, b, radius, t)
    if isinstance(a, ScanIndex) and isinstance(b, ScanIndex):
        return _scan_join(a, b, radius, t)
    raise TypeError(
        f"distance_join needs two indexes of the same family, got "
        f"{type(a).__name__} and {type(b).__name__}")
