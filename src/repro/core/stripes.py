"""The STRIPES index: a two-index, dual-transformed quadtree front end.

:class:`StripesIndex` is the public face of the reproduction's core
contribution.  It implements the full protocol of Section 4:

* updates are routed by timestamp to one of two rotating sub-indexes with
  reference times ``k*L`` and ``(k+1)*L`` (Section 4.1) -- when updates
  reach a new lifetime window, the stale sub-index is destroyed and its
  pages recycled;
* an update is a delete of the old entry followed by an insert of the new
  one (Section 4.5); if the old entry has already expired with its
  sub-index, the update degenerates to a plain insert (Section 4.4);
* queries are evaluated against every live sub-index and the result sets
  are concatenated (each object lives in exactly one sub-index).

Example::

    from repro import StripesConfig, StripesIndex, MovingObjectState
    from repro.query import TimeSliceQuery

    index = StripesIndex(StripesConfig(vmax=(3.0, 3.0),
                                       pmax=(1000.0, 1000.0),
                                       lifetime=120.0))
    index.insert(MovingObjectState(1, pos=(10.0, 20.0),
                                   vel=(1.0, -0.5), t=0.0))
    hits = index.query(TimeSliceQuery((0.0, 0.0), (50.0, 50.0), t=30.0))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dual import DualSpace
from repro.core.quadtree import (
    DualQuadTree,
    QuadTreeConfig,
    QuadTreeCounters,
    QuadTreeStats,
)
from repro.core.query_region import build_query_regions
from repro.obs.explain import QueryExplain, SubIndexExplain
from repro.obs.tracer import DescentTrace, Tracer
from repro.query.predicates import MovingQueryEvaluator
from repro.query.types import MovingObjectState, PredictiveQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile


@dataclass(frozen=True)
class StripesConfig:
    """Space bounds and index parameters (Table 1).

    ``vmax``/``pmax`` bound the native space per dimension, ``lifetime`` is
    the index lifetime ``L``.  ``float32`` selects the paper's 4-byte
    coordinate layout.  ``quadtree`` tunes the underlying PR quadtree.
    """

    vmax: Tuple[float, ...]
    pmax: Tuple[float, ...]
    lifetime: float
    float32: bool = False
    quadtree: QuadTreeConfig = field(default_factory=QuadTreeConfig)

    @property
    def d(self) -> int:
        return len(self.vmax)


def _net_update_runs(pairs, window_of, d):
    """Cut ``(old, new)`` update pairs into conflict-free runs, netting
    exact update chains.

    A pair whose ``old`` *is* an earlier pair's ``new`` (same object id,
    field-equal state) supersedes that pair in place: sequential replay
    would insert the intermediate entry and immediately delete it again,
    so the net pair ``(first old, last new)`` leaves identical index
    state.  Any *other* re-touch of a seen object id ends the run, so
    batched delete-then-insert application of each run matches
    sequential :meth:`StripesIndex.update` replay for timestamp-ordered
    batches.

    Yields ``(run, credit)`` tuples: ``run`` lists netted
    ``(old, new, delete_window)`` triples (each object id at most once,
    arrival order), where ``delete_window`` is the lifetime window of
    the chain's *first* new state -- the arrival at which sequential
    replay performs the ``old`` delete, so the batched delete must run
    under that window's rotation state, not the final insert's.
    ``credit`` counts the netted intermediate deletes sequential replay
    would have scored: an intermediate delete succeeds exactly when the
    entry's window is still live on the next update's arrival, i.e. the
    chain advanced by at most one lifetime window.
    """
    chains: Dict[int, List] = {}   # new.oid -> [first old, latest new, dw]
    touched: set = set()           # every oid the current run references
    credit = 0
    for old, new in pairs:
        if new.d != d:
            raise ValueError(
                f"object is {new.d}-d but the index is {d}-d")
        if old is not None and old.oid == new.oid:
            chain = chains.get(new.oid)
            if chain is not None and chain[1] == old:
                if window_of(new.t) - window_of(old.t) <= 1:
                    credit += 1
                chain[1] = new
                continue
        keys = {new.oid} if old is None else {new.oid, old.oid}
        if keys & touched:
            yield [tuple(c) for c in chains.values()], credit
            chains = {}
            touched = set()
            credit = 0
        chains[new.oid] = [old, new, window_of(new.t)]
        touched |= keys
    if chains or credit:
        yield [tuple(c) for c in chains.values()], credit


class StripesIndex:
    """Scalable Trajectory Index for Predicted Positions (Section 4)."""

    # Write-latency histograms, wired by attach_metrics.  Class-level
    # ``None`` defaults keep the write hot path at one attribute load +
    # None test when metrics are not attached, and keep instances built
    # without __init__ (the persistence loader) well-formed.
    _insert_hist = None
    _insert_batch_hist = None

    def __init__(self, config: StripesConfig,
                 pool: Optional[BufferPool] = None):
        """``pool`` defaults to an in-memory page file behind a
        paper-default buffer pool; pass a pool over an
        :class:`repro.storage.pagefile.OnDiskPageFile` for persistence."""
        self.config = config
        if pool is None:
            pool = BufferPool(InMemoryPageFile())
        self.pool = pool
        self.store = RecordStore(pool)
        # Lifetime-window number -> sub-index.
        self._trees: Dict[int, DualQuadTree] = {}
        #: Sub-index rotations performed (windows destroyed wholesale).
        self.rotations = 0
        #: Pages returned to the pagefile free list by rotations; verified
        #: against :meth:`pages_in_use` at every retirement.
        self.pages_reclaimed = 0
        #: Optional :class:`repro.obs.tracer.Tracer` shared with every
        #: sub-index; set via :meth:`attach_tracer`.
        self.tracer: Optional[Tracer] = None
        # Counters of retired sub-indexes, folded in at rotation so the
        # aggregate metrics stay monotonic across window destruction.
        self._retired_counters = QuadTreeCounters()
        self._retired_cache_hits = 0
        self._retired_cache_misses = 0
        # Write-latency histograms, wired by attach_metrics; None keeps
        # the write hot path free of any metrics cost.
        self._insert_hist = None
        self._insert_batch_hist = None
        #: Number of the last committed checkpoint; 0 before the first
        #: :func:`repro.core.persistence.save_index`.  The sidecar and
        #: the redo journal both carry it, which is how recovery decides
        #: whether a leftover journal belongs to the sidecar on disk.
        self.checkpoint_id = 0

    # ------------------------------------------------------------------ #
    # Window management (Section 4.1)
    # ------------------------------------------------------------------ #

    def _window(self, t: float) -> int:
        if t < 0:
            raise ValueError(f"timestamps must be non-negative, got {t}")
        return int(t // self.config.lifetime)

    def _tree_for_window(self, window: int,
                         create: bool) -> Optional[DualQuadTree]:
        tree = self._trees.get(window)
        if tree is not None or not create:
            return tree
        space = DualSpace(self.config.vmax, self.config.pmax,
                          self.config.lifetime,
                          t_ref=window * self.config.lifetime,
                          float32=self.config.float32)
        tree = DualQuadTree(space, self.store, self.config.quadtree)
        tree.tracer = self.tracer
        self._trees[window] = tree
        self._retire_expired(newest=max(self._trees))
        return tree

    def _retire_expired(self, newest: int) -> None:
        """Keep only the two newest lifetime windows; entries in older
        windows have exceeded their lifetime and are dropped wholesale.

        Retirement must not leak storage across rotations: destroying the
        retired tree frees every one of its records (returning emptied
        pages to the pagefile's free list) and detaches its node cache
        from the shared buffer pool.  The reclaimed page count is verified
        via :meth:`pages_in_use` before/after and accumulated in
        :attr:`pages_reclaimed`.
        """
        for window in [w for w in self._trees if w < newest - 1]:
            tree = self._trees.pop(window)
            self._retired_counters.merge(tree.counters)
            self._retired_cache_hits += tree.cache.hits
            self._retired_cache_misses += tree.cache.misses
            self.rotations += 1
            pages_before = self.pages_in_use()
            entries_dropped = tree.count
            tree.destroy()
            reclaimed = pages_before - self.pages_in_use()
            # A tiny tree may share every one of its pages with records of
            # live windows (pages are per size class, not per tree), so
            # zero reclaimed pages is legal -- but a rotation must never
            # *grow* the footprint.
            if reclaimed < 0:
                raise RuntimeError(
                    f"rotation of window {window} grew the page footprint "
                    f"by {-reclaimed} pages")
            self.pages_reclaimed += reclaimed
            if self.tracer is not None:
                self.tracer.event("stripes.rotation", window=window,
                                  entries_dropped=entries_dropped,
                                  pages_reclaimed=reclaimed)

    def rotate_to(self, window: int) -> None:
        """Retire every sub-index older than the two lifetime windows
        ending at ``window`` without inserting anything.

        Rotation normally rides on the arrival of an update
        (:meth:`_tree_for_window`); a sharded deployment additionally needs
        this explicit hook so *all* shards observe a window advance even
        when a given shard received no write in the new window -- otherwise
        a quiet shard would keep serving entries a serial index would have
        expired.  No-op when ``window`` is not newer than the live ones.
        """
        if self._trees and window > max(self._trees):
            self._retire_expired(newest=window)

    @property
    def live_windows(self) -> List[int]:
        """Currently live lifetime-window numbers (at most two)."""
        return sorted(self._trees)

    def __len__(self) -> int:
        """Number of live (non-expired) entries."""
        return sum(tree.count for tree in self._trees.values())

    # ------------------------------------------------------------------ #
    # Updates (Sections 4.3-4.5)
    # ------------------------------------------------------------------ #

    #: Window groups below this size take the scalar per-point path: the
    #: batch transform + grouped descent only pay off once a few points
    #: share the descent.
    _WRITE_BATCH_MIN = 4

    def insert(self, obj: MovingObjectState) -> None:
        """Insert a new predicted trajectory."""
        if obj.d != self.config.d:
            raise ValueError(
                f"object is {obj.d}-d but the index is {self.config.d}-d")
        hist = self._insert_hist
        start = perf_counter() if hist is not None else 0.0
        tree = self._tree_for_window(self._window(obj.t), create=True)
        tree.insert(tree.space.to_dual(obj))
        if hist is not None:
            hist.observe(perf_counter() - start)

    def insert_batch(self, objs: Sequence[MovingObjectState]) -> int:
        """Insert many trajectories; returns the number inserted.

        Query-equivalent to ``for obj in objs: self.insert(obj)``: states
        are grouped by lifetime window (ascending, so rotation happens
        exactly as under sequential inserts) and each group is
        batch-transformed (:meth:`DualSpace.to_dual_batch`) and fed to its
        sub-index's grouped descent (:meth:`DualQuadTree.insert_batch`),
        which visits every touched node once per batch instead of once
        per point.  Groups below :attr:`_WRITE_BATCH_MIN`, and scalar
        mode (``vectorized=False``), take the per-point reference path.
        """
        d = self.config.d
        by_window: Dict[int, List[MovingObjectState]] = {}
        for obj in objs:
            if obj.d != d:
                raise ValueError(
                    f"object is {obj.d}-d but the index is {d}-d")
            by_window.setdefault(self._window(obj.t), []).append(obj)
        hist = self._insert_batch_hist
        start = perf_counter() if hist is not None else 0.0
        vectorized = self.config.quadtree.vectorized
        inserted = 0
        for window in sorted(by_window):
            tree = self._tree_for_window(window, create=True)
            group = by_window[window]
            if vectorized and len(group) >= self._WRITE_BATCH_MIN:
                batch = tree.space.to_dual_batch(group)
                tree.insert_batch(batch.points(), batch.vs, batch.ps)
            else:
                to_dual = tree.space.to_dual
                insert = tree.insert
                for obj in group:
                    insert(to_dual(obj))
            inserted += len(group)
        if hist is not None and inserted:
            hist.observe(perf_counter() - start)
        return inserted

    def delete(self, obj: MovingObjectState) -> bool:
        """Remove the entry previously inserted for ``obj`` (same object id,
        motion parameters, and timestamp).  Returns False when the entry
        has expired with its sub-index or cannot be found."""
        tree = self._tree_for_window(self._window(obj.t), create=False)
        if tree is None:
            return False
        return tree.delete(tree.space.to_dual(obj))

    def delete_batch(self, objs: Sequence[MovingObjectState]) -> List[bool]:
        """Remove many entries; returns one removed-flag per input, in
        input order (the batched twin of :meth:`delete`).

        Objects are grouped by lifetime window; live windows run the
        grouped descent (:meth:`DualQuadTree.delete_batch`), expired
        windows flag ``False`` without touching storage -- exactly the
        sequential outcome.
        """
        objs = list(objs)
        flags = [False] * len(objs)
        by_window: Dict[int, List[int]] = {}
        for j, obj in enumerate(objs):
            by_window.setdefault(self._window(obj.t), []).append(j)
        vectorized = self.config.quadtree.vectorized
        for window in sorted(by_window):
            tree = self._tree_for_window(window, create=False)
            if tree is None:
                continue
            idxs = by_window[window]
            group = [objs[j] for j in idxs]
            if vectorized and len(group) >= self._WRITE_BATCH_MIN:
                batch = tree.space.to_dual_batch(group)
                gflags = tree.delete_batch(batch.points(),
                                           batch.vs, batch.ps)
            else:
                to_dual = tree.space.to_dual
                gflags = [tree.delete(to_dual(obj)) for obj in group]
            for j, flag in zip(idxs, gflags):
                flags[j] = flag
        return flags

    def update(self, old: Optional[MovingObjectState],
               new: MovingObjectState) -> bool:
        """Delete ``old`` (if supplied and not expired) and insert ``new``.

        Returns True when an old entry was actually removed.  Objects send
        their previous motion parameters along with the new ones, exactly
        as in Section 4.5.  Window rotation triggers on the *arrival* of
        the update (Section 4.1: "when an update with timestamp > 2L
        arrives, we can simply delete the entries in the first index"), so
        the stale window is retired before the old entry is looked up.

        When ``old`` and ``new`` fall in the same lifetime window -- the
        overwhelmingly common case -- the sub-index is resolved once and
        reused for both halves.  When the windows differ, rotation still
        happens first (:meth:`rotate_to`), but the new window's tree is
        only materialised *after* the delete, so a failed delete never
        leaves behind a tree created out of order.
        """
        if new.d != self.config.d:
            raise ValueError(
                f"object is {new.d}-d but the index is {self.config.d}-d")
        new_window = self._window(new.t)
        if old is not None and self._window(old.t) == new_window:
            tree = self._tree_for_window(new_window, create=True)
            removed = tree.delete(tree.space.to_dual(old))
            tree.insert(tree.space.to_dual(new))
            return removed
        self.rotate_to(new_window)
        removed = self.delete(old) if old is not None else False
        tree = self._tree_for_window(new_window, create=True)
        tree.insert(tree.space.to_dual(new))
        return removed

    def update_batch(self, pairs: Sequence[Tuple[
            Optional[MovingObjectState], MovingObjectState]]) -> int:
        """Apply many ``(old, new)`` updates; ``old`` may be ``None``
        (plain insert).  Returns how many old entries were removed.

        The batch is cut into *conflict-free runs* with exact update
        chains netted in place (see :func:`_net_update_runs`): a pair
        whose ``old`` is an earlier pair's ``new`` supersedes it, while
        any other re-touch of a seen object id ends the run.  Each run
        has every object id at most once, so scheduling each delete under
        its sequential-replay window rotation (a netted chain's first
        new), each insert under its own window, and walking the windows
        in ascending order is query-equivalent to -- and returns the
        same removed count as -- sequential :meth:`update` replay for
        timestamp-ordered batches.
        """
        removed = 0
        for run, credit in _net_update_runs(pairs, self._window,
                                            self.config.d):
            removed += self._apply_update_run(run) + credit
        return removed

    def _apply_update_run(self, run: List[Tuple[
            Optional[MovingObjectState], MovingObjectState, int]]) -> int:
        """Apply one conflict-free run of ``(old, new, delete_window)``
        triples (each object id at most once), window-grouped; returns
        entries removed."""
        if len(run) < self._WRITE_BATCH_MIN:
            removed = 0
            for old, new, dw in run:
                if old is not None and dw != self._window(new.t):
                    # A netted chain spanning windows: sequential replay
                    # deletes the first old under the chain's *first*
                    # window rotation, before later links rotate it out.
                    self.rotate_to(dw)
                    if self.delete(old):
                        removed += 1
                    old = None
                if self.update(old, new):
                    removed += 1
            return removed
        deletes: Dict[int, List] = {}
        inserts: Dict[int, List] = {}
        for old, new, dw in run:
            if old is not None:
                deletes.setdefault(dw, []).append(old)
            inserts.setdefault(self._window(new.t), []).append(new)
        removed = 0
        for window in sorted(set(deletes) | set(inserts)):
            self.rotate_to(window)
            olds = deletes.get(window)
            if olds:
                removed += sum(self.delete_batch(olds))
            news = inserts.get(window)
            if news:
                self.insert_batch(news)
        return removed

    # ------------------------------------------------------------------ #
    # Queries (Section 4.6)
    # ------------------------------------------------------------------ #

    def query(self, query: PredictiveQuery, refine: bool = True) -> List[int]:
        """Object ids matching a time-slice, window, or moving query.

        The dual-space region search is exact per dimension, but for
        window/moving queries in d >= 2 each dimension may satisfy the
        query at a *different* time, so the region conjunction admits
        false positives (this is inherent to the paper's per-plane query
        regions).  By default candidates are therefore refined with the
        exact common-instant predicate -- the classic filter-and-refine
        discipline.  ``refine=False`` returns the paper-literal candidate
        set (always a superset of the true answer; identical to it for
        time-slice queries).
        """
        moving = query.as_moving()
        if moving.d != self.config.d:
            raise ValueError(
                f"query is {moving.d}-d but the index is {self.config.d}-d")
        # A time-slice query evaluates every dimension at the same single
        # instant, so the per-plane conjunction is already exact.
        return self._query_moving(moving,
                                  refine and moving.t_low < moving.t_high)

    def _query_moving(self, moving, needs_refine: bool) -> List[int]:
        results: List[int] = []
        if self.config.quadtree.vectorized:
            # Columnar fast path: candidates come back from the tree as
            # SoA columns in descent order and the exact common-instant
            # refinement runs directly on them -- the arithmetic per lane
            # is identical to the scalar loop below, so the answer (ids
            # and order) is too.
            evaluator = MovingQueryEvaluator(moving) if needs_refine else None
            for tree in self._trees.values():
                regions = build_query_regions(
                    moving, self.config.vmax, self.config.lifetime,
                    tree.space.t_ref)
                oids, vs, ps = tree.search_columns(regions)
                if not oids.size:
                    continue
                if needs_refine:
                    space = tree.space
                    vmax = np.array(space.vmax, dtype=np.float64)
                    pvs = vs - vmax
                    p0s = ps - pvs * space.t_ref - vmax * space.lifetime
                    mask = evaluator.matches_batch(p0s, pvs)
                    results.extend(oids[mask].tolist())
                else:
                    results.extend(oids.tolist())
            return results
        for tree in self._trees.values():
            regions = build_query_regions(
                moving, self.config.vmax, self.config.lifetime,
                tree.space.t_ref)
            candidates = tree.search(regions)
            if needs_refine:
                results.extend(self._refine(tree.space, candidates, moving))
            else:
                results.extend(entry.oid for entry in candidates)
        return results

    def query_batch(self, queries: Sequence[PredictiveQuery],
                    refine: bool = True) -> List[List[int]]:
        """Evaluate many queries against the current index state.

        ``result[k]`` is exactly ``self.query(queries[k], refine)``: the
        batch form exists so throughput workloads amortize per-call setup
        and stay on the vectorized descent for every query.
        """
        d = self.config.d
        out: List[List[int]] = []
        for query in queries:
            moving = query.as_moving()
            if moving.d != d:
                raise ValueError(
                    f"query is {moving.d}-d but the index is {d}-d")
            out.append(self._query_moving(
                moving, refine and moving.t_low < moving.t_high))
        return out

    #: Candidate sets below this size are refined by the scalar loop:
    #: numpy setup costs more than a handful of exact tests.
    _REFINE_BATCH_MIN = 8

    def _refine(self, space: DualSpace, candidates, moving) -> List[int]:
        """Exact common-instant check on dual-space candidates."""
        evaluator = MovingQueryEvaluator(moving)
        if (self.config.quadtree.vectorized
                and len(candidates) >= self._REFINE_BATCH_MIN):
            # Vectorized refinement: identical arithmetic per lane, so
            # the survivor set matches the scalar loop bit for bit.
            vmax = np.array(space.vmax, dtype=np.float64)
            vs = np.array([e.v for e in candidates], dtype=np.float64)
            ps = np.array([e.p for e in candidates], dtype=np.float64)
            pvs = vs - vmax
            p0s = ps - pvs * space.t_ref - vmax * space.lifetime
            mask = evaluator.matches_batch(p0s, pvs)
            return [candidates[j].oid for j in np.nonzero(mask)[0]]
        matches = evaluator.matches_trajectory
        vmax = space.vmax
        t_ref = space.t_ref
        lifetime = space.lifetime
        survivors = []
        for entry in candidates:
            pv = [v - vm for v, vm in zip(entry.v, vmax)]
            p0 = [p - pvi * t_ref - vm * lifetime
                  for p, pvi, vm in zip(entry.p, pv, vmax)]
            if matches(p0, pv):
                survivors.append(entry.oid)
        return survivors

    def explain(self, query: PredictiveQuery, refine: bool = True,
                tracer: Optional[Tracer] = None) -> QueryExplain:
        """Run ``query`` once under tracing and return the full descent.

        Produces the same answer as :meth:`query` plus, per live
        sub-index, a :class:`repro.obs.tracer.DescentTrace` (nodes
        visited, quads classified INSIDE/OVERLAP/DISJUNCT, children
        pruned/reported, leaf records scanned) and the filter-and-refine
        summary (candidates vs. refined-away).  ``tracer`` defaults to the
        attached tracer or a fresh private one; spans for the descent and
        refinement of each sub-index hang off the returned
        :attr:`QueryExplain.span`.
        """
        moving = query.as_moving()
        if moving.d != self.config.d:
            raise ValueError(
                f"query is {moving.d}-d but the index is {self.config.d}-d")
        needs_refine = refine and moving.t_low < moving.t_high
        if tracer is None:
            tracer = self.tracer if self.tracer is not None else Tracer()
        out = QueryExplain(query=query, index_name="STRIPES",
                           refined=needs_refine)
        before = self.pool.stats.snapshot()
        with tracer.span("stripes.query",
                         kind=type(query).__name__) as root:
            for window, tree in sorted(self._trees.items()):
                label = f"window {window} (t_ref={tree.space.t_ref:g})"
                trace = DescentTrace(label=label)
                with tracer.span("stripes.descend", window=window):
                    regions = build_query_regions(
                        moving, self.config.vmax, self.config.lifetime,
                        tree.space.t_ref)
                    candidates = tree.search(regions, trace)
                if needs_refine:
                    with tracer.span("stripes.refine", window=window):
                        matched = self._refine(tree.space, candidates,
                                               moving)
                else:
                    matched = [entry.oid for entry in candidates]
                out.sub_indexes.append(SubIndexExplain(
                    label=label, trace=trace, candidates=len(candidates),
                    matched=len(matched)))
                out.results.extend(matched)
        diff = self.pool.stats.diff(before)
        out.logical_reads = diff.logical_reads
        out.physical_reads = diff.physical_reads
        out.span = root
        return out

    def count(self, query: PredictiveQuery) -> int:
        """Number of objects matching the query.

        Time-slice queries use the aggregate fast path: subtrees fully
        inside the query body contribute their stored ``size`` counters
        without any leaf-page access.  Window/moving queries need the
        exact common-instant refinement, so they fall back to
        ``len(self.query(...))``.
        """
        moving = query.as_moving()
        if moving.d != self.config.d:
            raise ValueError(
                f"query is {moving.d}-d but the index is {self.config.d}-d")
        if moving.t_low < moving.t_high:
            return len(self.query(moving))
        total = 0
        for tree in self._trees.values():
            regions = build_query_regions(
                moving, self.config.vmax, self.config.lifetime,
                tree.space.t_ref)
            total += tree.count_in_regions(regions)
        return total

    # ------------------------------------------------------------------ #
    # Bulk loading
    # ------------------------------------------------------------------ #

    def bulk_load(self, states: Iterable[MovingObjectState]) -> int:
        """Build sub-indexes bottom-up from a batch of states.

        Orders of magnitude faster than repeated :meth:`insert` for large
        initial loads: states are transformed, grouped by lifetime window,
        and each window's quadtree is materialised in one recursive pass
        (the same machinery a leaf split uses).  The index must be empty.
        Returns the number of entries loaded.
        """
        if self._trees:
            raise RuntimeError("bulk_load requires an empty index")
        by_window: Dict[int, List[MovingObjectState]] = {}
        for state in states:
            if state.d != self.config.d:
                raise ValueError(
                    f"object is {state.d}-d but the index is "
                    f"{self.config.d}-d")
            by_window.setdefault(self._window(state.t), []).append(state)
        if not by_window:
            return 0
        newest = max(by_window)
        loaded = 0
        for window in sorted(by_window):
            if window < newest - 1:
                raise ValueError(
                    f"bulk_load batch spans more than two lifetime "
                    f"windows ({sorted(by_window)}); entries in window "
                    f"{window} would be expired on arrival")
            tree = self._tree_for_window(window, create=True)
            points = [tree.space.to_dual(state)
                      for state in by_window[window]]
            tree.bulk_load(points)
            loaded += len(points)
        return loaded

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Share ``tracer`` with every live and future sub-index so
        structural events (splits, promotions, collapses, rotations) are
        recorded; pass ``None`` to detach."""
        self.tracer = tracer
        for tree in self._trees.values():
            tree.tracer = tracer

    def attach_metrics(self, registry, prefix: str = "stripes") -> None:
        """Mirror the whole index's state into ``registry`` (a
        :class:`repro.obs.metrics.MetricsRegistry`).

        Wires the buffer pool (``{prefix}_pool_*``), the record store
        (``{prefix}_store_*``), aggregated per-sub-index operation
        counters (inserts, deletes, searches, splits, promotions,
        collapses, spills -- retired windows stay counted), node-cache
        hit/miss counters, index-level gauges (live entries, live
        windows), and write-latency histograms
        (``{prefix}_insert_latency_seconds`` per insert,
        ``{prefix}_insert_batch_latency_seconds`` per batch call).  All
        pull-based except the latency histograms, which record one
        ``observe`` per (batch) insert only while attached.
        """
        self.pool.attach_metrics(registry, prefix=f"{prefix}_pool")
        self.store.attach_metrics(registry, prefix=f"{prefix}_store")
        op_counters = {
            name: registry.counter(f"{prefix}_{name}_total",
                                   help=f"quadtree {name.replace('_', ' ')}")
            for name in ("inserts", "deletes", "searches", "leaf_promotions",
                         "leaf_splits", "collapses", "overflow_spills")
        }
        rotations = registry.counter(f"{prefix}_rotations_total",
                                     help="sub-index windows destroyed")
        reclaimed = registry.counter(
            f"{prefix}_pages_reclaimed_total",
            help="pages released to the pagefile by rotations")
        cache_hits = registry.counter(
            f"{prefix}_node_cache_decoded_hits_total",
            help="node reads served without deserialize")
        cache_misses = registry.counter(
            f"{prefix}_node_cache_decoded_misses_total",
            help="node reads that deserialized bytes")
        entries = registry.gauge(f"{prefix}_entries",
                                 help="live (non-expired) entries")
        windows = registry.gauge(f"{prefix}_live_windows",
                                 help="live lifetime windows (at most 2)")
        # Write-path latency: per-insert and per-insert_batch-call wall
        # time.  Stored on the index so the hot paths pay one attribute
        # load + None test when metrics are not attached.
        self._insert_hist = registry.histogram(
            f"{prefix}_insert_latency_seconds",
            help="per-insert wall time")
        self._insert_batch_hist = registry.histogram(
            f"{prefix}_insert_batch_latency_seconds",
            help="wall time of each insert_batch call")

        def collect() -> None:
            agg = QuadTreeCounters()
            agg.merge(self._retired_counters)
            hits = self._retired_cache_hits
            misses = self._retired_cache_misses
            for tree in self._trees.values():
                agg.merge(tree.counters)
                hits += tree.cache.hits
                misses += tree.cache.misses
            for name, counter in op_counters.items():
                counter.set_total(getattr(agg, name))
            rotations.set_total(self.rotations)
            reclaimed.set_total(self.pages_reclaimed)
            cache_hits.set_total(hits)
            cache_misses.set_total(misses)
            entries.set(len(self))
            windows.set(len(self._trees))

        registry.register_collector(collect)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[int, QuadTreeStats]:
        """Per-window structural statistics."""
        return {window: tree.stats()
                for window, tree in sorted(self._trees.items())}

    def pages_in_use(self) -> int:
        """Pages currently holding index records."""
        return self.store.pages_in_use()

    def flush(self) -> None:
        """Write every dirty page back to the page file."""
        self.pool.flush_all()

    def check(self) -> List[str]:
        """Verify every structural invariant of the whole index; returns
        a list of human-readable violations (empty when sound).

        Runs :meth:`repro.core.quadtree.DualQuadTree.check` on each live
        sub-index and :meth:`repro.storage.node_store.RecordStore.check`
        on the shared record store, then cross-checks them: the record
        ids reachable from the tree roots must be *exactly* the ids the
        store's occupancy bitmaps report (anything occupied but
        unreachable is a leaked record; anything reachable but free is a
        dangling pointer), and no record may be claimed by two windows.
        The crash-recovery harness runs this on every reopened index.
        """
        problems: List[str] = []
        reachable: set = set()
        for window in sorted(self._trees):
            tree = self._trees[window]
            tree_rids: set = set()
            for problem in tree.check(rids_out=tree_rids):
                problems.append(f"window {window}: {problem}")
            overlap = reachable & tree_rids
            if overlap:
                problems.append(
                    f"window {window} shares {len(overlap)} record ids "
                    f"with an older window (e.g. {min(overlap)})")
            reachable |= tree_rids
        for problem in self.store.check():
            problems.append(f"record store: {problem}")
        occupied = set(self.store.occupied_rids())
        leaked = occupied - reachable
        dangling = reachable - occupied
        if leaked:
            problems.append(
                f"{len(leaked)} records occupied but unreachable from any "
                f"window root (e.g. rid {min(leaked)})")
        if dangling:
            problems.append(
                f"{len(dangling)} reachable record ids are not occupied "
                f"in the store (e.g. rid {min(dangling)})")
        return problems

    def __repr__(self) -> str:
        return (f"StripesIndex(d={self.config.d}, entries={len(self)}, "
                f"windows={self.live_windows}, "
                f"pages={self.pages_in_use()})")
