"""Dual-space query regions and the RelativePosition test (Section 4.6).

A predictive query over ``d``-dimensional space induces one two-dimensional
*query region* per dual plane ``(V_i, P_i)``.  In plane ``i`` the region is
the set of dual points whose trajectories cross the query's position
corridor ``[ql_i(t), qh_i(t)]`` at some ``t`` in ``[t_low, t_high]``.

For a linear trajectory that condition is equivalent to::

    exists t: p(t) >= ql(t)     and     exists t: p(t) <= qh(t)

(the two one-sided conditions always share a common instant because the
corridor has non-negative width -- an object that is above the corridor at
``t_low`` and below it at ``t_high`` must pass through it).  Each one-sided
condition is, in dual coordinates, the complement of being strictly beyond
*both* of two boundary lines:

* lower lines: trajectory position equals ``low1`` at ``t_low`` / ``low2``
  at ``t_high``; the region's lower boundary is their pointwise **min** --
  the concave polyline ``L1-L2-L3`` of Figure 6;
* upper lines: position equals ``high1`` at ``t_low`` / ``high2`` at
  ``t_high``; the upper boundary is their pointwise **max** -- the convex
  polyline ``U1-U2-U3``.

For a time-slice query both lines of each pair coincide and the region
degenerates to a parallelogram, exactly as Figure 4 shows.

:meth:`QueryRegion2D.classify_rect` is the paper's ``RelativePosition``
algorithm (Figure 7) generalised to arbitrary slopes: INSIDE / DISJUNCT
answers are exact, so INSIDE sub-trees are reported without per-entry
geometry tests and DISJUNCT sub-trees are pruned.

The hot paths (``contains_point``, ``classify_rect``) are deliberately
written against plain float attributes -- they run once per leaf entry /
node quad and dominate query CPU time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.query.types import MovingQuery


class RelPos(enum.Enum):
    """Relative position of a data rectangle and a query region."""

    INSIDE = "inside"
    OVERLAP = "overlap"
    DISJUNCT = "disjunct"


@dataclass(frozen=True)
class Line:
    """A boundary line ``P = intercept + slope * V`` in one dual plane."""

    slope: float
    intercept: float

    def at(self, v: float) -> float:
        return self.intercept + self.slope * v

    def intersection_v(self, other: "Line") -> Optional[float]:
        """V coordinate where the two lines cross; ``None`` if parallel."""
        dslope = self.slope - other.slope
        if dslope == 0.0:
            return None
        return (other.intercept - self.intercept) / dslope


def _boundary_line(bound: float, when: float, t_ref: float, vmax: float,
                   lifetime: float) -> Line:
    """Dual-plane line of trajectories whose position equals ``bound`` at
    time ``when``:  ``P = bound - (V - vmax)(when - t_ref) + vmax L``."""
    slope = -(when - t_ref)
    intercept = bound + vmax * (when - t_ref) + vmax * lifetime
    return Line(slope, intercept)


class QueryRegion2D:
    """The query region in one dual plane, bounded below by ``min`` of two
    lines and above by ``max`` of two lines."""

    __slots__ = ("la_s", "la_i", "lb_s", "lb_i", "ua_s", "ua_i",
                 "ub_s", "ub_i", "_lower_break", "_upper_break",
                 "_lower_break_p", "_upper_break_p")

    def __init__(self, lower_a: Line, lower_b: Line,
                 upper_a: Line, upper_b: Line):
        # Flattened coefficients for the hot paths.
        self.la_s, self.la_i = lower_a.slope, lower_a.intercept
        self.lb_s, self.lb_i = lower_b.slope, lower_b.intercept
        self.ua_s, self.ua_i = upper_a.slope, upper_a.intercept
        self.ub_s, self.ub_i = upper_b.slope, upper_b.intercept
        self._lower_break = lower_a.intersection_v(lower_b)
        self._upper_break = upper_a.intersection_v(upper_b)
        # Boundary values at the breakpoints, evaluated once: every
        # classify call against this region reuses them.
        self._lower_break_p = (self.lower_at(self._lower_break)
                               if self._lower_break is not None else 0.0)
        self._upper_break_p = (self.upper_at(self._upper_break)
                               if self._upper_break is not None else 0.0)

    @classmethod
    def from_query_plane(cls, query: MovingQuery, plane: int, vmax: float,
                         lifetime: float, t_ref: float) -> "QueryRegion2D":
        """Build the region for dual plane ``plane`` of ``query`` against a
        sub-index with reference time ``t_ref``."""
        lower_a = _boundary_line(query.low1[plane], query.t_low,
                                 t_ref, vmax, lifetime)
        lower_b = _boundary_line(query.low2[plane], query.t_high,
                                 t_ref, vmax, lifetime)
        upper_a = _boundary_line(query.high1[plane], query.t_low,
                                 t_ref, vmax, lifetime)
        upper_b = _boundary_line(query.high2[plane], query.t_high,
                                 t_ref, vmax, lifetime)
        return cls(lower_a, lower_b, upper_a, upper_b)

    # ------------------------------------------------------------------ #
    # Boundary evaluation
    # ------------------------------------------------------------------ #

    @property
    def lower_lines(self) -> Tuple[Line, Line]:
        return (Line(self.la_s, self.la_i), Line(self.lb_s, self.lb_i))

    @property
    def upper_lines(self) -> Tuple[Line, Line]:
        return (Line(self.ua_s, self.ua_i), Line(self.ub_s, self.ub_i))

    def lower_at(self, v: float) -> float:
        """Lower boundary (concave: pointwise min of the two lower lines)."""
        a = self.la_i + self.la_s * v
        b = self.lb_i + self.lb_s * v
        return a if a < b else b

    def upper_at(self, v: float) -> float:
        """Upper boundary (convex: pointwise max of the two upper lines)."""
        a = self.ua_i + self.ua_s * v
        b = self.ub_i + self.ub_s * v
        return a if a > b else b

    def contains_point(self, v: float, p: float) -> bool:
        """Exact membership of a dual point in this plane's region."""
        a = self.la_i + self.la_s * v
        b = self.lb_i + self.lb_s * v
        if p < (a if a < b else b):
            return False
        a = self.ua_i + self.ua_s * v
        b = self.ub_i + self.ub_s * v
        return p <= (a if a > b else b)

    def contains_batch(self, vs: np.ndarray, ps: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains_point` over coordinate columns.

        ``vs``/``ps`` are parallel 1-d coordinate arrays (one leaf's SoA
        columns for this plane); the result is a boolean mask.  Arithmetic
        is performed in ``float64`` regardless of the storage dtype and in
        the same operation order as the scalar test, so the mask is
        bit-exactly ``[contains_point(v, p) for v, p in zip(vs, ps)]``.
        """
        vs = np.asarray(vs, dtype=np.float64)
        ps = np.asarray(ps, dtype=np.float64)
        lower = np.minimum(self.la_i + self.la_s * vs,
                           self.lb_i + self.lb_s * vs)
        upper = np.maximum(self.ua_i + self.ua_s * vs,
                           self.ub_i + self.ub_s * vs)
        return (ps >= lower) & (ps <= upper)

    def corner_points(self, v_max2: float) -> dict:
        """The paper's six defining points (Figure 6) over ``V`` in
        ``[0, v_max2]``.  ``L2``/``U2`` are ``None`` when the respective
        pair of lines is parallel or crosses outside the velocity range."""
        def clip_break(break_v: Optional[float]) -> Optional[float]:
            if break_v is None or not 0.0 < break_v < v_max2:
                return None
            return break_v

        lb = clip_break(self._lower_break)
        ub = clip_break(self._upper_break)
        return {
            "L1": (0.0, self.lower_at(0.0)),
            "L2": (lb, self.lower_at(lb)) if lb is not None else None,
            "L3": (v_max2, self.lower_at(v_max2)),
            "U1": (0.0, self.upper_at(0.0)),
            "U2": (ub, self.upper_at(ub)) if ub is not None else None,
            "U3": (v_max2, self.upper_at(v_max2)),
        }

    # ------------------------------------------------------------------ #
    # RelativePosition (Figure 7)
    # ------------------------------------------------------------------ #

    def classify_rect(self, v1: float, v2: float,
                      p1: float, p2: float) -> RelPos:
        """Classify the data rectangle ``[v1, v2] x [p1, p2]``.

        INSIDE and DISJUNCT answers are exact; anything else is OVERLAP.
        The extremes of the piecewise-linear boundaries over ``[v1, v2]``
        lie at the interval endpoints or at the boundary's breakpoint, so
        only those candidates are evaluated.
        """
        low_v1 = self.lower_at(v1)
        low_v2 = self.lower_at(v2)
        up_v1 = self.upper_at(v1)
        up_v2 = self.upper_at(v2)

        # DISJUNCT: rectangle entirely below the (concave) lower boundary --
        # its minimum over the interval is at an endpoint -- or entirely
        # above the (convex) upper boundary, whose maximum is at an endpoint.
        if p2 < min(low_v1, low_v2) or p1 > max(up_v1, up_v2):
            return RelPos.DISJUNCT

        # INSIDE: bottom edge on/above the lower boundary's maximum and top
        # edge on/below the upper boundary's minimum.  The concave lower
        # boundary can peak at its breakpoint, the convex upper boundary can
        # dip at its breakpoint; include those candidates when they fall in
        # [v1, v2].
        lower_max = max(low_v1, low_v2)
        if self._lower_break is not None and v1 < self._lower_break < v2:
            lower_max = max(lower_max, self._lower_break_p)
        upper_min = min(up_v1, up_v2)
        if self._upper_break is not None and v1 < self._upper_break < v2:
            upper_min = min(upper_min, self._upper_break_p)
        if p1 >= lower_max and p2 <= upper_min:
            return RelPos.INSIDE
        return RelPos.OVERLAP

    def classify_quads(self, v1: float, v_mid: float, v2: float,
                       p1: float, p_mid: float, p2: float) -> Tuple[
                           RelPos, RelPos, RelPos, RelPos]:
        """Classify a node's four child quads in one call.

        The quads partition ``[v1, v2] x [p1, p2]`` at ``(v_mid, p_mid)``;
        the result is indexed by the Eq. 1 per-plane child code (bit 0 =
        upper velocity half, bit 1 = upper position half).  Sharing the
        six boundary evaluations across the four quads, this returns
        exactly what four :meth:`classify_rect` calls would.
        """
        la_s, la_i = self.la_s, self.la_i
        lb_s, lb_i = self.lb_s, self.lb_i
        ua_s, ua_i = self.ua_s, self.ua_i
        ub_s, ub_i = self.ub_s, self.ub_i
        a = la_i + la_s * v1
        b = lb_i + lb_s * v1
        low0 = a if a < b else b
        a = la_i + la_s * v_mid
        b = lb_i + lb_s * v_mid
        low1 = a if a < b else b
        a = la_i + la_s * v2
        b = lb_i + lb_s * v2
        low2 = a if a < b else b
        a = ua_i + ua_s * v1
        b = ub_i + ub_s * v1
        up0 = a if a > b else b
        a = ua_i + ua_s * v_mid
        b = ub_i + ub_s * v_mid
        up1 = a if a > b else b
        a = ua_i + ua_s * v2
        b = ub_i + ub_s * v2
        up2 = a if a > b else b
        # Per velocity half: boundary extremes over the interval.  The
        # concave lower bound's minimum and the convex upper bound's
        # maximum sit at interval endpoints (the DISJUNCT tests); the
        # opposite extremes may sit at a breakpoint inside the interval
        # (the INSIDE tests).
        low_min_a = low0 if low0 < low1 else low1
        low_max_a = low0 if low0 > low1 else low1
        low_min_b = low1 if low1 < low2 else low2
        low_max_b = low1 if low1 > low2 else low2
        brk = self._lower_break
        if brk is not None:
            bp = self._lower_break_p
            if v1 < brk < v_mid and bp > low_max_a:
                low_max_a = bp
            if v_mid < brk < v2 and bp > low_max_b:
                low_max_b = bp
        up_max_a = up0 if up0 > up1 else up1
        up_min_a = up0 if up0 < up1 else up1
        up_max_b = up1 if up1 > up2 else up2
        up_min_b = up1 if up1 < up2 else up2
        brk = self._upper_break
        if brk is not None:
            bp = self._upper_break_p
            if v1 < brk < v_mid and bp < up_min_a:
                up_min_a = bp
            if v_mid < brk < v2 and bp < up_min_b:
                up_min_b = bp
        disjunct = RelPos.DISJUNCT
        inside = RelPos.INSIDE
        overlap = RelPos.OVERLAP
        # code 0: v in [v1, v_mid], p in [p1, p_mid]
        if p_mid < low_min_a or p1 > up_max_a:
            r0 = disjunct
        elif p1 >= low_max_a and p_mid <= up_min_a:
            r0 = inside
        else:
            r0 = overlap
        # code 1: v in [v_mid, v2], p in [p1, p_mid]
        if p_mid < low_min_b or p1 > up_max_b:
            r1 = disjunct
        elif p1 >= low_max_b and p_mid <= up_min_b:
            r1 = inside
        else:
            r1 = overlap
        # code 2: v in [v1, v_mid], p in [p_mid, p2]
        if p2 < low_min_a or p_mid > up_max_a:
            r2 = disjunct
        elif p_mid >= low_max_a and p2 <= up_min_a:
            r2 = inside
        else:
            r2 = overlap
        # code 3: v in [v_mid, v2], p in [p_mid, p2]
        if p2 < low_min_b or p_mid > up_max_b:
            r3 = disjunct
        elif p_mid >= low_max_b and p2 <= up_min_b:
            r3 = inside
        else:
            r3 = overlap
        return (r0, r1, r2, r3)


def build_query_regions(query: MovingQuery, vmax: Tuple[float, ...],
                        lifetime: float,
                        t_ref: float) -> Tuple[QueryRegion2D, ...]:
    """One :class:`QueryRegion2D` per dual plane for ``query``."""
    return tuple(
        QueryRegion2D.from_query_plane(query, i, vmax[i], lifetime, t_ref)
        for i in range(query.d)
    )
