"""Disk-based multi-dimensional bucket PR quadtree over the dual space.

This is the index structure of Section 4: each of the ``d`` dual planes
``(V_i, P_i)`` is split into four quads per level, giving non-leaf fanout
``4^d`` (16 for the two-dimensional workloads of the evaluation).  The tree
follows the paper's design decisions:

* **Insert** (Section 4.3) descends a single root-to-leaf path using the
  Eq. 1 child-index computation; missing target leaves are created lazily
  (case 1), non-full leaves absorb the entry (case 2), and full leaves are
  promoted or split (case 3).
* **Two leaf sizes** (Section 5.1): leaves are born *small* (half a page)
  and are promoted to *large* (a full page) on their first overflow, which
  roughly doubles leaf page occupancy.  A split of a large leaf converts it
  to a non-leaf and redistributes entries into fresh small leaves; empty
  children are simply not materialised.
* **Delete** (Section 4.4) checks non-leaf nodes for under-fill on the way
  down; an under-filled subtree is collapsed back into a single leaf.
* **Search** (Section 4.6.4) classifies each plane's four quads against the
  plane's query region once per node (the 25 %-pruning optimisation) and
  combines the per-plane results per child: any-DISJUNCT prunes, all-INSIDE
  reports the whole subtree without further geometry tests, otherwise the
  child is probed recursively (leaves filter entries exactly).

Leaves at the maximum depth may exceed capacity (coincident points); they
spill into overflow extension records rather than splitting forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dual import DualPoint, DualSpace
from repro.core.nodes import (
    INVALID_RID,
    LeafExtension,
    LeafNode,
    Node,
    NodeCodec,
    NonLeafNode,
    _build_soa,
)
from repro.core.query_region import QueryRegion2D, RelPos
from repro.obs.tracer import DescentTrace
from repro.storage.node_store import (
    MAX_SLOTS_PER_PAGE,
    NodeCache,
    RecordStore,
)

_WRITE_GROUP_MIN = 4
"""Batch size below which the grouped write descent falls back to the
scalar per-point path: numpy classification of a 2-3 point group costs
more than three scalar descents."""


class _DeferredSegments:
    """Descent-ordered result accumulator for the vectorized search.

    ``segments`` holds ``(entries, record, lit)`` triples: ``record`` is
    the leaf-like record owning ``entries`` (its cached SoA view is read
    at resolve time), or ``None`` for entries delivered without one.
    ``lit`` marks segments reported wholesale (all-INSIDE subtrees),
    which pass unconditionally -- they must NOT be re-tested by the
    kernels, whose answer could differ from the rectangle classification
    by an ulp at region boundaries.  Duck-types ``extend`` so fallback
    paths can treat the sink like the scalar path's plain result list.
    """

    __slots__ = ("segments",)

    def __init__(self):
        self.segments: List[tuple] = []

    def extend(self, entries) -> None:
        if entries:
            self.segments.append((entries, None, True))


#: What search paths append results into: a plain list on the scalar and
#: traced paths, a :class:`_DeferredSegments` on the vectorized path.
ResultSink = "List[DualPoint] | _DeferredSegments"


@dataclass(frozen=True)
class QuadTreeConfig:
    """Tuning knobs for the quadtree.

    ``small_leaf_bytes``/``large_leaf_bytes`` default to half a page and a
    full page (minus the record-store header).  ``collapse_capacity`` is
    the under-fill threshold of Section 4.4 and defaults to the large-leaf
    capacity.  ``use_small_leaves=False`` disables the two-size scheme
    (ablation A1: every leaf is born large).  ``quad_pruning=False``
    disables the shared per-plane quad classification of Section 4.6.4
    (ablation A2) -- results are identical, only more CPU is spent.

    ``leaf_size_ladder`` generalises the two-size scheme to the paper's
    stated future work ("extending our current implementation to use more
    than two leaf node sizes"): a strictly increasing tuple of record
    sizes in bytes.  Leaves are born at the smallest size and promoted up
    the ladder on overflow; only a leaf at the largest size splits.  When
    set, it overrides ``small_leaf_bytes``/``large_leaf_bytes`` and
    ``use_small_leaves``.

    ``vectorized`` routes leaf filtering and counting through the numpy
    batch kernels (SoA leaf columns +
    :meth:`repro.core.query_region.QueryRegion2D.contains_batch`).  The
    kernels return bit-identical results to the scalar per-entry tests;
    ``vectorized=False`` keeps the pure-Python path (used by the parity
    suite and as the pre-change benchmark baseline).
    """

    small_leaf_bytes: Optional[int] = None
    large_leaf_bytes: Optional[int] = None
    max_depth: int = 20
    collapse_capacity: Optional[int] = None
    use_small_leaves: bool = True
    quad_pruning: bool = True
    leaf_size_ladder: Optional[Tuple[int, ...]] = None
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.leaf_size_ladder is not None:
            if len(self.leaf_size_ladder) < 1:
                raise ValueError("leaf_size_ladder must not be empty")
            sizes = self.leaf_size_ladder
            if any(a >= b for a, b in zip(sizes, sizes[1:])):
                raise ValueError(
                    f"leaf_size_ladder must be strictly increasing, got "
                    f"{sizes}")


@dataclass
class QuadTreeCounters:
    """Monotonic per-tree operation counters.

    These are plain integer attributes incremented unconditionally --
    the events are either rare (splits, promotions, collapses) or a
    single increment per operation, so the cost is negligible -- and are
    mirrored into a :class:`repro.obs.metrics.MetricsRegistry` by
    :meth:`repro.core.stripes.StripesIndex.attach_metrics`.
    """

    inserts: int = 0
    deletes: int = 0
    searches: int = 0
    leaf_promotions: int = 0
    leaf_splits: int = 0
    collapses: int = 0
    overflow_spills: int = 0

    def merge(self, other: "QuadTreeCounters") -> "QuadTreeCounters":
        for f in ("inserts", "deletes", "searches", "leaf_promotions",
                  "leaf_splits", "collapses", "overflow_spills"):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self


@dataclass
class QuadTreeStats:
    """Structural statistics (used by the Section 5.1 reproduction).

    ``small_leaves``/``mid_leaves``/``large_leaves`` classify leaves by
    their position on the size ladder (bottom / interior / top);
    ``leaves_by_size`` gives the exact per-record-size histogram.
    """

    entries: int = 0
    nonleaf_nodes: int = 0
    small_leaves: int = 0
    mid_leaves: int = 0
    large_leaves: int = 0
    extension_records: int = 0
    height: int = 0
    leaf_slots: int = 0
    leaves_by_size: Dict[int, int] = field(default_factory=dict)

    @property
    def leaf_nodes(self) -> int:
        return self.small_leaves + self.mid_leaves + self.large_leaves

    @property
    def leaf_occupancy(self) -> float:
        """Fraction of leaf entry slots in use (0.0 for an empty tree)."""
        return self.entries / self.leaf_slots if self.leaf_slots else 0.0


class DualQuadTree:
    """One sub-index: a bucket PR quadtree over one dual space."""

    def __init__(self, space: DualSpace, store: RecordStore,
                 config: QuadTreeConfig = QuadTreeConfig(),
                 root: Optional[Tuple[int, bool, int]] = None):
        """``root`` attaches to an existing persisted tree instead of
        creating a fresh empty one: a ``(root_rid, root_is_leaf, count)``
        triple, used by :mod:`repro.core.persistence`."""
        self.space = space
        self.store = store
        self.config = config
        self.codec = NodeCodec(space.d, space.float32)

        page_size = store.pool.pagefile.page_size
        if config.leaf_size_ladder is not None:
            self.leaf_ladder = list(config.leaf_size_ladder)
        else:
            # A full-page record: one slot per page (header 4 B + 1-bit
            # bitmap); the default small record packs two per page.
            large = (config.large_leaf_bytes
                     if config.large_leaf_bytes is not None
                     else page_size - 5)
            small = (config.small_leaf_bytes
                     if config.small_leaf_bytes is not None
                     else (page_size - 6) // 2)
            if small > large:
                raise ValueError(
                    "small leaf records cannot exceed large ones")
            self.leaf_ladder = ([large] if not config.use_small_leaves
                                or small == large else [small, large])
        self.small_bytes = self.leaf_ladder[0]
        self.large_bytes = self.leaf_ladder[-1]
        self.leaf_capacities = [self.codec.leaf_capacity(size)
                                for size in self.leaf_ladder]
        if any(a >= b for a, b in zip(self.leaf_capacities,
                                      self.leaf_capacities[1:])):
            # Equal-capacity rungs would leave an over-full non-top leaf
            # with no rung to promote into (the overflow-chain path is
            # reserved for maximum-depth top-rung leaves).
            raise ValueError(
                f"leaf size ladder {self.leaf_ladder} must yield strictly "
                f"increasing capacities, got {self.leaf_capacities}")
        self._ladder_index = {size: i
                              for i, size in enumerate(self.leaf_ladder)}
        self.small_capacity = self.leaf_capacities[0]
        self.large_capacity = self.leaf_capacities[-1]
        self.ext_capacity = self.codec.extension_capacity(self.large_bytes)
        self.collapse_capacity = (config.collapse_capacity
                                  if config.collapse_capacity is not None
                                  else self.large_capacity)
        self.cache: NodeCache[Node] = NodeCache(
            store, self.codec.serialize, self.codec.deserialize)

        # Plain attributes (not properties): these sit on query hot paths.
        self.d = space.d
        self.fanout = self.codec.fanout
        self._vectorized = config.vectorized
        #: SoA column dtype.  Always float64, even for float32 trees:
        #: float32 coordinates are rounded at transform time, and the
        #: widening float32 -> float64 conversion is exact, so the wide
        #: column holds the very same values the scalar path compares --
        #: while sparing the kernels a per-query upcast copy.
        self._coord_dtype = np.float64
        # Per-level side-length table, grown lazily: a node's geometry
        # depends only on its level, so the tuples are built once per
        # level instead of once per visit.
        self._sides_table: List[Tuple[Tuple[float, ...],
                                      Tuple[float, ...]]] = []
        # Per-child-index plane codes of Eq. 1: _child_codes[idx][i] is
        # the quad code of child ``idx`` in plane ``i``.
        self._child_codes = tuple(
            tuple((idx >> (2 * i)) & 3 for i in range(self.d))
            for idx in range(self.fanout))
        # Hoisted hot-path flags: attribute chains cost on every visit.
        self._quad_pruning = config.quad_pruning
        self._fast_descent = (self.d == 2 and config.vectorized
                              and config.quad_pruning)
        self.counters = QuadTreeCounters()
        #: Optional :class:`repro.obs.tracer.Tracer`; when set, structural
        #: events (splits, promotions, collapses, spills) are recorded.
        self.tracer = None
        if root is None:
            self.count = 0
            self._root_rid = self.cache.insert(
                self.small_bytes,
                self._new_leaf(0, self._origin(), self._origin()))
            self._root_is_leaf = True
        else:
            self._root_rid, self._root_is_leaf, self.count = root

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #

    def _origin(self) -> Tuple[float, ...]:
        return (0.0,) * self.d

    def _child_sides(self, level: int) -> Tuple[Tuple[float, ...],
                                                Tuple[float, ...]]:
        """Side lengths of a node at ``level`` (root is level 0).

        Served from a per-level table built on first use; levels are
        bounded by ``max_depth`` plus the overflow-chain depth, so the
        table stays tiny while every tree visit skips the tuple rebuild.
        """
        table = self._sides_table
        while len(table) <= level:
            scale = 1.0 / (1 << len(table))
            table.append((
                tuple(e * scale for e in self.space.velocity_extent),
                tuple(e * scale for e in self.space.position_extent)))
        return table[level]

    def _child_index(self, node: NonLeafNode, point: DualPoint) -> int:
        """Eq. 1: index of the child quad containing ``point``."""
        sl_v, sl_p = self._child_sides(node.level + 1)
        idx = 0
        for i in range(self.d):
            v_hi = 1 if point.v[i] >= node.v_corner[i] + sl_v[i] else 0
            p_hi = 1 if point.p[i] >= node.p_corner[i] + sl_p[i] else 0
            idx |= ((p_hi << 1) | v_hi) << (2 * i)
        return idx

    def _child_corner(self, node: NonLeafNode,
                      idx: int) -> Tuple[Tuple[float, ...],
                                         Tuple[float, ...]]:
        sl_v, sl_p = self._child_sides(node.level + 1)
        v_corner = []
        p_corner = []
        for i in range(self.d):
            code = (idx >> (2 * i)) & 3
            v_corner.append(node.v_corner[i] + (code & 1) * sl_v[i])
            p_corner.append(node.p_corner[i] + ((code >> 1) & 1) * sl_p[i])
        return tuple(v_corner), tuple(p_corner)

    @staticmethod
    def _new_leaf(level: int, v_corner: Tuple[float, ...],
                  p_corner: Tuple[float, ...],
                  entries: Optional[List[DualPoint]] = None) -> LeafNode:
        return LeafNode(level, v_corner, p_corner,
                        entries if entries is not None else [])

    # ------------------------------------------------------------------ #
    # Insert (Section 4.3)
    # ------------------------------------------------------------------ #

    def insert(self, point: DualPoint) -> None:
        """Insert a dual point (single root-to-leaf path)."""
        self.counters.inserts += 1
        if self._root_is_leaf:
            leaf = self.cache.get(self._root_rid)
            self._root_rid, self._root_is_leaf = self._leaf_insert(
                self._root_rid, leaf, point)
            self.count += 1
            return
        rid = self._root_rid
        while True:
            node = self.cache.get(rid)
            node.size += 1
            idx = self._child_index(node, point)
            child_rid = node.children[idx]
            if child_rid == INVALID_RID:
                # Case 1: target leaf does not exist yet.
                v_corner, p_corner = self._child_corner(node, idx)
                leaf = self._new_leaf(node.level + 1, v_corner, p_corner,
                                      [point])
                node.children[idx] = self.cache.insert(self.small_bytes, leaf)
                node.child_is_leaf[idx] = True
                self.cache.update(rid, node)
                self.count += 1
                return
            if node.child_is_leaf[idx]:
                leaf = self.cache.get(child_rid)
                new_rid, is_leaf = self._leaf_insert(child_rid, leaf, point)
                node.children[idx] = new_rid
                node.child_is_leaf[idx] = is_leaf
                self.cache.update(rid, node)
                self.count += 1
                return
            self.cache.update(rid, node)
            rid = child_rid

    def _leaf_insert(self, rid: int, leaf: LeafNode,
                     point: DualPoint) -> Tuple[int, bool]:
        """Cases 2/3: insert into an existing leaf.  Returns the (possibly
        new) record id and is-leaf flag the parent should point at."""
        ladder_idx = self._ladder_index[self.store.record_size_of(rid)]
        if leaf.overflow == INVALID_RID:
            if len(leaf.entries) < self.leaf_capacities[ladder_idx]:
                # Case 2: room available.
                leaf.entries.append(point)
                self.cache.update(rid, leaf)
                return rid, True
        entries = self._leaf_all_entries(leaf)
        entries.append(point)
        if ladder_idx + 1 < len(self.leaf_ladder):
            # Overflow of a non-top leaf: promote it up the size ladder.
            for next_idx in range(ladder_idx + 1, len(self.leaf_ladder)):
                if len(entries) <= self.leaf_capacities[next_idx]:
                    promoted = self._new_leaf(leaf.level, leaf.v_corner,
                                              leaf.p_corner, entries)
                    new_rid = self.cache.insert(
                        self.leaf_ladder[next_idx], promoted)
                    self.cache.free(rid)
                    self.counters.leaf_promotions += 1
                    if self.tracer is not None:
                        self.tracer.event(
                            "quadtree.leaf_promotion", level=leaf.level,
                            to_bytes=self.leaf_ladder[next_idx])
                    return new_rid, True
        if leaf.level >= self.config.max_depth:
            # Cannot split further: spill into an overflow chain.
            self._write_leaf_chain(rid, leaf, entries)
            self.counters.overflow_spills += 1
            if self.tracer is not None:
                self.tracer.event("quadtree.overflow_spill",
                                  level=leaf.level, entries=len(entries))
            return rid, True
        # Case 3: split -- the leaf becomes a non-leaf subtree.
        new_rid, is_leaf = self._build_subtree(
            leaf.level, leaf.v_corner, leaf.p_corner, entries)
        self._free_leaf_chain(rid, leaf)
        self.counters.leaf_splits += 1
        if self.tracer is not None:
            self.tracer.event("quadtree.leaf_split", level=leaf.level,
                              entries=len(entries))
        return new_rid, is_leaf

    def _build_subtree(self, level: int, v_corner: Tuple[float, ...],
                       p_corner: Tuple[float, ...],
                       entries: List[DualPoint]) -> Tuple[int, bool]:
        """Materialise a subtree for ``entries`` (used by splits and
        under-fill collapses).  Only non-empty children are created."""
        n = len(entries)
        for idx, capacity in enumerate(self.leaf_capacities):
            if n <= capacity:
                leaf = self._new_leaf(level, v_corner, p_corner, entries)
                return self.cache.insert(self.leaf_ladder[idx], leaf), True
        if level >= self.config.max_depth:
            leaf = self._new_leaf(level, v_corner, p_corner, [])
            rid = self.cache.insert(self.large_bytes, leaf)
            self._write_leaf_chain(rid, leaf, entries)
            return rid, True
        node = NonLeafNode(level, v_corner, p_corner,
                           [INVALID_RID] * self.fanout,
                           [False] * self.fanout, n)
        groups: Dict[int, List[DualPoint]] = {}
        for entry in entries:
            groups.setdefault(self._child_index(node, entry), []).append(entry)
        for idx, group in groups.items():
            cv, cp = self._child_corner(node, idx)
            child_rid, child_leaf = self._build_subtree(
                level + 1, cv, cp, group)
            node.children[idx] = child_rid
            node.child_is_leaf[idx] = child_leaf
        return self.cache.insert(self.codec.nonleaf_record_size, node), False

    def bulk_load(self, points: List[DualPoint]) -> None:
        """Replace the tree's contents with ``points``, built bottom-up in
        one recursive pass (used by :meth:`StripesIndex.bulk_load`).

        Ownership note: when ``points`` is already a list the tree takes
        it over without copying (it may become a leaf's entry list); pass
        a copy if the caller keeps mutating it.
        """
        if self.count:
            raise RuntimeError("bulk_load requires an empty tree")
        if not isinstance(points, list):
            points = list(points)
        if not points:
            return
        if self._root_is_leaf:
            # An empty tree's root is one empty leaf record; free it
            # directly rather than walking a subtree that cannot exist.
            self.cache.free(self._root_rid)
        else:
            self._free_subtree(self._root_rid, self._root_is_leaf)
        self._root_rid, self._root_is_leaf = self._build_subtree(
            0, self._origin(), self._origin(), points)
        self.count = len(points)

    # ------------------------------------------------------------------ #
    # Batched writes (grouped descent)
    # ------------------------------------------------------------------ #

    def insert_batch(self, points: List[DualPoint],
                     vs: Optional[np.ndarray] = None,
                     ps: Optional[np.ndarray] = None) -> None:
        """Insert many dual points with one grouped descent.

        Instead of one root-to-leaf pass per point, every non-leaf node on
        any insertion path is visited once: the whole group's child quads
        are classified with one vectorized Eq. 1 evaluation, the group is
        partitioned by child, and each destination leaf applies its
        admission / promotion / split / overflow rewrite once per group
        (overfull groups fall back to the bottom-up
        :meth:`_build_subtree` pass splits already use).  Non-leaf size
        updates are coalesced into one :meth:`NodeCache.update_many`
        batch at the end, pinning each touched page once.

        The resulting tree is *query-equivalent* to inserting the points
        one by one (same entries, same leaf membership); split/promotion
        event counts may differ because a group crosses a capacity
        boundary in one step.  ``vs``/``ps`` are optional pre-built
        ``(n, d)`` float64 coordinate columns (from
        :meth:`repro.core.dual.DualSpace.to_dual_batch`); they are derived
        from ``points`` when absent.  In scalar mode
        (``vectorized=False``) this is exactly the sequential loop.
        """
        n = len(points)
        if n == 0:
            return
        if not self._vectorized or n < _WRITE_GROUP_MIN:
            for point in points:
                self.insert(point)
            return
        if vs is None or ps is None:
            vs = np.array([e.v for e in points], dtype=np.float64)
            ps = np.array([e.p for e in points], dtype=np.float64)
        self.counters.inserts += n
        self.count += n
        pending: Dict[int, NonLeafNode] = {}
        if self._root_is_leaf:
            leaf = self.cache.get(self._root_rid)
            self._root_rid, self._root_is_leaf = self._leaf_insert_group(
                self._root_rid, leaf, points)
        else:
            self._insert_group(self._root_rid, points, vs, ps, pending)
        if pending:
            self.cache.update_many(pending.items())

    def _classify_group(self, node: NonLeafNode, vs: np.ndarray,
                        ps: np.ndarray):
        """Vectorized Eq. 1 over a group: yields ``(child_idx, rows)``
        pairs where ``rows`` selects the group's points landing in that
        child quad.  Comparisons are the same float64 ``>=`` tests as
        :meth:`_child_index`, so every point lands exactly where the
        scalar descent would put it."""
        sl_v, sl_p = self._child_sides(node.level + 1)
        codes = np.zeros(vs.shape[0], dtype=np.int64)
        for i in range(self.d):
            v_hi = vs[:, i] >= node.v_corner[i] + sl_v[i]
            p_hi = ps[:, i] >= node.p_corner[i] + sl_p[i]
            codes |= ((p_hi.astype(np.int64) << 1)
                      | v_hi.astype(np.int64)) << (2 * i)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        uniq, starts = np.unique(sorted_codes, return_index=True)
        bounds = list(starts) + [codes.shape[0]]
        for k, child_idx in enumerate(uniq.tolist()):
            yield child_idx, order[bounds[k]: bounds[k + 1]]

    def _insert_group(self, rid: int, points: List[DualPoint],
                      vs: np.ndarray, ps: np.ndarray,
                      pending: Dict[int, NonLeafNode]) -> None:
        """Insert a group into the non-leaf subtree at ``rid`` (non-leaf
        record ids never change, so nothing is returned)."""
        node = self.cache.get(rid)
        node.size += len(points)
        for child_idx, rows in self._classify_group(node, vs, ps):
            gpoints = [points[j] for j in rows.tolist()]
            child_rid = node.children[child_idx]
            if child_rid == INVALID_RID:
                cv, cp = self._child_corner(node, child_idx)
                crid, cleaf = self._build_subtree(
                    node.level + 1, cv, cp, gpoints)
                node.children[child_idx] = crid
                node.child_is_leaf[child_idx] = cleaf
            elif node.child_is_leaf[child_idx]:
                crid, cleaf = self._leaf_insert_group(
                    child_rid, self.cache.get(child_rid), gpoints)
                node.children[child_idx] = crid
                node.child_is_leaf[child_idx] = cleaf
            else:
                self._insert_group(child_rid, gpoints,
                                   vs[rows], ps[rows], pending)
        pending[rid] = node

    def _leaf_insert_group(self, rid: int, leaf: LeafNode,
                           gpoints: List[DualPoint]) -> Tuple[int, bool]:
        """Group twin of :meth:`_leaf_insert`: admit, promote, spill, or
        split *once* for the whole group."""
        ladder_idx = self._ladder_index[self.store.record_size_of(rid)]
        if (leaf.overflow == INVALID_RID
                and len(leaf.entries) + len(gpoints)
                <= self.leaf_capacities[ladder_idx]):
            leaf.entries.extend(gpoints)
            self.cache.update(rid, leaf)
            return rid, True
        entries = self._leaf_all_entries(leaf)
        entries.extend(gpoints)
        if ladder_idx + 1 < len(self.leaf_ladder):
            for next_idx in range(ladder_idx + 1, len(self.leaf_ladder)):
                if len(entries) <= self.leaf_capacities[next_idx]:
                    promoted = self._new_leaf(leaf.level, leaf.v_corner,
                                              leaf.p_corner, entries)
                    new_rid = self.cache.insert(
                        self.leaf_ladder[next_idx], promoted)
                    self.cache.free(rid)
                    self.counters.leaf_promotions += 1
                    if self.tracer is not None:
                        self.tracer.event(
                            "quadtree.leaf_promotion", level=leaf.level,
                            to_bytes=self.leaf_ladder[next_idx])
                    return new_rid, True
        if leaf.level >= self.config.max_depth:
            if self.store.record_size_of(rid) != self.large_bytes:
                # A group can overshoot every ladder rung at once; the
                # chain head must live in a top-rung record (the scalar
                # path reaches chains only via top-rung leaves).
                fresh = self._new_leaf(leaf.level, leaf.v_corner,
                                       leaf.p_corner, [])
                fresh.overflow = leaf.overflow
                new_rid = self.cache.insert(self.large_bytes, fresh)
                self.cache.free(rid)
                self.counters.leaf_promotions += 1
                rid, leaf = new_rid, fresh
            self._write_leaf_chain(rid, leaf, entries)
            self.counters.overflow_spills += 1
            if self.tracer is not None:
                self.tracer.event("quadtree.overflow_spill",
                                  level=leaf.level, entries=len(entries))
            return rid, True
        new_rid, is_leaf = self._build_subtree(
            leaf.level, leaf.v_corner, leaf.p_corner, entries)
        self._free_leaf_chain(rid, leaf)
        self.counters.leaf_splits += 1
        if self.tracer is not None:
            self.tracer.event("quadtree.leaf_split", level=leaf.level,
                              entries=len(entries))
        return new_rid, is_leaf

    def delete_batch(self, points: List[DualPoint],
                     vs: Optional[np.ndarray] = None,
                     ps: Optional[np.ndarray] = None) -> List[bool]:
        """Remove many entries with one grouped descent.

        Returns one removed-flag per input point, in input order (the
        batched twin of :meth:`delete`'s boolean).  Each touched leaf
        rewrites its entry list / overflow chain once for all its group's
        removals, and each non-leaf on the way down is re-sized and
        rewritten once.  Under-filled nodes collapse *after* their whole
        group is applied (bottom-up), so collapse timing differs from
        sequential replay, but the surviving entries -- and therefore
        every query answer -- are identical.
        """
        n = len(points)
        flags = [False] * n
        if n == 0:
            return flags
        if not self._vectorized or n < _WRITE_GROUP_MIN:
            return [self.delete(point) for point in points]
        self.counters.deletes += n
        if vs is None or ps is None:
            vs = np.array([e.v for e in points], dtype=np.float64)
            ps = np.array([e.p for e in points], dtype=np.float64)
        if self._root_is_leaf:
            leaf = self.cache.get(self._root_rid)
            self._leaf_delete_group(self._root_rid, leaf, points,
                                    range(n), flags)
            return flags
        new_rid, new_is_leaf, _ = self._delete_group(
            self._root_rid, points, list(range(n)), vs, ps, flags)
        self._root_rid = new_rid
        self._root_is_leaf = new_is_leaf
        return flags

    def _delete_group(self, rid: int, points: List[DualPoint],
                      idxs: List[int], vs: np.ndarray, ps: np.ndarray,
                      flags: List[bool]) -> Tuple[int, bool, int]:
        """Delete a group from the non-leaf subtree at ``rid``; returns
        ``(new_rid, new_is_leaf, removed)`` for the parent pointer."""
        node = self.cache.get(rid)
        removed = 0
        for child_idx, rows in self._classify_group(node, vs, ps):
            child_rid = node.children[child_idx]
            if child_rid == INVALID_RID:
                continue
            rows_list = rows.tolist()
            gpoints = [points[j] for j in rows_list]
            gidxs = [idxs[j] for j in rows_list]
            if node.child_is_leaf[child_idx]:
                removed += self._leaf_delete_group(
                    child_rid, self.cache.get(child_rid), gpoints, gidxs,
                    flags)
            else:
                crid, cleaf, r = self._delete_group(
                    child_rid, gpoints, gidxs, vs[rows], ps[rows], flags)
                node.children[child_idx] = crid
                node.child_is_leaf[child_idx] = cleaf
                removed += r
        if not removed:
            return rid, False, 0
        node.size -= removed
        self.cache.update(rid, node)
        if node.size <= self.collapse_capacity:
            entries = self._subtree_entries(rid, is_leaf=False)
            self._free_subtree(rid, is_leaf=False)
            self.counters.collapses += 1
            if self.tracer is not None:
                self.tracer.event("quadtree.collapse", level=node.level,
                                  entries=len(entries))
            return (*self._build_subtree(node.level, node.v_corner,
                                         node.p_corner, entries), removed)
        return rid, False, removed

    def _leaf_delete_group(self, rid: int, leaf: LeafNode,
                           gpoints: List[DualPoint], gidxs,
                           flags: List[bool]) -> int:
        """Remove every matching group point from one leaf, rewriting the
        entry list / overflow chain once."""
        entries = self._leaf_all_entries(leaf)
        removed = 0
        for j, point in zip(gidxs, gpoints):
            pos = self._find_entry(entries, point)
            if pos is not None:
                entries.pop(pos)
                flags[j] = True
                removed += 1
        if not removed:
            return 0
        if leaf.overflow != INVALID_RID:
            self._write_leaf_chain(rid, leaf, entries)
        else:
            leaf.entries = entries
            self.cache.update(rid, leaf)
        self.count -= removed
        return removed

    def update_batch(self, pairs) -> int:
        """Apply many ``(old, new)`` dual-point updates; ``old`` may be
        ``None`` (plain insert).  Returns how many olds were removed.

        Deletes run before inserts, which matches sequential
        delete-then-insert replay only while each oid appears in at most
        one pair; batches with repeated oids fall back to the sequential
        path to preserve per-pair ordering.
        """
        pairs = list(pairs)
        if not pairs:
            return 0
        oids = [new.oid for _, new in pairs]
        if len(set(oids)) != len(oids):
            removed = 0
            for old, new in pairs:
                if old is not None and self.delete(old):
                    removed += 1
                self.insert(new)
            return removed
        olds = [old for old, _ in pairs if old is not None]
        flags = self.delete_batch(olds)
        self.insert_batch([new for _, new in pairs])
        return sum(flags)

    # ------------------------------------------------------------------ #
    # Overflow chains (maximum-depth leaves only)
    # ------------------------------------------------------------------ #

    def _leaf_all_entries(self, leaf: LeafNode,
                          out: Optional[List[DualPoint]] = None
                          ) -> List[DualPoint]:
        """Entries of the leaf including any overflow extensions.

        ``out`` appends into the caller's accumulator instead of building
        (and having the caller re-copy) an intermediate list per record --
        the bulk-collection paths (:meth:`all_entries`, subtree collapses,
        whole-subtree reporting) pass one shared buffer down the walk.
        """
        entries = out if out is not None else []
        entries.extend(leaf.entries)
        rid = leaf.overflow
        while rid != INVALID_RID:
            ext = self.cache.get(rid)
            entries.extend(ext.entries)
            rid = ext.overflow
        return entries

    def _write_leaf_chain(self, rid: int, leaf: LeafNode,
                          entries: List[DualPoint]) -> None:
        """Rewrite the leaf and its overflow chain to hold ``entries``."""
        old = leaf.overflow
        while old != INVALID_RID:
            ext = self.cache.get(old)
            nxt = ext.overflow
            self.cache.free(old)
            old = nxt
        leaf.entries = entries[: self.large_capacity]
        rest = entries[self.large_capacity:]
        head = INVALID_RID
        for start in range(
                (len(rest) // self.ext_capacity) * self.ext_capacity,
                -1, -self.ext_capacity):
            chunk = rest[start: start + self.ext_capacity]
            if not chunk:
                continue
            head = self.cache.insert(self.large_bytes,
                                     LeafExtension(chunk, head))
        leaf.overflow = head
        self.cache.update(rid, leaf)

    def _free_leaf_chain(self, rid: int, leaf: LeafNode) -> None:
        ext_rid = leaf.overflow
        while ext_rid != INVALID_RID:
            ext = self.cache.get(ext_rid)
            nxt = ext.overflow
            self.cache.free(ext_rid)
            ext_rid = nxt
        self.cache.free(rid)

    # ------------------------------------------------------------------ #
    # Delete (Section 4.4)
    # ------------------------------------------------------------------ #

    def delete(self, point: DualPoint) -> bool:
        """Remove the entry matching ``point`` (oid and coordinates).

        Returns False (leaving the tree unchanged, modulo legal under-fill
        collapses) when no such entry exists -- the caller then treats the
        update as an insert of a new object (Section 4.4).
        """
        self.counters.deletes += 1
        if self._root_is_leaf:
            leaf = self.cache.get(self._root_rid)
            return self._leaf_delete(self._root_rid, leaf, point)
        decremented: List[int] = []
        parent_rid = INVALID_RID
        parent_idx = -1
        rid = self._root_rid
        while True:
            node = self.cache.get(rid)
            if node.size - 1 <= self.collapse_capacity:
                # Case 2: under-filled non-leaf -- collapse to a leaf.
                return self._collapse_and_delete(
                    rid, node, parent_rid, parent_idx, point, decremented)
            idx = self._child_index(node, point)
            child_rid = node.children[idx]
            if child_rid == INVALID_RID:
                self._rollback(decremented)
                return False
            node.size -= 1
            self.cache.update(rid, node)
            decremented.append(rid)
            if node.child_is_leaf[idx]:
                leaf = self.cache.get(child_rid)
                if self._leaf_delete(child_rid, leaf, point):
                    return True
                self._rollback(decremented)
                return False
            parent_rid, parent_idx = rid, idx
            rid = child_rid

    def _leaf_delete(self, rid: int, leaf: LeafNode,
                     point: DualPoint) -> bool:
        entries = self._leaf_all_entries(leaf)
        pos = self._find_entry(entries, point)
        if pos is None:
            return False
        entries.pop(pos)
        if leaf.overflow != INVALID_RID:
            self._write_leaf_chain(rid, leaf, entries)
        else:
            leaf.entries = entries
            self.cache.update(rid, leaf)
        self.count -= 1
        return True

    def _collapse_and_delete(self, rid: int, node: NonLeafNode,
                             parent_rid: int, parent_idx: int,
                             point: DualPoint,
                             decremented: List[int]) -> bool:
        entries = self._subtree_entries(rid, is_leaf=False)
        pos = self._find_entry(entries, point)
        if pos is None:
            self._rollback(decremented)
            return False
        entries.pop(pos)
        self._free_subtree(rid, is_leaf=False)
        # With the default threshold (one leaf's capacity) the rebuild is
        # always a single leaf; a larger configured threshold can rebuild
        # a (smaller) subtree instead.
        self.counters.collapses += 1
        if self.tracer is not None:
            self.tracer.event("quadtree.collapse", level=node.level,
                              entries=len(entries))
        new_rid, new_is_leaf = self._build_subtree(
            node.level, node.v_corner, node.p_corner, entries)
        if parent_rid == INVALID_RID:
            self._root_rid = new_rid
            self._root_is_leaf = new_is_leaf
        else:
            parent = self.cache.get(parent_rid)
            parent.children[parent_idx] = new_rid
            parent.child_is_leaf[parent_idx] = new_is_leaf
            self.cache.update(parent_rid, parent)
        self.count -= 1
        return True

    @staticmethod
    def _find_entry(entries: List[DualPoint],
                    point: DualPoint) -> Optional[int]:
        for i, entry in enumerate(entries):
            if (entry.oid == point.oid and entry.v == point.v
                    and entry.p == point.p):
                return i
        # Fall back to oid-only matching: coordinates recomputed from stale
        # caller state can drift by rounding, but an oid appears in exactly
        # one leaf of a sub-index under the one-entry-per-object discipline.
        for i, entry in enumerate(entries):
            if entry.oid == point.oid:
                return i
        return None

    def _rollback(self, decremented: List[int]) -> None:
        for rid in decremented:
            node = self.cache.get(rid)
            node.size += 1
            self.cache.update(rid, node)

    # ------------------------------------------------------------------ #
    # Search (Section 4.6.4)
    # ------------------------------------------------------------------ #

    def search(self, regions: Tuple[QueryRegion2D, ...],
               trace: Optional[DescentTrace] = None) -> List[DualPoint]:
        """Entries inside the query body given one region per dual plane.

        Per-plane region membership is exact per dimension but -- for
        window/moving queries in d >= 2 -- only *necessary* for a true
        match (each dimension may satisfy the query at a different time).
        Callers needing exact answers refine the returned candidates with
        the native-space predicate; :class:`repro.core.stripes.StripesIndex`
        does this by default.

        ``trace`` (a :class:`repro.obs.tracer.DescentTrace`) records the
        descent -- nodes visited, per-quad INSIDE/OVERLAP/DISJUNCT
        classifications, entries scanned -- at a small per-node cost; the
        default ``None`` leaves the hot path untouched.
        """
        if len(regions) != self.d:
            raise ValueError(
                f"expected {self.d} query regions, got {len(regions)}")
        self.counters.searches += 1
        if self._vectorized and trace is None:
            # Deferred filtering: the descent only *collects* leaf-record
            # SoA segments (plus wholesale INSIDE reports); the membership
            # kernels then run once over the concatenated columns.  Leaf
            # records average a few dozen entries, far too small to
            # amortize per-call numpy overhead record by record.
            acc = _DeferredSegments()
            if self._root_is_leaf:
                self._filter_leaf(self.cache.get(self._root_rid), regions,
                                  acc)
            else:
                self._search_nonleaf(self._root_rid, regions, acc)
            return self._resolve_segments(regions, acc)
        results: List[DualPoint] = []
        if self._root_is_leaf:
            leaf = self.cache.get(self._root_rid)
            self._filter_leaf(leaf, regions, results, trace)
        else:
            self._search_nonleaf(self._root_rid, regions, results, trace, 0)
        return results

    def _resolve_segments(self, regions: Tuple[QueryRegion2D, ...],
                          acc: "_DeferredSegments") -> List[DualPoint]:
        """Filter the collected segments in one vectorized pass.

        Segment order is descent order, so the returned list is element-
        for-element identical to the scalar path's; the kernels compute
        per lane, so concatenating records changes nothing about any
        lane's arithmetic.
        """
        segments = acc.segments
        d = self.d
        dtype = self._coord_dtype
        results: List[DualPoint] = []
        vs_list = []
        ps_list = []
        offsets = []
        off = 0
        for entries, rec, lit in segments:
            if not lit:
                offsets.append(off)
                off += len(entries)
                # soa() unrolled: the view is valid while the record's
                # entries list is the same object at the same length.
                if rec._soa_entries is entries and \
                        rec._soa_len == len(entries):
                    soa = rec._soa
                else:
                    soa = rec.soa(d, dtype)
                vs_list.append(soa.vs)
                ps_list.append(soa.ps)
        if not vs_list:
            for entries, _, _ in segments:
                results.extend(entries)
            return results
        if len(vs_list) == 1:
            vs, ps = vs_list[0], ps_list[0]
        else:
            vs = np.concatenate(vs_list)
            ps = np.concatenate(ps_list)
        mask = regions[0].contains_batch(vs[:, 0], ps[:, 0])
        for i in range(1, d):
            mask &= regions[i].contains_batch(vs[:, i], ps[:, i])
        # One global hit list over the concatenated columns.  Lit
        # (all-INSIDE) segments interleave in descent order, so the hit
        # list is split at each pending segment's start offset and each
        # global index mapped back into its segment's entry list --
        # never materialising a flattened candidate list.
        hits = np.nonzero(mask)[0]
        offsets.append(off)
        bounds = np.searchsorted(hits, np.asarray(offsets)).tolist()
        hits_l = hits.tolist()
        seg_idx = 0
        append = results.append
        extend = results.extend
        for entries, rec, lit in segments:
            if lit:
                extend(entries)
                continue
            lo = bounds[seg_idx]
            hi = bounds[seg_idx + 1]
            base = offsets[seg_idx]
            seg_idx += 1
            if lo == hi:
                continue
            if hi - lo == len(entries):
                extend(entries)
            else:
                for j in hits_l[lo:hi]:
                    append(entries[j - base])
        return results

    def search_columns(self, regions: Tuple[QueryRegion2D, ...]
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Matching entries as ``(oids, vs, ps)`` numpy columns.

        Column-typed variant of :meth:`search` for the vectorized hot
        path: the same descent, the same membership kernels, and the
        same descent-ordered answer -- but candidates never leave SoA
        form, so the caller's refinement step (the exact common-instant
        check in :class:`repro.core.stripes`) can run directly on the
        returned columns without rebuilding arrays from
        :class:`DualPoint` objects.  Row ``k`` of each column describes
        the ``k``-th entry :meth:`search` would return.
        """
        if len(regions) != self.d:
            raise ValueError(
                f"expected {self.d} query regions, got {len(regions)}")
        self.counters.searches += 1
        acc = _DeferredSegments()
        if self._root_is_leaf:
            self._filter_leaf(self.cache.get(self._root_rid), regions, acc)
        else:
            self._search_nonleaf(self._root_rid, regions, acc)
        return self._resolve_columns(regions, acc)

    def _resolve_columns(self, regions: Tuple[QueryRegion2D, ...],
                         acc: "_DeferredSegments"
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Kernel pass over the collected segments, staying columnar.

        Lit (all-INSIDE) rows bypass the kernels by forcing their mask
        range to True: re-testing them could disagree with the rectangle
        classification by an ulp at region boundaries, and the scalar
        path never tests them either.
        """
        segments = acc.segments
        d = self.d
        dtype = self._coord_dtype
        if not segments:
            return (np.empty(0, dtype=np.int64),
                    np.empty((0, d), dtype=np.float64),
                    np.empty((0, d), dtype=np.float64))
        soas = []
        lit_ranges = []
        any_pending = False
        off = 0
        for entries, rec, lit in segments:
            # soa() unrolled: the view is valid while the record's
            # entries list is the same object at the same length.
            if rec is None:
                soa = _build_soa(entries, d, np.float64)
            elif rec._soa_entries is entries and \
                    rec._soa_len == len(entries):
                soa = rec._soa
            else:
                soa = rec.soa(d, dtype)
            soas.append(soa)
            if lit:
                lit_ranges.append((off, off + len(entries)))
            else:
                any_pending = True
            off += len(entries)
        if len(soas) == 1:
            oids, vs, ps = soas[0].oids, soas[0].vs, soas[0].ps
        else:
            oids = np.concatenate([s.oids for s in soas])
            vs = np.concatenate([s.vs for s in soas])
            ps = np.concatenate([s.ps for s in soas])
        if not any_pending:
            return oids, vs, ps
        mask = regions[0].contains_batch(vs[:, 0], ps[:, 0])
        for i in range(1, d):
            mask &= regions[i].contains_batch(vs[:, i], ps[:, i])
        for lo, hi in lit_ranges:
            mask[lo:hi] = True
        return oids[mask], vs[mask], ps[mask]

    def _point_matches(self, entry: DualPoint,
                       regions: Tuple[QueryRegion2D, ...]) -> bool:
        return all(regions[i].contains_point(entry.v[i], entry.p[i])
                   for i in range(self.d))

    #: Leaf records below this many entries are filtered by the scalar
    #: loop even in vectorized mode: numpy call overhead exceeds the
    #: per-entry test for very small batches.  Both paths are exact, so
    #: the threshold is purely a performance knob.
    _BATCH_MIN_ENTRIES = 8

    def _defer_overflow(self, rid: int, segments: List[tuple],
                        lit: bool = False) -> None:
        """Append an overflow chain's records as deferred segments."""
        while rid != INVALID_RID:
            ext = self.cache.get(rid)
            if ext.entries:
                segments.append((ext.entries, ext, lit))
            rid = ext.overflow

    def _filter_leaf(self, leaf: LeafNode,
                     regions: Tuple[QueryRegion2D, ...],
                     results: "ResultSink",
                     trace: Optional[DescentTrace] = None) -> None:
        if isinstance(results, _DeferredSegments):
            segments = results.segments
            if leaf.entries:
                segments.append((leaf.entries, leaf, False))
            if leaf.overflow != INVALID_RID:
                self._defer_overflow(leaf.overflow, segments)
            return
        if trace is not None:
            trace.leaf_visits += 1
            before = len(results)
        if self._vectorized:
            scanned = self._filter_leaf_batch(leaf, regions, results)
        else:
            entries = self._leaf_all_entries(leaf)
            scanned = len(entries)
            self._filter_entries_scalar(entries, regions, results)
        if trace is not None:
            trace.entries_scanned += scanned
            trace.candidates += len(results) - before

    def _filter_entries_scalar(self, entries: List[DualPoint],
                               regions: Tuple[QueryRegion2D, ...],
                               results: List[DualPoint]) -> None:
        if self.d == 2:
            # Hand-unrolled two-dimensional path: this loop runs once per
            # candidate entry and dominates query CPU time when the batch
            # kernels are disabled.
            r0, r1 = regions
            append = results.append
            for entry in entries:
                v = entry.v
                p = entry.p
                if (r0.contains_point(v[0], p[0])
                        and r1.contains_point(v[1], p[1])):
                    append(entry)
        else:
            for entry in entries:
                if self._point_matches(entry, regions):
                    results.append(entry)

    def _filter_leaf_batch(self, leaf: LeafNode,
                           regions: Tuple[QueryRegion2D, ...],
                           results: List[DualPoint]) -> int:
        """Vectorized leaf filter: one half-plane/polyline kernel per dual
        plane over the leaf's SoA columns, then a single mask reduction.

        Returns the number of entries scanned.  Overflow-chain records are
        filtered record by record (each has its own SoA view), preserving
        the scalar path's result order and page-access sequence.
        """
        d = self.d
        dtype = self._coord_dtype
        scanned = 0
        rec = leaf
        while True:
            entries = rec.entries
            n = len(entries)
            scanned += n
            if 0 < n < self._BATCH_MIN_ENTRIES:
                self._filter_entries_scalar(entries, regions, results)
            elif n:
                soa = rec.soa(d, dtype)
                vs = soa.vs
                ps = soa.ps
                mask = regions[0].contains_batch(vs[:, 0], ps[:, 0])
                for i in range(1, d):
                    mask &= regions[i].contains_batch(vs[:, i], ps[:, i])
                hits = np.nonzero(mask)[0]
                if hits.size == n:
                    results.extend(entries)
                elif hits.size:
                    results.extend([entries[j] for j in hits])
            nxt = rec.overflow
            if nxt == INVALID_RID:
                return scanned
            rec = self.cache.get(nxt)

    def _search_nonleaf(self, rid: int, regions: Tuple[QueryRegion2D, ...],
                        results: List[DualPoint],
                        trace: Optional[DescentTrace] = None,
                        depth: int = 0,
                        node: Optional[NonLeafNode] = None) -> None:
        # ``node`` is passed by the vectorized fast path below, which
        # already fetched (and IO-accounted) the child before recursing.
        if node is None:
            node = self.cache.get(rid)
        level1 = node.level + 1
        sides = self._sides_table
        sl_v, sl_p = (sides[level1] if level1 < len(sides)
                      else self._child_sides(level1))
        if trace is None and self._fast_descent:
            # Untraced two-dimensional fast path: classify each plane's
            # four quads once (Section 4.6.4), then iterate per-plane
            # codes instead of flat child indexes, so one DISJUNCT
            # plane-1 code skips its whole block of four children.
            # Child index (c1 << 2) | c0 ascends with the loops, so
            # visit order -- and therefore result order -- matches the
            # generic loop below exactly.  Gated on the vectorized flag
            # so ``vectorized=False`` stays the plain, obviously-correct
            # reference descent that the parity suite and the
            # before/after bench compare against.
            vc = node.v_corner
            pc = node.p_corner
            r0q, r1q = regions
            v_mid = vc[0] + sl_v[0]
            p_mid = pc[0] + sl_p[0]
            rel0 = r0q.classify_quads(vc[0], v_mid, v_mid + sl_v[0],
                                      pc[0], p_mid, p_mid + sl_p[0])
            v_mid = vc[1] + sl_v[1]
            p_mid = pc[1] + sl_p[1]
            rel1 = r1q.classify_quads(vc[1], v_mid, v_mid + sl_v[1],
                                      pc[1], p_mid, p_mid + sl_p[1])
            children = node.children
            child_is_leaf = node.child_is_leaf
            disjunct = RelPos.DISJUNCT
            inside = RelPos.INSIDE
            cache = self.cache
            cache_get = cache.get
            # The leaf-child lookup below is cache.get unrolled into
            # the loop: generation-checked object-cache probe, page
            # touch for identical IO accounting, decode only on miss.
            objects = cache._objects
            gens = cache.store._record_gen
            pool = cache.store.pool
            frames = pool._frames
            frames_move = frames.move_to_end
            iostats = pool.stats
            pool_fetch = pool.fetch
            segments = (results.segments
                        if type(results) is _DeferredSegments else None)
            invalid = INVALID_RID
            report_subtree = self._report_subtree
            search_nonleaf = self._search_nonleaf
            depth1 = depth + 1
            live0 = [(c0, rel0[c0]) for c0 in range(4)
                     if rel0[c0] is not disjunct]
            for c1 in range(4):
                r1 = rel1[c1]
                if r1 is disjunct:
                    continue
                base = c1 << 2
                for c0, r0 in live0:
                    idx = base + c0
                    child_rid = children[idx]
                    if child_rid == invalid:
                        continue
                    if r0 is inside and r1 is inside:
                        report_subtree(child_rid, child_is_leaf[idx],
                                       results)
                        continue
                    entry = objects.get(child_rid)
                    if entry is not None and \
                            entry[0] == gens.get(child_rid, 0):
                        page_id = child_rid // MAX_SLOTS_PER_PAGE
                        if page_id in frames:
                            # pool.touch unrolled: logical read
                            # counted, frame moved to MRU.
                            iostats.logical_reads += 1
                            frames_move(page_id)
                        else:
                            pool_fetch(page_id).unpin()
                        cache.hits += 1
                        child = entry[1]
                    else:
                        child = cache_get(child_rid)
                    if not child_is_leaf[idx]:
                        search_nonleaf(child_rid, regions, results,
                                       None, depth1, child)
                    elif segments is None:
                        self._filter_leaf(child, regions, results)
                    else:
                        # Inlined deferral for the common
                        # overflow-free leaf.
                        entries = child.entries
                        if entries:
                            segments.append((entries, child, False))
                        if child.overflow != invalid:
                            self._defer_overflow(child.overflow,
                                                 segments)
            return
        if trace is not None:
            trace.nonleaf_visits += 1
            if depth > trace.max_depth:
                trace.max_depth = depth
        if self._quad_pruning:
            # Classify each plane's four quads once (Section 4.6.4); the
            # shared-corner batch call evaluates each boundary point once
            # and each child then just combines its per-plane codes.
            plane_rel = []
            for i in range(self.d):
                v_mid = node.v_corner[i] + sl_v[i]
                p_mid = node.p_corner[i] + sl_p[i]
                plane_rel.append(regions[i].classify_quads(
                    node.v_corner[i], v_mid, v_mid + sl_v[i],
                    node.p_corner[i], p_mid, p_mid + sl_p[i]))
            if trace is not None:
                for quads in plane_rel:
                    for rel in quads:
                        if rel is RelPos.INSIDE:
                            trace.quads_inside += 1
                        elif rel is RelPos.DISJUNCT:
                            trace.quads_disjunct += 1
                        else:
                            trace.quads_overlap += 1
        child_codes = self._child_codes
        for idx in range(self.fanout):
            child_rid = node.children[idx]
            if child_rid == INVALID_RID:
                continue
            disjunct = False
            all_inside = True
            for i in range(self.d):
                code = child_codes[idx][i]
                if self.config.quad_pruning:
                    rel = plane_rel[i][code]
                else:
                    v1 = node.v_corner[i] + (code & 1) * sl_v[i]
                    p1 = node.p_corner[i] + ((code >> 1) & 1) * sl_p[i]
                    rel = regions[i].classify_rect(
                        v1, v1 + sl_v[i], p1, p1 + sl_p[i])
                    if trace is not None:
                        if rel is RelPos.INSIDE:
                            trace.quads_inside += 1
                        elif rel is RelPos.DISJUNCT:
                            trace.quads_disjunct += 1
                        else:
                            trace.quads_overlap += 1
                if rel is RelPos.DISJUNCT:
                    disjunct = True
                    break
                if rel is not RelPos.INSIDE:
                    all_inside = False
            if disjunct:
                if trace is not None:
                    trace.children_pruned += 1
                continue
            if all_inside:
                if trace is not None:
                    trace.children_reported += 1
                self._report_subtree(child_rid, node.child_is_leaf[idx],
                                     results, trace)
            elif node.child_is_leaf[idx]:
                leaf = self.cache.get(child_rid)
                if trace is not None:
                    trace.children_recursed += 1
                    if depth + 1 > trace.max_depth:
                        trace.max_depth = depth + 1
                self._filter_leaf(leaf, regions, results, trace)
            else:
                if trace is not None:
                    trace.children_recursed += 1
                self._search_nonleaf(child_rid, regions, results, trace,
                                     depth + 1)

    def count_in_regions(self, regions: Tuple[QueryRegion2D, ...]) -> int:
        """Number of entries inside the query body.

        Unlike :meth:`search`, subtrees classified INSIDE contribute their
        stored ``size`` counter (Section 4.2) without reading a single
        leaf page -- the aggregate-query payoff of keeping sizes in
        non-leaf nodes.  Exact for time-slice query regions; for
        window/moving queries the result counts region candidates (a
        superset of true matches, see :meth:`search`).
        """
        if len(regions) != self.d:
            raise ValueError(
                f"expected {self.d} query regions, got {len(regions)}")
        if self._root_is_leaf:
            leaf = self.cache.get(self._root_rid)
            return self._count_leaf(leaf, regions)
        return self._count_nonleaf(self._root_rid, regions)

    def _count_leaf(self, leaf: LeafNode,
                    regions: Tuple[QueryRegion2D, ...]) -> int:
        """Matching entries in a leaf (and its overflow chain)."""
        if not self._vectorized:
            return sum(1 for e in self._leaf_all_entries(leaf)
                       if self._point_matches(e, regions))
        d = self.d
        dtype = self._coord_dtype
        total = 0
        rec = leaf
        while True:
            n = len(rec.entries)
            if 0 < n < self._BATCH_MIN_ENTRIES:
                total += sum(1 for e in rec.entries
                             if self._point_matches(e, regions))
            elif n:
                soa = rec.soa(d, dtype)
                mask = regions[0].contains_batch(soa.vs[:, 0], soa.ps[:, 0])
                for i in range(1, d):
                    mask &= regions[i].contains_batch(soa.vs[:, i],
                                                      soa.ps[:, i])
                total += int(np.count_nonzero(mask))
            nxt = rec.overflow
            if nxt == INVALID_RID:
                return total
            rec = self.cache.get(nxt)

    def _count_nonleaf(self, rid: int,
                       regions: Tuple[QueryRegion2D, ...]) -> int:
        node = self.cache.get(rid)
        sl_v, sl_p = self._child_sides(node.level + 1)
        plane_rel = []
        for i in range(self.d):
            v_mid = node.v_corner[i] + sl_v[i]
            p_mid = node.p_corner[i] + sl_p[i]
            plane_rel.append(regions[i].classify_quads(
                node.v_corner[i], v_mid, v_mid + sl_v[i],
                node.p_corner[i], p_mid, p_mid + sl_p[i]))
        total = 0
        child_codes = self._child_codes
        for idx in range(self.fanout):
            child_rid = node.children[idx]
            if child_rid == INVALID_RID:
                continue
            disjunct = False
            all_inside = True
            for i in range(self.d):
                rel = plane_rel[i][child_codes[idx][i]]
                if rel is RelPos.DISJUNCT:
                    disjunct = True
                    break
                if rel is not RelPos.INSIDE:
                    all_inside = False
            if disjunct:
                continue
            if node.child_is_leaf[idx]:
                leaf = self.cache.get(child_rid)
                if all_inside:
                    total += len(self._leaf_all_entries(leaf))
                else:
                    total += self._count_leaf(leaf, regions)
            elif all_inside:
                # The stored subtree size: no leaf pages are read.
                total += self.cache.get(child_rid).size
            else:
                total += self._count_nonleaf(child_rid, regions)
        return total

    def _report_subtree(self, rid: int, is_leaf: bool,
                        results: List[DualPoint],
                        trace: Optional[DescentTrace] = None) -> None:
        if is_leaf:
            leaf = self.cache.get(rid)
            if trace is None:
                if type(results) is _DeferredSegments:
                    # Lit segments: reported wholesale, never re-tested.
                    segments = results.segments
                    if leaf.entries:
                        segments.append((leaf.entries, leaf, True))
                    if leaf.overflow != INVALID_RID:
                        self._defer_overflow(leaf.overflow, segments,
                                             lit=True)
                    return
                self._leaf_all_entries(leaf, out=results)
                return
            before = len(results)
            self._leaf_all_entries(leaf, out=results)
            # Reported wholesale (all-INSIDE): entries become candidates
            # without any per-entry geometry test.
            trace.leaf_visits += 1
            trace.entries_reported += len(results) - before
            trace.candidates += len(results) - before
            return
        node = self.cache.get(rid)
        if trace is not None:
            trace.nonleaf_visits += 1
        for idx in node.present_children():
            self._report_subtree(node.children[idx], node.child_is_leaf[idx],
                                 results, trace)

    # ------------------------------------------------------------------ #
    # Bulk access, teardown, statistics
    # ------------------------------------------------------------------ #

    def all_entries(self) -> List[DualPoint]:
        """Every stored dual point (test and collapse helper)."""
        return self._subtree_entries(self._root_rid, self._root_is_leaf)

    def _subtree_entries(self, rid: int, is_leaf: bool) -> List[DualPoint]:
        """Entries of a subtree, appended into one shared buffer.

        The recursion threads a single output list instead of
        concatenating per-child copies at every level, so collecting a
        subtree of ``n`` entries is O(n) appends rather than O(n * height)
        copied elements.  Page accesses are identical to the naive walk.
        """
        entries: List[DualPoint] = []
        self._collect_entries(rid, is_leaf, entries)
        return entries

    def _collect_entries(self, rid: int, is_leaf: bool,
                         out: List[DualPoint]) -> None:
        if is_leaf:
            self._leaf_all_entries(self.cache.get(rid), out)
            return
        node = self.cache.get(rid)
        for idx in node.present_children():
            self._collect_entries(node.children[idx],
                                  node.child_is_leaf[idx], out)

    def _free_subtree(self, rid: int, is_leaf: bool) -> None:
        if is_leaf:
            leaf = self.cache.get(rid)
            self._free_leaf_chain(rid, leaf)
            return
        node = self.cache.get(rid)
        for idx in node.present_children():
            self._free_subtree(node.children[idx], node.child_is_leaf[idx])
        self.cache.free(rid)

    def destroy(self) -> None:
        """Free every record of this tree (used at index rotation) and
        detach its node cache from the shared buffer pool.

        The detach matters for long-running services: the pool outlives
        each rotating sub-index, and an undetached cache would stay on the
        pool's eviction-listener list -- leaking every decoded node object
        the retired tree ever cached and paying a dead callback per
        eviction forever after.
        """
        self._free_subtree(self._root_rid, self._root_is_leaf)
        self._root_rid = INVALID_RID
        self.count = 0
        self.cache.detach()

    def stats(self) -> QuadTreeStats:
        """Walk the tree and collect structural statistics."""
        stats = QuadTreeStats(entries=self.count)
        if self._root_rid == INVALID_RID:
            return stats
        self._collect_stats(self._root_rid, self._root_is_leaf, 0, stats)
        return stats

    def _collect_stats(self, rid: int, is_leaf: bool, depth: int,
                       stats: QuadTreeStats) -> None:
        stats.height = max(stats.height, depth + 1)
        if is_leaf:
            size = self.store.record_size_of(rid)
            ladder_idx = self._ladder_index[size]
            stats.leaves_by_size[size] = stats.leaves_by_size.get(size, 0) + 1
            stats.leaf_slots += self.leaf_capacities[ladder_idx]
            if ladder_idx == len(self.leaf_ladder) - 1:
                stats.large_leaves += 1
            elif ladder_idx == 0:
                stats.small_leaves += 1
            else:
                stats.mid_leaves += 1
            leaf = self.cache.get(rid)
            ext_rid = leaf.overflow
            while ext_rid != INVALID_RID:
                stats.extension_records += 1
                stats.leaf_slots += self.ext_capacity
                ext_rid = self.cache.get(ext_rid).overflow
            return
        stats.nonleaf_nodes += 1
        node = self.cache.get(rid)
        for idx in node.present_children():
            self._collect_stats(node.children[idx], node.child_is_leaf[idx],
                                depth + 1, stats)

    # ------------------------------------------------------------------ #
    # Invariant checking (crash-recovery verification)
    # ------------------------------------------------------------------ #

    def check(self, rids_out: Optional[set] = None) -> List[str]:
        """Walk the whole tree and verify its structural invariants;
        returns a list of human-readable violations (empty when sound).

        Verified per node: the record decodes to the node kind its
        parent advertises, levels increase by one along every path,
        each child's quad corner equals :meth:`_child_corner` of its
        parent's stored corner (the exact computation insert uses),
        every entry lies inside its leaf's quad, non-leaf ``size``
        fields equal their subtree's true entry count, overflow chains
        hang only off top-rung leaves at maximum depth, and no record
        is reachable twice.  The root total must equal ``self.count``.
        ``rids_out``, when given, receives every reachable record id so
        the index-level checker can compare against the record store's
        occupancy bitmap.
        """
        problems: List[str] = []
        if self._root_rid == INVALID_RID:
            if self.count != 0:
                problems.append(
                    f"destroyed tree still reports count={self.count}")
            return problems
        seen: set = set()
        total = self._check_node(self._root_rid, self._root_is_leaf, 0,
                                 self._origin(), self._origin(),
                                 seen, problems)
        if total != self.count:
            problems.append(
                f"tree.count is {self.count} but the walk found {total} "
                f"entries")
        if rids_out is not None:
            rids_out.update(seen)
        return problems

    def _corner_mismatch(self, stored: Tuple[float, ...],
                         expected: Tuple[float, ...],
                         sides: Tuple[float, ...]) -> bool:
        """True when a stored corner disagrees with its recomputed value.

        float64 trees compare exactly: corner arithmetic is pure float64
        and the codec round-trips doubles losslessly.  float32 trees
        compare within a tiny side-relative tolerance, because corners
        round to float32 at serialization and a reopened tree mixes
        rounded and unrounded parents in the recomputation; a *wrong*
        corner is off by at least a quarter side, orders of magnitude
        beyond the tolerance.
        """
        if not self.space.float32:
            return tuple(stored) != tuple(expected)
        return any(abs(s - e) > max(abs(side), 1.0) * 2.0 ** -12
                   for s, e, side in zip(stored, expected, sides))

    def _check_entry_in_quad(self, entry: DualPoint, leaf_level: int,
                             v_corner: Tuple[float, ...],
                             p_corner: Tuple[float, ...]) -> bool:
        """Weak containment: ``corner <= coord <= corner + side`` per
        axis (the closed upper bound tolerates boundary points and
        float32 corner rounding; a misplaced entry lands a whole quad
        away)."""
        sl_v, sl_p = self._child_sides(leaf_level)
        slack = 2.0 ** -12 if self.space.float32 else 0.0
        for i in range(self.d):
            pad_v = slack * max(abs(sl_v[i]), 1.0)
            pad_p = slack * max(abs(sl_p[i]), 1.0)
            if not (v_corner[i] - pad_v <= entry.v[i]
                    <= v_corner[i] + sl_v[i] + pad_v):
                return False
            if not (p_corner[i] - pad_p <= entry.p[i]
                    <= p_corner[i] + sl_p[i] + pad_p):
                return False
        return True

    def _check_node(self, rid: int, is_leaf: bool, level: int,
                    exp_v: Tuple[float, ...], exp_p: Tuple[float, ...],
                    seen: set, problems: List[str]) -> int:
        if rid in seen:
            problems.append(f"record {rid} is reachable twice")
            return 0
        seen.add(rid)
        try:
            node = self.cache.get(rid)
        except Exception as exc:
            problems.append(f"record {rid} is unreadable: {exc!r}")
            return 0
        expected_kind = LeafNode if is_leaf else NonLeafNode
        if not isinstance(node, expected_kind):
            problems.append(
                f"record {rid} decodes to {type(node).__name__} but its "
                f"parent says {expected_kind.__name__}")
            return 0
        if node.level != level:
            problems.append(
                f"record {rid} stores level {node.level}, expected {level}")
        sides = self._child_sides(level)
        if self._corner_mismatch(node.v_corner, exp_v, sides[0]) or \
                self._corner_mismatch(node.p_corner, exp_p, sides[1]):
            problems.append(
                f"record {rid} quad corner "
                f"({node.v_corner}, {node.p_corner}) disagrees with its "
                f"parent-derived corner ({exp_v}, {exp_p})")
        if is_leaf:
            return self._check_leaf(rid, node, level, seen, problems)
        return self._check_nonleaf(rid, node, level, seen, problems)

    def _check_leaf(self, rid: int, leaf: LeafNode, level: int,
                    seen: set, problems: List[str]) -> int:
        try:
            record_size = self.store.record_size_of(rid)
        except KeyError:
            record_size = None
        if record_size not in self._ladder_index:
            problems.append(
                f"leaf {rid} lives in record size {record_size}, not on "
                f"the leaf ladder {self.leaf_ladder}")
        else:
            capacity = self.leaf_capacities[self._ladder_index[record_size]]
            if len(leaf.entries) > capacity:
                problems.append(
                    f"leaf {rid} holds {len(leaf.entries)} entries, over "
                    f"its capacity of {capacity}")
        total = len(leaf.entries)
        entries = list(leaf.entries)
        if leaf.overflow != INVALID_RID:
            if record_size != self.large_bytes:
                problems.append(
                    f"leaf {rid} has an overflow chain but is not a "
                    f"top-rung ({self.large_bytes}-byte) leaf")
            if level < self.config.max_depth:
                problems.append(
                    f"leaf {rid} at level {level} has an overflow chain "
                    f"(only max-depth leaves may spill)")
            ext_rid = leaf.overflow
            while ext_rid != INVALID_RID:
                if ext_rid in seen:
                    problems.append(
                        f"extension record {ext_rid} is reachable twice "
                        f"(overflow cycle or shared chain)")
                    break
                seen.add(ext_rid)
                try:
                    ext = self.cache.get(ext_rid)
                except Exception as exc:
                    problems.append(
                        f"extension record {ext_rid} is unreadable: "
                        f"{exc!r}")
                    break
                if not isinstance(ext, LeafExtension):
                    problems.append(
                        f"record {ext_rid} on leaf {rid}'s overflow chain "
                        f"decodes to {type(ext).__name__}")
                    break
                if len(ext.entries) > self.ext_capacity:
                    problems.append(
                        f"extension {ext_rid} holds {len(ext.entries)} "
                        f"entries, over its capacity of "
                        f"{self.ext_capacity}")
                total += len(ext.entries)
                entries.extend(ext.entries)
                ext_rid = ext.overflow
        misplaced = sum(
            not self._check_entry_in_quad(entry, level, leaf.v_corner,
                                          leaf.p_corner)
            for entry in entries)
        if misplaced:
            problems.append(
                f"leaf {rid} holds {misplaced} entries outside its quad")
        return total

    def _check_nonleaf(self, rid: int, node: NonLeafNode, level: int,
                       seen: set, problems: List[str]) -> int:
        if level >= self.config.max_depth:
            problems.append(
                f"non-leaf {rid} sits at level {level}, at or below the "
                f"maximum depth {self.config.max_depth}")
            return 0
        try:
            record_size = self.store.record_size_of(rid)
        except KeyError:
            record_size = None
        if record_size != self.codec.nonleaf_record_size:
            problems.append(
                f"non-leaf {rid} lives in record size {record_size}, "
                f"expected {self.codec.nonleaf_record_size}")
        if len(node.children) != self.fanout or \
                len(node.child_is_leaf) != self.fanout:
            problems.append(
                f"non-leaf {rid} has {len(node.children)} child slots, "
                f"expected {self.fanout}")
            return 0
        total = 0
        for idx in node.present_children():
            child_v, child_p = self._child_corner(node, idx)
            total += self._check_node(node.children[idx],
                                      node.child_is_leaf[idx], level + 1,
                                      child_v, child_p, seen, problems)
        if node.size != total:
            problems.append(
                f"non-leaf {rid} stores size {node.size} but its subtree "
                f"holds {total} entries")
        return total
