"""The Hough-X style dual transform used by STRIPES (Section 4.1).

A predicted trajectory ``p(t') = p + v (t' - t)`` of an object moving in
``d`` dimensions becomes a point ``(V, P_ref)`` in ``2d`` dimensions:

* ``V_i = v_i + vmax_i`` shifts velocities into ``[0, 2 vmax_i]`` so
  negative velocities index cleanly;
* ``P_ref_i = p_i - v_i (t - t_ref) + vmax_i L`` is the position
  back-extrapolated to the index's reference time, shifted by
  ``vmax_i * L`` so the coordinate is non-negative for every entry whose
  update timestamp falls inside the index lifetime ``[t_ref, t_ref + L]``.

The inverse motion equation is ``p_i(t') = P_ref_i + (V_i - vmax_i)
(t' - t_ref) - vmax_i L``.

``float32`` mode rounds transformed coordinates to 4-byte floats, matching
the paper's storage layout (Section 5.1).  Rounding is applied at transform
time so that the insert and the later delete of the same entry compute
bit-identical coordinates and therefore descend identical quadtree paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.query.types import MovingObjectState, Vector


class DualPoint(NamedTuple):
    """A transformed entry: object id plus dual coordinates.

    A ``NamedTuple`` rather than a dataclass: millions of these are built
    when thrashed leaf pages are re-deserialized, and tuple construction is
    measurably cheaper.
    """

    oid: int
    v: Tuple[float, ...]       # transformed velocities, in [0, 2 vmax_i]
    p: Tuple[float, ...]       # transformed reference positions

    @property
    def d(self) -> int:
        return len(self.v)


class DualBatch(NamedTuple):
    """A batch of transformed entries in columnar form.

    ``vs``/``ps`` are ``(n, d)`` float64 arrays holding exactly the values
    the scalar :meth:`DualSpace.to_dual` path would compute (float32 mode
    rounds before widening, and float32-to-float64 widening is exact), so
    the write path can classify quads with numpy kernels and still store
    bit-identical coordinates.
    """

    oids: np.ndarray           # (n,)  int64
    vs: np.ndarray             # (n, d) float64
    ps: np.ndarray             # (n, d) float64

    def __len__(self) -> int:
        return self.oids.shape[0]

    def points(self) -> List[DualPoint]:
        """Materialize the batch as ``DualPoint``s for leaf storage.

        ``ndarray.tolist()`` converts float64 lanes to Python floats
        exactly, so the tuples equal what ``to_dual`` returns per object.
        """
        oids = self.oids.tolist()
        vs = self.vs.tolist()
        ps = self.ps.tolist()
        return [DualPoint(oid, tuple(v), tuple(p))
                for oid, v, p in zip(oids, vs, ps)]


@dataclass(frozen=True)
class DualSpace:
    """Geometry of one sub-index's dual space.

    ``vmax``/``pmax`` bound the native space (Table 1), ``lifetime`` is the
    index lifetime ``L``, and ``t_ref`` is this sub-index's reference time.
    """

    vmax: Tuple[float, ...]
    pmax: Tuple[float, ...]
    lifetime: float
    t_ref: float = 0.0
    float32: bool = False

    def __post_init__(self) -> None:
        if len(self.vmax) != len(self.pmax):
            raise ValueError(
                f"vmax is {len(self.vmax)}-d but pmax is {len(self.pmax)}-d")
        if any(v <= 0 for v in self.vmax):
            raise ValueError(f"vmax components must be positive: {self.vmax}")
        if any(p <= 0 for p in self.pmax):
            raise ValueError(f"pmax components must be positive: {self.pmax}")
        if self.lifetime <= 0:
            raise ValueError(f"lifetime must be positive: {self.lifetime}")

    @property
    def d(self) -> int:
        """Native-space dimensionality."""
        return len(self.vmax)

    @property
    def velocity_extent(self) -> Tuple[float, ...]:
        """Transformed velocity range upper bound per plane: ``2 vmax_i``."""
        return tuple(2.0 * v for v in self.vmax)

    @property
    def position_extent(self) -> Tuple[float, ...]:
        """Transformed position range upper bound per plane:
        ``pmax_i + 2 vmax_i L``."""
        return tuple(p + 2.0 * v * self.lifetime
                     for p, v in zip(self.pmax, self.vmax))

    def covers_time(self, t: float) -> bool:
        """True when an update at time ``t`` belongs to this sub-index's
        lifetime window ``[t_ref, t_ref + L)``."""
        return self.t_ref <= t < self.t_ref + self.lifetime

    # ------------------------------------------------------------------ #
    # Transform
    # ------------------------------------------------------------------ #

    def to_dual(self, obj: MovingObjectState) -> DualPoint:
        """Transform a moving-object state into its dual point.

        Raises ``ValueError`` when the state violates the space bounds
        (|v| > vmax or position outside [0, pmax]) or when its timestamp
        falls outside this index's lifetime window -- both indicate the
        caller routed the update to the wrong sub-index.
        """
        if obj.d != self.d:
            raise ValueError(f"object is {obj.d}-d, space is {self.d}-d")
        dt = obj.t - self.t_ref
        if not -1e-9 <= dt <= self.lifetime + 1e-9:
            raise ValueError(
                f"update time {obj.t} outside index lifetime window "
                f"[{self.t_ref}, {self.t_ref + self.lifetime}]"
            )
        v_dual = []
        p_dual = []
        for i in range(self.d):
            if abs(obj.vel[i]) > self.vmax[i] + 1e-9:
                raise ValueError(
                    f"object {obj.oid}: |velocity[{i}]| = {abs(obj.vel[i])} "
                    f"exceeds vmax {self.vmax[i]}"
                )
            if not -1e-6 <= obj.pos[i] <= self.pmax[i] + 1e-6:
                raise ValueError(
                    f"object {obj.oid}: position[{i}] = {obj.pos[i]} outside "
                    f"[0, {self.pmax[i]}]"
                )
            v_dual.append(obj.vel[i] + self.vmax[i])
            p_dual.append(obj.pos[i] - obj.vel[i] * dt
                          + self.vmax[i] * self.lifetime)
        if self.float32:
            v_dual = [float(np.float32(x)) for x in v_dual]
            p_dual = [float(np.float32(x)) for x in p_dual]
        return DualPoint(obj.oid, tuple(v_dual), tuple(p_dual))

    def to_dual_batch(self, objs: Sequence[MovingObjectState]) -> DualBatch:
        """Transform many states at once; columnar twin of :meth:`to_dual`.

        The arithmetic mirrors the scalar path operation for operation —
        ``(pos - vel * dt) + vmax * L`` in float64, with float32 mode
        rounding through ``astype(float32)`` (the same IEEE round-to-nearest
        as ``np.float32(x)``) before exact widening back to float64 — so
        every lane is bit-identical to ``to_dual`` of the same object.

        Validation applies the same tolerances as the scalar path; on any
        violation the *first* offending object (in input order) is re-run
        through ``to_dual`` so the raised ``ValueError`` is identical.
        """
        n = len(objs)
        d = self.d
        if n == 0:
            empty = np.empty((0, d), dtype=np.float64)
            return DualBatch(np.empty(0, dtype=np.int64), empty, empty.copy())
        for obj in objs:
            if obj.d != d:
                raise ValueError(f"object is {obj.d}-d, space is {d}-d")
        oids = np.fromiter((o.oid for o in objs), dtype=np.int64, count=n)
        ts = np.fromiter((o.t for o in objs), dtype=np.float64, count=n)
        vels = np.array([o.vel for o in objs], dtype=np.float64)
        poss = np.array([o.pos for o in objs], dtype=np.float64)
        vmax = np.array(self.vmax, dtype=np.float64)
        pmax = np.array(self.pmax, dtype=np.float64)
        dts = ts - self.t_ref
        bad = ~((dts >= -1e-9) & (dts <= self.lifetime + 1e-9))
        bad |= (np.abs(vels) > vmax + 1e-9).any(axis=1)
        bad |= ~((poss >= -1e-6) & (poss <= pmax + 1e-6)).all(axis=1)
        if bad.any():
            self.to_dual(objs[int(np.argmax(bad))])
            raise AssertionError("scalar validation accepted a state the "
                                 "batch validation rejected")
        vs = vels + vmax
        ps = poss - vels * dts[:, None] + vmax * self.lifetime
        if self.float32:
            vs = vs.astype(np.float32).astype(np.float64)
            ps = ps.astype(np.float32).astype(np.float64)
        return DualBatch(oids, vs, ps)

    def from_dual(self, point: DualPoint, t: float) -> MovingObjectState:
        """Reconstruct the (predicted) object state at time ``t`` from its
        dual point.  Inverse of :meth:`to_dual` up to float rounding."""
        pos = []
        vel = []
        for i in range(self.d):
            v = point.v[i] - self.vmax[i]
            vel.append(v)
            pos.append(point.p[i] + v * (t - self.t_ref)
                       - self.vmax[i] * self.lifetime)
        return MovingObjectState(point.oid, tuple(pos), tuple(vel), t)

    def position_at(self, point: DualPoint, t: float) -> Vector:
        """Native-space predicted position of a dual point at time ``t``."""
        return tuple(
            point.p[i] + (point.v[i] - self.vmax[i]) * (t - self.t_ref)
            - self.vmax[i] * self.lifetime
            for i in range(self.d)
        )
