"""STRIPES quadtree node layouts and their binary codec.

Three record types live in the record store (Section 4.2):

* **Non-leaf nodes** -- small records (the paper packs ~11 per 4 KB page):
  level, grid lower corner, ``4^d`` child record ids, an is-leaf bitmask,
  and the subtree entry count (``size``).
* **Leaf nodes** -- *small* (half-page) or *large* (full-page) records
  holding dual points.  A leaf carries an ``overflow`` record id used only
  when a maximum-depth leaf must hold more entries than fit in one record
  (e.g. many coincident points); ``-1`` otherwise.
* **Leaf extensions** -- continuation records for such overflow chains.

Side lengths are not stored: a node at level ``k`` spans
``extent / 2**k`` per axis (the root is level 0), so the grid tuple
``(V', P', SL^V, SL^P)`` of Section 4.2 is reconstructed from the corner
and the level.

All integers are little-endian; coordinates are 8-byte floats by default or
4-byte floats in the paper-faithful ``float32`` layout.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple, Union

import numpy as np

from repro.core.dual import DualPoint

INVALID_RID = -1

_PACK_BATCH_MIN = 8
"""Entry count above which leaf serialization packs the whole array with
one pre-compiled ``struct`` call instead of a per-entry pack + join."""

_TAG_NONLEAF = 0
_TAG_LEAF = 1
_TAG_EXTENSION = 2


@dataclass
class NonLeafNode:
    """Interior quadtree node: fanout ``4^d`` children."""

    level: int
    v_corner: Tuple[float, ...]
    p_corner: Tuple[float, ...]
    children: List[int]            # record ids, INVALID_RID when absent
    child_is_leaf: List[bool]
    size: int                      # entries stored in the whole subtree

    @property
    def is_leaf(self) -> bool:
        return False

    def present_children(self) -> List[int]:
        """Indices of existing children."""
        return [i for i, rid in enumerate(self.children) if rid != INVALID_RID]


class LeafSoA:
    """Structure-of-arrays view of one leaf record's entries.

    ``oids`` is an ``int64`` column; ``vs``/``ps`` are ``(n, d)`` coordinate
    columns.  The tree builds them as ``float64`` even in the
    paper-faithful float32 layout: dual coordinates are rounded at
    transform time and widen exactly, so the column holds the same values
    the scalar path compares without a per-query upcast copy.  The
    vectorized query kernels
    (:meth:`repro.core.query_region.QueryRegion2D.contains_batch`) consume
    these columns instead of iterating :class:`DualPoint` objects.
    """

    __slots__ = ("oids", "vs", "ps")

    def __init__(self, oids: np.ndarray, vs: np.ndarray, ps: np.ndarray):
        self.oids = oids
        self.vs = vs
        self.ps = ps

    def __len__(self) -> int:
        return len(self.oids)


def _build_soa(entries: List[DualPoint], d: int, dtype) -> LeafSoA:
    n = len(entries)
    if n == 0:
        return LeafSoA(np.empty(0, dtype=np.int64),
                       np.empty((0, d), dtype=dtype),
                       np.empty((0, d), dtype=dtype))
    oids = np.fromiter((e.oid for e in entries), dtype=np.int64, count=n)
    vs = np.array([e.v for e in entries], dtype=dtype)
    ps = np.array([e.p for e in entries], dtype=dtype)
    return LeafSoA(oids, vs, ps)


class _SoACacheMixin:
    """Lazily built, self-invalidating SoA view for leaf-like records.

    The cached view is valid while the record's ``entries`` list is the
    *same object* at the *same length*: every mutation path either
    replaces the list or appends to it.  Holding a reference to the list
    (not just its ``id``) makes the identity test immune to CPython id
    reuse after garbage collection.
    """

    # Plain class attributes, not dataclass fields: they never serialize,
    # never compare, and start unset on every deserialized record.
    _soa = None
    _soa_entries = None
    _soa_len = -1

    def soa(self, d: int, dtype) -> LeafSoA:
        entries = self.entries
        if (self._soa is not None and self._soa_entries is entries
                and self._soa_len == len(entries)):
            return self._soa
        view = _build_soa(entries, d, dtype)
        self._soa = view
        self._soa_entries = entries
        self._soa_len = len(entries)
        return view


@dataclass
class LeafNode(_SoACacheMixin):
    """Leaf bucket of dual points (plus an optional overflow chain)."""

    level: int
    v_corner: Tuple[float, ...]
    p_corner: Tuple[float, ...]
    entries: List[DualPoint] = field(default_factory=list)
    overflow: int = INVALID_RID

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def size(self) -> int:
        """Entries in this record only (not the overflow chain)."""
        return len(self.entries)


@dataclass
class LeafExtension(_SoACacheMixin):
    """Continuation record of an overflowing maximum-depth leaf."""

    entries: List[DualPoint] = field(default_factory=list)
    overflow: int = INVALID_RID


Node = Union[NonLeafNode, LeafNode, LeafExtension]


class NodeCodec:
    """Serialize/deserialize quadtree nodes for a given dimensionality and
    coordinate width.  One codec instance serves one quadtree."""

    def __init__(self, d: int, float32: bool = False):
        if d < 1:
            raise ValueError("dimensionality must be >= 1")
        self.d = d
        self.fanout = 4 ** d
        self.float32 = float32
        coord = "f" if float32 else "d"
        self.coord_bytes = 4 if float32 else 8
        # Non-leaf: tag, level, size, corners (2d coords), children
        # (fanout i64), is-leaf bitmask.
        self._isleaf_bytes = (self.fanout + 7) // 8
        self._nonleaf = struct.Struct(
            f"<BHI{2 * d}{coord}{self.fanout}q{self._isleaf_bytes}s")
        # Leaf header: tag, level, count, overflow rid, corners.
        self._leaf_header = struct.Struct(f"<BHHq{2 * d}{coord}")
        # Extension header: tag, count, overflow rid.
        self._ext_header = struct.Struct("<BHq")
        self._entry = struct.Struct(f"<q{2 * d}{coord}")
        # Batched entry packing: one pre-compiled Struct covering n entries
        # replaces n pack calls + a join.  Keyed by n, which is bounded by
        # the leaf/extension capacities, so the memo stays small.
        self._entry_fmt = f"q{2 * d}{coord}"
        self._entry_batch: dict[int, struct.Struct] = {}

    # ------------------------------------------------------------------ #
    # Sizes and capacities
    # ------------------------------------------------------------------ #

    @property
    def nonleaf_record_size(self) -> int:
        """Exact byte size of a serialized non-leaf node."""
        return self._nonleaf.size

    @property
    def entry_size(self) -> int:
        """Bytes per leaf entry (oid + 2d coordinates)."""
        return self._entry.size

    def leaf_capacity(self, record_size: int) -> int:
        """Entries that fit in a leaf record of ``record_size`` bytes."""
        usable = record_size - self._leaf_header.size
        if usable < self.entry_size:
            raise ValueError(
                f"leaf record of {record_size} bytes cannot hold any entry")
        return usable // self.entry_size

    def extension_capacity(self, record_size: int) -> int:
        """Entries that fit in an extension record."""
        usable = record_size - self._ext_header.size
        return usable // self.entry_size

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def serialize(self, node: Node) -> bytes:
        if isinstance(node, NonLeafNode):
            return self._serialize_nonleaf(node)
        if isinstance(node, LeafNode):
            return self._serialize_leaf(node)
        if isinstance(node, LeafExtension):
            return self._serialize_extension(node)
        raise TypeError(f"cannot serialize {type(node).__name__}")

    def deserialize(self, raw: bytes) -> Node:
        tag = raw[0]
        if tag == _TAG_NONLEAF:
            return self._deserialize_nonleaf(raw)
        if tag == _TAG_LEAF:
            return self._deserialize_leaf(raw)
        if tag == _TAG_EXTENSION:
            return self._deserialize_extension(raw)
        raise ValueError(f"unknown node tag {tag}")

    def _serialize_nonleaf(self, node: NonLeafNode) -> bytes:
        if len(node.children) != self.fanout:
            raise ValueError(
                f"non-leaf has {len(node.children)} child slots, expected "
                f"{self.fanout}")
        mask = bytearray(self._isleaf_bytes)
        for i, leaf_flag in enumerate(node.child_is_leaf):
            if leaf_flag:
                mask[i >> 3] |= 1 << (i & 7)
        return self._nonleaf.pack(
            _TAG_NONLEAF, node.level, node.size,
            *node.v_corner, *node.p_corner,
            *node.children, bytes(mask))

    def _deserialize_nonleaf(self, raw: bytes) -> NonLeafNode:
        parts = self._nonleaf.unpack(raw[: self._nonleaf.size])
        _, level, size = parts[0], parts[1], parts[2]
        offset = 3
        v_corner = tuple(parts[offset: offset + self.d])
        p_corner = tuple(parts[offset + self.d: offset + 2 * self.d])
        offset += 2 * self.d
        children = list(parts[offset: offset + self.fanout])
        mask = parts[offset + self.fanout]
        child_is_leaf = [bool(mask[i >> 3] & (1 << (i & 7)))
                         for i in range(self.fanout)]
        return NonLeafNode(level, v_corner, p_corner, children,
                           child_is_leaf, size)

    def _pack_entries(self, entries: List[DualPoint]) -> bytes:
        n = len(entries)
        if n < _PACK_BATCH_MIN:
            return b"".join(
                self._entry.pack(e.oid, *e.v, *e.p) for e in entries)
        st = self._entry_batch.get(n)
        if st is None:
            st = struct.Struct("<" + self._entry_fmt * n)
            self._entry_batch[n] = st
        flat: List = []
        append = flat.append
        extend = flat.extend
        for e in entries:
            append(e.oid)
            extend(e.v)
            extend(e.p)
        # One pack call emits the identical bytes the per-entry join
        # would: same little-endian layout, same double->float conversion
        # per coordinate in the float32 layout.
        return st.pack(*flat)

    def _unpack_entries(self, raw: bytes, offset: int,
                        count: int) -> List[DualPoint]:
        d = self.d
        end = offset + count * self._entry.size
        return [
            DualPoint(parts[0], parts[1: 1 + d], parts[1 + d: 1 + 2 * d])
            for parts in self._entry.iter_unpack(raw[offset:end])
        ]

    def _serialize_leaf(self, node: LeafNode) -> bytes:
        header = self._leaf_header.pack(
            _TAG_LEAF, node.level, len(node.entries), node.overflow,
            *node.v_corner, *node.p_corner)
        return header + self._pack_entries(node.entries)

    def _deserialize_leaf(self, raw: bytes) -> LeafNode:
        parts = self._leaf_header.unpack(raw[: self._leaf_header.size])
        _, level, count, overflow = parts[:4]
        v_corner = tuple(parts[4: 4 + self.d])
        p_corner = tuple(parts[4 + self.d: 4 + 2 * self.d])
        entries = self._unpack_entries(raw, self._leaf_header.size, count)
        return LeafNode(level, v_corner, p_corner, entries, overflow)

    def _serialize_extension(self, node: LeafExtension) -> bytes:
        header = self._ext_header.pack(
            _TAG_EXTENSION, len(node.entries), node.overflow)
        return header + self._pack_entries(node.entries)

    def _deserialize_extension(self, raw: bytes) -> LeafExtension:
        _, count, overflow = self._ext_header.unpack(
            raw[: self._ext_header.size])
        entries = self._unpack_entries(raw, self._ext_header.size, count)
        return LeafExtension(entries, overflow)
