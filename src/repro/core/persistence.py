"""Checkpoint and reopen on-disk STRIPES indexes, crash-consistently.

The page file holds every node, but three pieces of state live only in
memory: the index configuration, the per-window quadtree roots, and the
record store's space map (which page holds which record size, and how
full it is).  ``save_index`` writes that state as a JSON *metadata
sidecar* next to the page file; ``load_index`` reopens the pair::

    index = StripesIndex(config, pool_over_on_disk_pagefile)
    ... updates ...
    save_index(index, "fleet.stripes.meta", journal_path="fleet.jrnl")

    # later, in another process
    index = load_index("fleet.stripes", "fleet.stripes.meta",
                       pool_pages=256, journal_path="fleet.jrnl")

The sidecar is versioned and validated against the page file on load
(page size, page count); a mismatch raises rather than corrupting.

Crash consistency (the atomic, ``journal_path``-bearing mode)
-------------------------------------------------------------
A checkpoint must be *atomic*: after a crash at any instant,
:func:`load_index` reopens exactly the last checkpoint whose sidecar
rename completed -- never a mix.  Three mechanisms cooperate (full
analysis in ``docs/DURABILITY.md``):

1. Every checkpoint gets a monotonically increasing ``checkpoint_id``,
   stored in the sidecar *and* in the redo journal.  The sidecar rename
   is the commit point.
2. ``save_index`` runs: write the redo journal (all dirty page images,
   tagged with the new id, fsynced) -> fsync the page file (making every
   eviction write-back since the last checkpoint durable) -> write +
   fsync the sidecar ``.tmp`` -> ``os.replace`` -> fsync the directory
   (COMMIT) -> flush the dirty pages and fsync -> drop the undo journal
   -> drop the redo journal.  A crash before the rename recovers to the
   *old* checkpoint; after it, the committed redo journal replays the
   new one's pages.
3. Between checkpoints, dirty-page evictions overwrite committed page
   images.  ``load_index`` arms the buffer pool with an *undo journal*
   write guard (:func:`repro.storage.journal.attach_undo_journal`): the
   page's committed image is made durable in the undo journal before
   the eviction may overwrite it, so recovery can roll the file back.

The redo journal is written even when no page is dirty: a non-empty
undo journal must still be fenced off -- once the new sidecar commits,
only a journal tagged with the new id tells recovery *not* to apply
the undo images over it.

Without ``journal_path`` the checkpoint is still atomic *as a sidecar*
(tmp + fsync + rename + directory fsync) but a crash mid-flush or
between an eviction and the rename can leave the page file ahead of the
sidecar; use the journal mode whenever crash recovery matters.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.quadtree import (DualQuadTree, QuadTreeConfig,
                                 QuadTreeCounters)
from repro.core.stripes import StripesConfig, StripesIndex
from repro.storage.buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.faults import FAILPOINTS
from repro.storage.journal import (attach_undo_journal, recover_checkpoint,
                                   write_journal)
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import OnDiskPageFile, fsync_dir

FORMAT_VERSION = 2
_READABLE_FORMATS = (1, 2)  # version 1 predates checkpoint ids


def default_undo_path(journal_path: str | os.PathLike) -> str:
    """The undo journal that rides along with ``journal_path``."""
    return os.fspath(journal_path) + ".undo"


def _build_meta(index: StripesIndex, checkpoint_id: int) -> dict:
    config = index.config
    store = index.store
    return {
        "format": FORMAT_VERSION,
        "checkpoint_id": checkpoint_id,
        "page_size": index.pool.pagefile.page_size,
        "capacity_pages": index.pool.pagefile.capacity_pages,
        "config": {
            "vmax": list(config.vmax),
            "pmax": list(config.pmax),
            "lifetime": config.lifetime,
            "float32": config.float32,
            "quadtree": {
                "small_leaf_bytes": config.quadtree.small_leaf_bytes,
                "large_leaf_bytes": config.quadtree.large_leaf_bytes,
                "max_depth": config.quadtree.max_depth,
                "collapse_capacity": config.quadtree.collapse_capacity,
                "use_small_leaves": config.quadtree.use_small_leaves,
                "quad_pruning": config.quadtree.quad_pruning,
                "leaf_size_ladder":
                    list(config.quadtree.leaf_size_ladder)
                    if config.quadtree.leaf_size_ladder is not None
                    else None,
            },
        },
        "windows": [
            {
                "window": window,
                "root_rid": tree._root_rid,
                "root_is_leaf": tree._root_is_leaf,
                "count": tree.count,
            }
            for window, tree in sorted(index._trees.items())
        ],
        # Space map: page id -> (record size, occupied slots).
        "pages": [
            [page_id, cls.record_size, occupied]
            for page_id, (cls, occupied) in sorted(store._page_meta.items())
        ],
    }


def _write_sidecar(meta: dict, meta_path: str | os.PathLike) -> None:
    """Atomically (and durably) replace the sidecar with ``meta``."""
    meta_path = os.fspath(meta_path)
    tmp_path = meta_path + ".tmp"
    FAILPOINTS.hit("checkpoint.before_sidecar")
    with open(tmp_path, "w") as fh:
        json.dump(meta, fh)
        fh.flush()
        # fsync the tmp file *before* the rename: an unsynced rename can
        # commit a zero-length sidecar on some filesystems.
        os.fsync(fh.fileno())
    FAILPOINTS.hit("checkpoint.sidecar_tmp")
    os.replace(tmp_path, meta_path)
    # The rename itself is only durable once the directory is synced.
    fsync_dir(os.path.dirname(os.path.abspath(meta_path)))
    FAILPOINTS.hit("checkpoint.sidecar_committed")


def save_index(index: StripesIndex, meta_path: str | os.PathLike,
               journal_path: Optional[str | os.PathLike] = None,
               undo_path: Optional[str | os.PathLike] = None) -> None:
    """Checkpoint the index: flush its pages, write its sidecar.

    With ``journal_path`` the checkpoint is *crash-atomic* (see the
    module docstring for the write ordering and why each fsync exists).
    Pass the same paths to :func:`load_index` so leftover journals are
    resolved on reopen.  ``undo_path`` defaults to
    ``journal_path + ".undo"``.

    On success ``index.checkpoint_id`` has advanced by one; on an
    exception partway through, the on-disk state is still recoverable
    to whichever checkpoint last committed.
    """
    pool = index.pool
    if journal_path is None:
        # Sidecar-atomic only: fine for clean shutdowns and tests, not
        # fully crash-safe (see module docstring).
        pool.flush_all()
        pool.pagefile.sync()
        checkpoint_id = index.checkpoint_id + 1
        _write_sidecar(_build_meta(index, checkpoint_id), meta_path)
        index.checkpoint_id = checkpoint_id
        undo = getattr(pool, "undo_journal", None)
        if undo is not None:
            undo.reset()
        return

    if undo_path is None:
        undo_path = default_undo_path(journal_path)
    checkpoint_id = index.checkpoint_id + 1
    # 1. Redo journal: the full dirty set, fenced to the new checkpoint.
    #    Written even when empty -- its id is what tells recovery the
    #    undo journal is obsolete once the sidecar commits.
    write_journal(journal_path, pool.dirty_page_images(),
                  pool.pagefile.page_size, checkpoint_id=checkpoint_id)
    # 2. Make every eviction write-back since the last checkpoint
    #    durable.  Without this, a post-commit crash could lose an
    #    unsynced eviction whose page is *not* in the redo journal
    #    (it is not dirty any more), leaving a hole in the new
    #    checkpoint.
    pool.pagefile.sync()
    FAILPOINTS.hit("checkpoint.presync")
    # 3. COMMIT: atomically replace the sidecar.
    _write_sidecar(_build_meta(index, checkpoint_id), meta_path)
    index.checkpoint_id = checkpoint_id
    # 4. Flush the dirty pages; every write here is covered by the redo
    #    journal, so the undo guard is suspended.
    with pool.unguarded():
        pool.flush_all()
    pool.pagefile.sync()
    FAILPOINTS.hit("checkpoint.flushed")
    # 5. Drop the undo journal FIRST: were the redo removed first and a
    #    crash hit, the next open would find no redo and apply the undo
    #    images over the committed checkpoint.
    undo = getattr(pool, "undo_journal", None)
    if undo is not None:
        undo.reset()
    elif os.path.exists(undo_path):
        os.remove(undo_path)
        fsync_dir(os.path.dirname(os.path.abspath(os.fspath(undo_path))))
    FAILPOINTS.hit("checkpoint.undo_dropped")
    if undo is None:
        # First atomic checkpoint on this pool: from here on there IS a
        # committed state to protect, so arm the eviction write guard.
        attach_undo_journal(pool, undo_path)
    # 6. The checkpoint is fully materialised; retire the redo journal.
    os.remove(journal_path)
    fsync_dir(os.path.dirname(os.path.abspath(os.fspath(journal_path))))
    FAILPOINTS.hit("checkpoint.done")


def load_index(pagefile_path: str | os.PathLike,
               meta_path: str | os.PathLike,
               pool_pages: int = DEFAULT_POOL_PAGES,
               pool: Optional[BufferPool] = None,
               journal_path: Optional[str | os.PathLike] = None,
               undo_path: Optional[str | os.PathLike] = None
               ) -> StripesIndex:
    """Reopen a checkpointed index from its page file and sidecar.

    When ``journal_path`` is given, leftover redo/undo journals from a
    crash are resolved first
    (:func:`repro.storage.journal.recover_checkpoint`), the page file is
    rolled forward or back to the exact state of the sidecar's
    checkpoint, and the pool is re-armed with the undo write guard so
    subsequent evictions stay recoverable.

    A caller-supplied ``pool`` must be empty: recovery rewrites pages
    underneath it, and any resident frame would keep serving the
    pre-recovery bytes (and could even flush them back, corrupting the
    recovered file).
    """
    with open(meta_path) as fh:
        meta = json.load(fh)
    if meta.get("format") not in _READABLE_FORMATS:
        raise ValueError(
            f"unsupported checkpoint format {meta.get('format')!r} "
            f"(this build reads versions {_READABLE_FORMATS})")
    # Version-1 sidecars predate checkpoint ids; None tells recovery to
    # replay any committed journal unconditionally (the legacy rule).
    checkpoint_id = meta.get("checkpoint_id")
    if pool is None:
        pagefile = OnDiskPageFile(pagefile_path,
                                  page_size=meta["page_size"])
        pool = BufferPool(pagefile, capacity=pool_pages)
    elif pool.num_frames:
        raise ValueError(
            f"caller-supplied pool already holds {pool.num_frames} "
            f"resident pages; recovery must start from an empty pool "
            f"(stale frames would shadow -- or overwrite -- recovered "
            f"pages)")
    if journal_path is not None:
        if undo_path is None:
            undo_path = default_undo_path(journal_path)
        recover_checkpoint(pool.pagefile, journal_path, undo_path,
                           expected_checkpoint_id=checkpoint_id)
    if pool.pagefile.page_size != meta["page_size"]:
        raise ValueError(
            f"page size mismatch: checkpoint says {meta['page_size']}, "
            f"page file has {pool.pagefile.page_size}")
    if pool.pagefile.capacity_pages < meta["capacity_pages"]:
        raise ValueError(
            f"page file is truncated: checkpoint covers "
            f"{meta['capacity_pages']} pages, file has "
            f"{pool.pagefile.capacity_pages}")

    quadtree_meta = meta["config"]["quadtree"]
    ladder = quadtree_meta["leaf_size_ladder"]
    config = StripesConfig(
        vmax=tuple(meta["config"]["vmax"]),
        pmax=tuple(meta["config"]["pmax"]),
        lifetime=meta["config"]["lifetime"],
        float32=meta["config"]["float32"],
        quadtree=QuadTreeConfig(
            small_leaf_bytes=quadtree_meta["small_leaf_bytes"],
            large_leaf_bytes=quadtree_meta["large_leaf_bytes"],
            max_depth=quadtree_meta["max_depth"],
            collapse_capacity=quadtree_meta["collapse_capacity"],
            use_small_leaves=quadtree_meta["use_small_leaves"],
            quad_pruning=quadtree_meta["quad_pruning"],
            leaf_size_ladder=tuple(ladder) if ladder is not None else None,
        ),
    )

    index = StripesIndex.__new__(StripesIndex)
    index.config = config
    index.pool = pool
    index.store = RecordStore(pool)
    index.checkpoint_id = checkpoint_id if checkpoint_id is not None else 0
    index.rotations = 0
    index.pages_reclaimed = 0
    index.tracer = None
    index._retired_counters = QuadTreeCounters()
    index._retired_cache_hits = 0
    index._retired_cache_misses = 0
    _restore_space_map(index.store, meta["pages"])
    index._trees = {}
    from repro.core.dual import DualSpace
    for window_meta in meta["windows"]:
        window = window_meta["window"]
        space = DualSpace(config.vmax, config.pmax, config.lifetime,
                          t_ref=window * config.lifetime,
                          float32=config.float32)
        tree = DualQuadTree(
            space, index.store, config.quadtree,
            root=(window_meta["root_rid"], window_meta["root_is_leaf"],
                  window_meta["count"]))
        index._trees[window] = tree
    if journal_path is not None:
        # Re-arm the eviction guard so the reopened index's own
        # between-checkpoint evictions are just as recoverable.
        attach_undo_journal(pool, undo_path)
    return index


def _restore_space_map(store: RecordStore, pages) -> None:
    """Rebuild the in-memory space map from the sidecar.

    Pages absent from the map were free at checkpoint time; their ids are
    re-registered with the page file's free list so they get reused.
    """
    live = set()
    for page_id, record_size, occupied in pages:
        cls = store.size_class(record_size)
        store._page_meta[page_id] = (cls, occupied)
        live.add(page_id)
        if occupied < cls.num_slots:
            store._add_space(record_size, page_id)
    already_free = set(store.pool.pagefile.free_page_ids())
    for page_id in range(store.pool.pagefile.capacity_pages):
        if page_id not in live and page_id not in already_free:
            store.pool.pagefile.free(page_id)
