"""Checkpoint and reopen on-disk STRIPES indexes.

The page file holds every node, but three pieces of state live only in
memory: the index configuration, the per-window quadtree roots, and the
record store's space map (which page holds which record size, and how
full it is).  ``save_index`` flushes all dirty pages and writes that
state as a JSON *metadata sidecar* next to the page file;
``load_index`` reopens the pair::

    index = StripesIndex(config, pool_over_on_disk_pagefile)
    ... updates ...
    save_index(index, "fleet.stripes.meta")

    # later, in another process
    index = load_index("fleet.stripes", "fleet.stripes.meta",
                       pool_pages=256)

The sidecar is versioned and validated against the page file on load
(page size, page count); a mismatch raises rather than corrupting.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.quadtree import DualQuadTree, QuadTreeConfig
from repro.core.stripes import StripesConfig, StripesIndex
from repro.storage.buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.journal import atomic_flush, recover
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import OnDiskPageFile

FORMAT_VERSION = 1


def save_index(index: StripesIndex, meta_path: str | os.PathLike,
               journal_path: Optional[str | os.PathLike] = None) -> None:
    """Flush the index's pages and write its metadata sidecar.

    With ``journal_path`` the flush is *atomic*: dirty pages are first
    double-written to a committed journal (see
    :mod:`repro.storage.journal`), so a crash mid-flush cannot tear the
    checkpoint.  Pass the same path to :func:`load_index` so leftover
    journals are replayed.
    """
    if journal_path is not None:
        atomic_flush(index.pool, journal_path)
    index.flush()
    config = index.config
    store = index.store
    meta = {
        "format": FORMAT_VERSION,
        "page_size": index.pool.pagefile.page_size,
        "capacity_pages": index.pool.pagefile.capacity_pages,
        "config": {
            "vmax": list(config.vmax),
            "pmax": list(config.pmax),
            "lifetime": config.lifetime,
            "float32": config.float32,
            "quadtree": {
                "small_leaf_bytes": config.quadtree.small_leaf_bytes,
                "large_leaf_bytes": config.quadtree.large_leaf_bytes,
                "max_depth": config.quadtree.max_depth,
                "collapse_capacity": config.quadtree.collapse_capacity,
                "use_small_leaves": config.quadtree.use_small_leaves,
                "quad_pruning": config.quadtree.quad_pruning,
                "leaf_size_ladder":
                    list(config.quadtree.leaf_size_ladder)
                    if config.quadtree.leaf_size_ladder is not None
                    else None,
            },
        },
        "windows": [
            {
                "window": window,
                "root_rid": tree._root_rid,
                "root_is_leaf": tree._root_is_leaf,
                "count": tree.count,
            }
            for window, tree in sorted(index._trees.items())
        ],
        # Space map: page id -> (record size, occupied slots).
        "pages": [
            [page_id, cls.record_size, occupied]
            for page_id, (cls, occupied) in sorted(store._page_meta.items())
        ],
    }
    tmp_path = os.fspath(meta_path) + ".tmp"
    with open(tmp_path, "w") as fh:
        json.dump(meta, fh)
    os.replace(tmp_path, meta_path)


def load_index(pagefile_path: str | os.PathLike,
               meta_path: str | os.PathLike,
               pool_pages: int = DEFAULT_POOL_PAGES,
               pool: Optional[BufferPool] = None,
               journal_path: Optional[str | os.PathLike] = None
               ) -> StripesIndex:
    """Reopen a checkpointed index from its page file and sidecar.

    When ``journal_path`` is given, a leftover committed checkpoint
    journal (from a crash mid-flush) is replayed into the page file
    before the index is attached.
    """
    with open(meta_path) as fh:
        meta = json.load(fh)
    if meta.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {meta.get('format')!r} "
            f"(this build reads version {FORMAT_VERSION})")
    if pool is None:
        pagefile = OnDiskPageFile(pagefile_path,
                                  page_size=meta["page_size"])
        pool = BufferPool(pagefile, capacity=pool_pages)
    if journal_path is not None:
        recover(pool.pagefile, journal_path)
    if pool.pagefile.page_size != meta["page_size"]:
        raise ValueError(
            f"page size mismatch: checkpoint says {meta['page_size']}, "
            f"page file has {pool.pagefile.page_size}")
    if pool.pagefile.capacity_pages < meta["capacity_pages"]:
        raise ValueError(
            f"page file is truncated: checkpoint covers "
            f"{meta['capacity_pages']} pages, file has "
            f"{pool.pagefile.capacity_pages}")

    quadtree_meta = meta["config"]["quadtree"]
    ladder = quadtree_meta["leaf_size_ladder"]
    config = StripesConfig(
        vmax=tuple(meta["config"]["vmax"]),
        pmax=tuple(meta["config"]["pmax"]),
        lifetime=meta["config"]["lifetime"],
        float32=meta["config"]["float32"],
        quadtree=QuadTreeConfig(
            small_leaf_bytes=quadtree_meta["small_leaf_bytes"],
            large_leaf_bytes=quadtree_meta["large_leaf_bytes"],
            max_depth=quadtree_meta["max_depth"],
            collapse_capacity=quadtree_meta["collapse_capacity"],
            use_small_leaves=quadtree_meta["use_small_leaves"],
            quad_pruning=quadtree_meta["quad_pruning"],
            leaf_size_ladder=tuple(ladder) if ladder is not None else None,
        ),
    )

    index = StripesIndex.__new__(StripesIndex)
    index.config = config
    index.pool = pool
    index.store = RecordStore(pool)
    _restore_space_map(index.store, meta["pages"])
    index._trees = {}
    from repro.core.dual import DualSpace
    for window_meta in meta["windows"]:
        window = window_meta["window"]
        space = DualSpace(config.vmax, config.pmax, config.lifetime,
                          t_ref=window * config.lifetime,
                          float32=config.float32)
        tree = DualQuadTree(
            space, index.store, config.quadtree,
            root=(window_meta["root_rid"], window_meta["root_is_leaf"],
                  window_meta["count"]))
        index._trees[window] = tree
    return index


def _restore_space_map(store: RecordStore, pages) -> None:
    """Rebuild the in-memory space map from the sidecar.

    Pages absent from the map were free at checkpoint time; their ids are
    re-registered with the page file's free list so they get reused.
    """
    live = set()
    for page_id, record_size, occupied in pages:
        cls = store.size_class(record_size)
        store._page_meta[page_id] = (cls, occupied)
        live.add(page_id)
        if occupied < cls.num_slots:
            store._add_space(record_size, page_id)
    for page_id in range(store.pool.pagefile.capacity_pages):
        if page_id not in live:
            store.pool.pagefile.free(page_id)
