"""STRIPES core: dual transform, dual-space query regions, the disk-based
bucket PR quadtree, and the two-index STRIPES front end.

Public entry point: :class:`repro.core.stripes.StripesIndex`.
"""

from repro.core.dual import DualSpace, DualPoint
from repro.core.query_region import QueryRegion2D, RelPos
from repro.core.quadtree import DualQuadTree, QuadTreeConfig
from repro.core.stripes import StripesConfig, StripesIndex

__all__ = [
    "DualSpace",
    "DualPoint",
    "QueryRegion2D",
    "RelPos",
    "DualQuadTree",
    "QuadTreeConfig",
    "StripesConfig",
    "StripesIndex",
]
