"""The TPR*-tree (Tao, Papadias & Sun, VLDB 2003) -- Section 3.2.

Two changes over the base TPR-tree:

* **ChoosePath**: instead of the greedy per-level choice, a priority queue
  ordered by accumulated deterioration cost explores partial root-to-node
  paths; because every enlargement increment is non-negative, the first
  target-level node popped has the globally minimal insertion cost
  (Figure 3 of the paper shows why the greedy choice can be arbitrarily
  bad).  The price is that the insertion *traverses multiple paths* down
  the tree -- the extra IOs the paper's evaluation attributes to the
  TPR*-tree.
* **Forced reinsertion** (PickWorst): on the first overflow per level of an
  insertion, the lambda = 30 % entries at the low end of the largest-extent
  sort are removed and reinserted; only if overflow recurs is the node
  split.  This is inherited from :class:`repro.tpr.tprtree.TPRTree` via
  ``use_forced_reinsert``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List

from repro.tpr.tpbr import TPBR
from repro.tpr.tprtree import TPRTree


class TPRStarTree(TPRTree):
    """TPR-tree with globally optimal ChoosePath and forced reinsertion."""

    use_forced_reinsert = True

    def _choose_path(self, box: TPBR, target_level: int) -> List[int]:
        """Best-first search over partial paths (ChoosePath).

        Each heap item carries the accumulated integrated-area enlargement
        ("deterioration") of the nodes along its path.  Expanding a node
        costs one page access; the search therefore reads nodes on several
        candidate paths, exactly the behaviour the paper measures.
        """
        tc, horizon = self._now, self.config.horizon
        tie = itertools.count()
        heap = [(0.0, next(tie), self._root, [self._root])]
        while heap:
            cost, _, rid, path = heapq.heappop(heap)
            self.counters.choosepath_pops += 1
            node = self.cache.get(rid)
            if node.level == target_level:
                return path
            for child in node.entries:
                union = TPBR.union_of([child.tpbr, box], tc)
                enlargement = (union.area_integral(tc, horizon)
                               - child.tpbr.area_integral(tc, horizon))
                heapq.heappush(
                    heap,
                    (cost + max(0.0, enlargement), next(tie), child.rid,
                     path + [child.rid]))
        raise RuntimeError(
            f"no node at level {target_level}; tree is inconsistent")
