"""Time-parameterized bounding rectangles (TPBRs).

A TPBR (Section 3.1, Figure 2) bounds a set of moving points for every
time ``t >= t0``: in dimension ``i`` the box spans::

    [lower_i + vlower_i (t - t0),  upper_i + vupper_i (t - t0)]

with ``vlower_i = min`` and ``vupper_i = max`` of the member velocities, so
the box is conservative forever and grows (never shrinks) with ``t``.

The TPR family steers its structure with *integrated* metrics
(``integral over [T, T+H] of M(t) dt`` where M is area, margin, or overlap
area -- Section 3.1).  Area and margin integrate in closed form (the
extents are linear in ``t``); pairwise overlap is piecewise polynomial and
is integrated numerically with Simpson's rule, which is plenty for ranking
candidate nodes.

``TPBR`` is a plain ``__slots__`` class rather than a dataclass: unions and
integrals run hundreds of times per TPR*-tree insertion, so construction
must stay cheap.  :meth:`validate` performs the invariant checks that a
dataclass would do in ``__post_init__``; tests call it after every
structural operation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.query.predicates import (
    intersect_intervals,
    linear_nonneg_interval,
)
from repro.query.types import MovingQuery


class TPBR:
    """A conservative moving bounding box referenced at time ``t0``."""

    __slots__ = ("t0", "lower", "upper", "vlower", "vupper")

    def __init__(self, t0: float, lower: Tuple[float, ...],
                 upper: Tuple[float, ...], vlower: Tuple[float, ...],
                 vupper: Tuple[float, ...]):
        self.t0 = t0
        self.lower = lower
        self.upper = upper
        self.vlower = vlower
        self.vupper = vupper

    @property
    def d(self) -> int:
        return len(self.lower)

    def validate(self) -> None:
        """Check structural invariants (lower <= upper in both position and
        velocity, consistent dimensionality).  Raises ``ValueError``."""
        d = len(self.lower)
        if not (len(self.upper) == len(self.vlower) == len(self.vupper) == d):
            raise ValueError("TPBR bound vectors have mismatched lengths")
        for i in range(d):
            if self.lower[i] > self.upper[i]:
                raise ValueError(
                    f"TPBR dimension {i}: lower {self.lower[i]} exceeds "
                    f"upper {self.upper[i]}")
            if self.vlower[i] > self.vupper[i]:
                raise ValueError(
                    f"TPBR dimension {i}: vlower {self.vlower[i]} exceeds "
                    f"vupper {self.vupper[i]}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TPBR):
            return NotImplemented
        return (self.t0 == other.t0 and self.lower == other.lower
                and self.upper == other.upper
                and self.vlower == other.vlower
                and self.vupper == other.vupper)

    def __hash__(self) -> int:
        return hash((self.t0, self.lower, self.upper, self.vlower,
                     self.vupper))

    def __repr__(self) -> str:
        return (f"TPBR(t0={self.t0}, lower={self.lower}, "
                f"upper={self.upper}, vlower={self.vlower}, "
                f"vupper={self.vupper})")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_point(cls, p0: Sequence[float], vel: Sequence[float],
                   t0: float) -> "TPBR":
        """Degenerate TPBR of one trajectory ``p(t) = p0 + vel * t``,
        referenced at ``t0``."""
        at_t0 = tuple(p + v * t0 for p, v in zip(p0, vel))
        vel_t = tuple(vel)
        return cls(t0, at_t0, at_t0, vel_t, vel_t)

    @classmethod
    def union_of(cls, boxes: Sequence["TPBR"], t0: float) -> "TPBR":
        """Tight union of ``boxes`` referenced at ``t0``; every box is
        extrapolated to ``t0`` first (``t0`` must not precede any member's
        reference time, or the extrapolation would not be conservative)."""
        if not boxes:
            raise ValueError("cannot union zero TPBRs")
        first = boxes[0]
        dt = t0 - first.t0
        lower = [l + v * dt for l, v in zip(first.lower, first.vlower)]
        upper = [u + v * dt for u, v in zip(first.upper, first.vupper)]
        vlower = list(first.vlower)
        vupper = list(first.vupper)
        d = len(lower)
        for box in boxes[1:]:
            dt = t0 - box.t0
            b_lower, b_upper = box.lower, box.upper
            b_vlower, b_vupper = box.vlower, box.vupper
            for i in range(d):
                lo = b_lower[i] + b_vlower[i] * dt
                if lo < lower[i]:
                    lower[i] = lo
                hi = b_upper[i] + b_vupper[i] * dt
                if hi > upper[i]:
                    upper[i] = hi
                if b_vlower[i] < vlower[i]:
                    vlower[i] = b_vlower[i]
                if b_vupper[i] > vupper[i]:
                    vupper[i] = b_vupper[i]
        return cls(t0, tuple(lower), tuple(upper), tuple(vlower),
                   tuple(vupper))

    # ------------------------------------------------------------------ #
    # Geometry over time
    # ------------------------------------------------------------------ #

    def bounds_at(self, t: float) -> Tuple[Tuple[float, ...],
                                           Tuple[float, ...]]:
        """Box bounds at time ``t`` (conservative for ``t >= t0``)."""
        dt = t - self.t0
        lo = tuple(l + v * dt for l, v in zip(self.lower, self.vlower))
        hi = tuple(u + v * dt for u, v in zip(self.upper, self.vupper))
        return lo, hi

    def rebased(self, t0: float) -> "TPBR":
        """The same moving box referenced at a later time ``t0``."""
        lo, hi = self.bounds_at(t0)
        return TPBR(t0, lo, hi, self.vlower, self.vupper)

    def contains_trajectory(self, p0: Sequence[float], vel: Sequence[float],
                            eps: float = 1e-7) -> bool:
        """Necessary test for membership of a trajectory inserted while this
        box was maintained: position at ``t0`` inside the box and velocity
        inside the velocity bounds (with a small float tolerance)."""
        t0 = self.t0
        for i in range(len(self.lower)):
            at_t0 = p0[i] + vel[i] * t0
            scale = 1.0 + abs(self.lower[i]) + abs(self.upper[i])
            if not (self.lower[i] - eps * scale <= at_t0
                    <= self.upper[i] + eps * scale):
                return False
            vscale = 1.0 + abs(self.vlower[i]) + abs(self.vupper[i])
            if not (self.vlower[i] - eps * vscale <= vel[i]
                    <= self.vupper[i] + eps * vscale):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Integrated metrics (Section 3.1)
    # ------------------------------------------------------------------ #

    def area_at(self, t: float) -> float:
        """Box volume at time ``t``."""
        dt = t - self.t0
        area = 1.0
        for i in range(len(self.lower)):
            area *= (self.upper[i] - self.lower[i]
                     + (self.vupper[i] - self.vlower[i]) * dt)
        return area

    def margin_at(self, t: float) -> float:
        """Sum of extents at time ``t`` (the R*-tree margin metric)."""
        dt = t - self.t0
        return sum(self.upper[i] - self.lower[i]
                   + (self.vupper[i] - self.vlower[i]) * dt
                   for i in range(len(self.lower)))

    def area_integral(self, t_start: float, horizon: float) -> float:
        """Closed-form ``integral over [t_start, t_start+H] of area(t) dt``.

        The area is a degree-``d`` polynomial of ``dt = t - t0``; its
        coefficients come from convolving the per-dimension linear extents.
        The two-dimensional case (every experiment in the paper) is
        unrolled.
        """
        a = t_start - self.t0
        b = a + horizon
        if len(self.lower) == 2:
            e0 = self.upper[0] - self.lower[0]
            r0 = self.vupper[0] - self.vlower[0]
            e1 = self.upper[1] - self.lower[1]
            r1 = self.vupper[1] - self.vlower[1]
            c0 = e0 * e1
            c1 = e0 * r1 + e1 * r0
            c2 = r0 * r1
            return (c0 * (b - a) + c1 * (b * b - a * a) * 0.5
                    + c2 * (b * b * b - a * a * a) / 3.0)
        coeffs = [1.0]  # coefficients of dt^k, low order first
        for i in range(len(self.lower)):
            e = self.upper[i] - self.lower[i]
            r = self.vupper[i] - self.vlower[i]
            nxt = [0.0] * (len(coeffs) + 1)
            for k, c in enumerate(coeffs):
                nxt[k] += c * e
                nxt[k + 1] += c * r
            coeffs = nxt
        total = 0.0
        for k, c in enumerate(coeffs):
            total += c * (b ** (k + 1) - a ** (k + 1)) / (k + 1)
        return total

    def margin_integral(self, t_start: float, horizon: float) -> float:
        """Closed-form integral of the margin over the horizon."""
        a = t_start - self.t0
        b = a + horizon
        e_sum = 0.0
        r_sum = 0.0
        for i in range(len(self.lower)):
            e_sum += self.upper[i] - self.lower[i]
            r_sum += self.vupper[i] - self.vlower[i]
        return e_sum * horizon + r_sum * (b * b - a * a) / 2.0

    def overlap_area_at(self, other: "TPBR", t: float) -> float:
        """Volume of the intersection of the two boxes at time ``t``."""
        dt1 = t - self.t0
        dt2 = t - other.t0
        area = 1.0
        for i in range(len(self.lower)):
            hi = min(self.upper[i] + self.vupper[i] * dt1,
                     other.upper[i] + other.vupper[i] * dt2)
            lo = max(self.lower[i] + self.vlower[i] * dt1,
                     other.lower[i] + other.vlower[i] * dt2)
            extent = hi - lo
            if extent <= 0.0:
                return 0.0
            area *= extent
        return area

    def overlap_integral(self, other: "TPBR", t_start: float,
                         horizon: float, samples: int = 8) -> float:
        """Numeric (composite Simpson) integral of the pairwise overlap
        area over the horizon.  The overlap is piecewise polynomial; this
        approximation only ranks split candidates, where sampling error is
        negligible against the differences between candidates."""
        if samples % 2:
            samples += 1
        h = horizon / samples
        total = self.overlap_area_at(other, t_start)
        total += self.overlap_area_at(other, t_start + horizon)
        for k in range(1, samples):
            weight = 4.0 if k % 2 else 2.0
            total += weight * self.overlap_area_at(other, t_start + k * h)
        return total * h / 3.0

    # ------------------------------------------------------------------ #
    # Query intersection
    # ------------------------------------------------------------------ #

    def intersects_query(self, query: MovingQuery) -> bool:
        """True when the moving box overlaps the moving query rectangle at
        some common instant inside the query's time range.  Conservative
        and exact for boxes (unlike points, the per-dimension common-time
        test is the correct pruning predicate for rectangles)."""
        t_low, t_high = query.t_low, query.t_high
        duration = t_high - t_low
        intervals = []
        for i in range(len(self.lower)):
            if duration > 0.0:
                ql_v = (query.low2[i] - query.low1[i]) / duration
                qh_v = (query.high2[i] - query.high1[i]) / duration
            else:
                ql_v = qh_v = 0.0
            ql0 = query.low1[i] - ql_v * t_low
            qh0 = query.high1[i] - qh_v * t_low
            # Box edges as absolute-time lines.
            lo0 = self.lower[i] - self.vlower[i] * self.t0
            hi0 = self.upper[i] - self.vupper[i] * self.t0
            # hi(t) >= ql(t) and qh(t) >= lo(t)
            first = linear_nonneg_interval(
                hi0 - ql0, self.vupper[i] - ql_v, t_low, t_high)
            if first is None:
                return False
            second = linear_nonneg_interval(
                qh0 - lo0, qh_v - self.vlower[i], t_low, t_high)
            if second is None:
                return False
            intervals.append(first)
            intervals.append(second)
        return intersect_intervals(intervals) is not None
