"""TPR-tree node layouts and their binary codec.

TPR/TPR*-tree nodes occupy one disk page each (like the paper's SHORE
implementation).  Leaf entries store the trajectory line parameters
``(oid, p0, vel)`` with ``p0`` the position at absolute time zero; non-leaf
entries store a child record id plus the child's TPBR.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.tpr.tpbr import TPBR


@dataclass(frozen=True)
class LeafEntry:
    """One indexed trajectory: ``p(t) = p0 + vel * t``."""

    oid: int
    p0: Tuple[float, ...]
    vel: Tuple[float, ...]


@dataclass
class ChildEntry:
    """A child pointer with its time-parameterized bounding rectangle."""

    rid: int
    tpbr: TPBR


Entry = Union[LeafEntry, ChildEntry]


@dataclass
class TPRNode:
    """A TPR-tree node; ``level`` 0 is a leaf."""

    level: int
    entries: List[Entry]

    @property
    def is_leaf(self) -> bool:
        return self.level == 0


class TPRNodeCodec:
    """Serialize/deserialize TPR nodes for a given dimensionality."""

    def __init__(self, d: int, float32: bool = False):
        if d < 1:
            raise ValueError("dimensionality must be >= 1")
        self.d = d
        self.float32 = float32
        coord = "f" if float32 else "d"
        self._header = struct.Struct("<HH")                 # level, count
        self._leaf_entry = struct.Struct(f"<q{2 * d}{coord}")
        # rid, t0, lower, upper, vlower, vupper
        self._child_entry = struct.Struct(f"<qd{4 * d}{coord}")

    def leaf_capacity(self, record_size: int) -> int:
        """Leaf entries per record."""
        return (record_size - self._header.size) // self._leaf_entry.size

    def nonleaf_capacity(self, record_size: int) -> int:
        """Child entries per record."""
        return (record_size - self._header.size) // self._child_entry.size

    def serialize(self, node: TPRNode) -> bytes:
        parts = [self._header.pack(node.level, len(node.entries))]
        if node.is_leaf:
            for entry in node.entries:
                parts.append(self._leaf_entry.pack(entry.oid, *entry.p0,
                                                   *entry.vel))
        else:
            for entry in node.entries:
                box = entry.tpbr
                parts.append(self._child_entry.pack(
                    entry.rid, box.t0, *box.lower, *box.upper,
                    *box.vlower, *box.vupper))
        return b"".join(parts)

    def deserialize(self, raw: bytes) -> TPRNode:
        level, count = self._header.unpack(raw[: self._header.size])
        offset = self._header.size
        entries: List[Entry] = []
        d = self.d
        if level == 0:
            for _ in range(count):
                parts = self._leaf_entry.unpack_from(raw, offset)
                offset += self._leaf_entry.size
                entries.append(LeafEntry(parts[0],
                                         tuple(parts[1: 1 + d]),
                                         tuple(parts[1 + d: 1 + 2 * d])))
        else:
            for _ in range(count):
                parts = self._child_entry.unpack_from(raw, offset)
                offset += self._child_entry.size
                rid, t0 = parts[0], parts[1]
                coords = parts[2:]
                entries.append(ChildEntry(rid, TPBR(
                    t0,
                    tuple(coords[0: d]),
                    tuple(coords[d: 2 * d]),
                    tuple(coords[2 * d: 3 * d]),
                    tuple(coords[3 * d: 4 * d]))))
        return TPRNode(level, entries)
