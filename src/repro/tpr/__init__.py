"""TPR-tree and TPR*-tree baselines (Sections 3.1-3.2).

The paper evaluates STRIPES against the TPR*-tree (Tao, Papadias & Sun,
VLDB 2003), itself an optimised TPR-tree (Saltenis et al., SIGMOD 2000).
Both are R*-tree derivatives whose bounding rectangles carry velocity
vectors -- *time-parameterized bounding rectangles* (TPBRs) that grow over
time.

* :class:`repro.tpr.TPRTree` -- greedy single-path insertion using
  integrated-metric enlargement, R*-style splits over position *and*
  velocity sorts, tightening of TPBRs at update time.
* :class:`repro.tpr.TPRStarTree` -- adds the TPR*-tree's globally optimal
  ``ChoosePath`` insertion (priority-queue traversal over multiple paths)
  and ``PickWorst`` forced reinsertion on overflow.
"""

from repro.tpr.tpbr import TPBR
from repro.tpr.tprtree import TPRTree, TPRTreeConfig
from repro.tpr.tprstar import TPRStarTree

__all__ = ["TPBR", "TPRTree", "TPRTreeConfig", "TPRStarTree"]
