"""The TPR-tree (Saltenis et al., SIGMOD 2000) -- Section 3.1.

A time-parameterized R*-tree: nodes bound their children with TPBRs and all
R*-tree heuristics (choose-subtree enlargement, split margin/overlap/area)
are replaced by their *integrated* counterparts over the tree's horizon
``H`` (the paper's index lifetime ``L``).

Structure-modifying operations run against a buffer pool through the
shared :class:`repro.storage.node_store.NodeCache`, so every traversal is
charged page IOs exactly like the STRIPES quadtree.

The insertion path choice is the classic *greedy* descent: at each node the
child with the least integrated-metric enlargement is taken (volume above
the leaf level, margin when choosing among leaves).  The TPR*-tree subclass
replaces this with the globally optimal ``ChoosePath`` and adds forced
reinsertion -- see :mod:`repro.tpr.tprstar`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.obs.explain import QueryExplain, SubIndexExplain
from repro.obs.tracer import DescentTrace
from repro.query.predicates import MovingQueryEvaluator
from repro.query.types import MovingObjectState, PredictiveQuery
from repro.storage.node_store import NodeCache, RecordStore
from repro.tpr.node import ChildEntry, Entry, LeafEntry, TPRNode, TPRNodeCodec
from repro.tpr.tpbr import TPBR


@dataclass
class TPRTreeCounters:
    """Monotonic operation counters (plain ints on the hot path; mirrored
    into a metrics registry by :meth:`TPRTree.attach_metrics`)."""

    inserts: int = 0
    deletes: int = 0
    queries: int = 0
    splits: int = 0
    forced_reinserts: int = 0
    condenses: int = 0
    choosepath_pops: int = 0


@dataclass(frozen=True)
class TPRTreeConfig:
    """TPR/TPR*-tree parameters.

    ``horizon`` is the integration window ``H`` of every time-parameterized
    metric (the paper sets it to the index lifetime).  ``min_fill`` is the
    R*-tree minimum node utilisation; ``reinsert_fraction`` is the TPR*
    forced-reinsert share (lambda = 30 % in the paper).  ``delete_eps`` is
    the float tolerance of the find-leaf containment test (raise it in
    float32 mode).
    """

    d: int = 2
    horizon: float = 60.0
    float32: bool = False
    node_bytes: Optional[int] = None
    min_fill: float = 0.4
    reinsert_fraction: float = 0.3
    overlap_samples: int = 8
    delete_eps: float = 1e-7

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ValueError("d must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 < self.min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        if not 0.0 < self.reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must be in (0, 1)")


class TPRTree:
    """Greedy TPR-tree over a shared record store / buffer pool."""

    #: Subclasses toggle forced reinsertion on overflow (TPR* behaviour).
    use_forced_reinsert = False

    def __init__(self, config: TPRTreeConfig, store: RecordStore):
        self.config = config
        self.store = store
        self.codec = TPRNodeCodec(config.d, config.float32)
        page_size = store.pool.pagefile.page_size
        self.node_bytes = (config.node_bytes if config.node_bytes is not None
                           else page_size - 5)
        # Reserve one slot: an over-full node (capacity + 1 entries) is
        # persisted momentarily between the append and the split/reinsert.
        self.leaf_capacity = self.codec.leaf_capacity(self.node_bytes) - 1
        self.nonleaf_capacity = (
            self.codec.nonleaf_capacity(self.node_bytes) - 1)
        if self.leaf_capacity < 4 or self.nonleaf_capacity < 4:
            raise ValueError("node_bytes too small for a useful fanout")
        self.cache: NodeCache[TPRNode] = NodeCache(
            store, self.codec.serialize, self.codec.deserialize)
        self._root = self.cache.insert(self.node_bytes, TPRNode(0, []))
        self._count = 0
        self._now = 0.0
        self._reinserted_levels: set[int] = set()
        self.counters = TPRTreeCounters()

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    @property
    def now(self) -> float:
        """The tree's monotonic clock (latest update timestamp seen)."""
        return self._now

    def insert(self, obj: MovingObjectState) -> None:
        """Index a predicted trajectory."""
        if obj.d != self.config.d:
            raise ValueError(
                f"object is {obj.d}-d but the tree is {self.config.d}-d")
        self._now = max(self._now, obj.t)
        self.counters.inserts += 1
        p0 = tuple(p - v * obj.t for p, v in zip(obj.pos, obj.vel))
        self._reinserted_levels = set()
        self._insert_item(LeafEntry(obj.oid, p0, obj.vel), 0)
        self._count += 1

    def delete(self, obj: MovingObjectState) -> bool:
        """Remove the entry previously inserted for ``obj``; False when it
        cannot be located (the caller treats the update as an insert)."""
        self.counters.deletes += 1
        p0 = tuple(p - v * obj.t for p, v in zip(obj.pos, obj.vel))
        hit = self._find_leaf(self._root, p0, obj.vel, obj.oid,
                              [self._root])
        if hit is None:
            return False
        path, idx = hit
        node = self.cache.get(path[-1])
        node.entries.pop(idx)
        self.cache.update(path[-1], node)
        self._count -= 1
        self._condense(path)
        return True

    def update(self, old: Optional[MovingObjectState],
               new: MovingObjectState) -> bool:
        """Delete ``old`` (when given) then insert ``new``."""
        self._now = max(self._now, new.t)
        removed = self.delete(old) if old is not None else False
        self.insert(new)
        return removed

    def query(self, query: PredictiveQuery,
              trace: Optional[DescentTrace] = None) -> List[int]:
        """Object ids matching the query (exact: leaves are filtered with
        the native-space common-instant predicate).  ``trace`` records the
        descent (node visits, TPBR tests, entries scanned); the default
        ``None`` leaves the hot path untouched."""
        moving = query.as_moving()
        if moving.d != self.config.d:
            raise ValueError(
                f"query is {moving.d}-d but the tree is {self.config.d}-d")
        self.counters.queries += 1
        results: List[int] = []
        evaluator = MovingQueryEvaluator(moving)
        self._query_node(self._root, moving, evaluator, results, trace, 0)
        return results

    def explain(self, query: PredictiveQuery) -> QueryExplain:
        """Run ``query`` once under tracing and return the traced descent
        (the TPR analogue of :meth:`repro.StripesIndex.explain`)."""
        trace = DescentTrace(label="tpr descent")
        before = self.store.pool.stats.snapshot()
        results = self.query(query, trace)
        diff = self.store.pool.stats.diff(before)
        out = QueryExplain(query=query, index_name=type(self).__name__,
                           refined=True, results=results,
                           logical_reads=diff.logical_reads,
                           physical_reads=diff.physical_reads)
        out.sub_indexes.append(SubIndexExplain(
            label="tree", trace=trace, candidates=trace.candidates,
            matched=len(results)))
        return out

    def attach_metrics(self, registry, prefix: str = "tpr") -> None:
        """Mirror the tree's state into ``registry`` (a
        :class:`repro.obs.metrics.MetricsRegistry`): pool and store
        metrics, operation/split/reinsert counters, node-cache hit/miss
        counters, and an entry-count gauge.  Pull-based -- nothing on the
        hot paths touches the registry."""
        self.store.pool.attach_metrics(registry, prefix=f"{prefix}_pool")
        self.store.attach_metrics(registry, prefix=f"{prefix}_store")
        self.cache.attach_metrics(registry, prefix=f"{prefix}_node_cache")
        names = ("inserts", "deletes", "queries", "splits",
                 "forced_reinserts", "condenses", "choosepath_pops")
        counters = {name: registry.counter(f"{prefix}_{name}_total",
                                           help=f"TPR tree {name}")
                    for name in names}
        entries = registry.gauge(f"{prefix}_entries", help="indexed entries")

        def collect() -> None:
            for name, counter in counters.items():
                counter.set_total(getattr(self.counters, name))
            entries.set(self._count)

        registry.register_collector(collect)

    # ------------------------------------------------------------------ #
    # TPBR helpers
    # ------------------------------------------------------------------ #

    def _entry_tpbr(self, item: Entry) -> TPBR:
        if isinstance(item, LeafEntry):
            return TPBR.from_point(item.p0, item.vel, self._now)
        return item.tpbr

    def _tight_tpbr(self, node: TPRNode) -> TPBR:
        """Tight TPBR of a node's entries, referenced at the current time
        (the TPR-tree tightens bounds whenever a node is modified)."""
        return TPBR.union_of([self._entry_tpbr(e) for e in node.entries],
                             self._now)

    def _capacity(self, node: TPRNode) -> int:
        return self.leaf_capacity if node.is_leaf else self.nonleaf_capacity

    def _min_entries(self, node: TPRNode) -> int:
        return max(1, int(self.config.min_fill * self._capacity(node)))

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #

    def _insert_item(self, item: Entry, target_level: int) -> None:
        root = self.cache.get(self._root)
        if root.level < target_level:
            # The tree shrank below the item's home level (possible while
            # reinserting subtrees during condense): unpack the subtree and
            # reinsert its constituents instead.
            child = self.cache.get(item.rid)
            entries = list(child.entries)
            self.cache.free(item.rid)
            for sub in entries:
                self._insert_item(sub, child.level)
            return
        path = self._choose_path(self._entry_tpbr(item), target_level)
        rid = path[-1]
        node = self.cache.get(rid)
        node.entries.append(item)
        self.cache.update(rid, node)
        if len(node.entries) > self._capacity(node):
            self._handle_overflow(path)
        else:
            self._adjust_upward(path)

    def _choose_path(self, box: TPBR, target_level: int) -> List[int]:
        """Greedy root-to-target descent minimising integrated-metric
        enlargement at each step (TPR-tree behaviour)."""
        rid = self._root
        path = [rid]
        while True:
            node = self.cache.get(rid)
            if node.level == target_level:
                return path
            child_level = node.level - 1
            use_margin = child_level == 0 and target_level == 0
            best_idx = self._least_enlargement(node, box, use_margin)
            rid = node.entries[best_idx].rid
            path.append(rid)

    def _least_enlargement(self, node: TPRNode, box: TPBR,
                           use_margin: bool) -> int:
        tc, horizon = self._now, self.config.horizon
        best_idx = 0
        best_key = None
        for i, child in enumerate(node.entries):
            union = TPBR.union_of([child.tpbr, box], tc)
            if use_margin:
                enlargement = (union.margin_integral(tc, horizon)
                               - child.tpbr.margin_integral(tc, horizon))
            else:
                enlargement = (union.area_integral(tc, horizon)
                               - child.tpbr.area_integral(tc, horizon))
            key = (enlargement, child.tpbr.area_integral(tc, horizon))
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx

    def _handle_overflow(self, path: List[int]) -> None:
        node = self.cache.get(path[-1])
        if (self.use_forced_reinsert and len(path) > 1
                and node.level not in self._reinserted_levels):
            self._reinserted_levels.add(node.level)
            self._forced_reinsert(path)
        else:
            self._split(path)

    # ------------------------------------------------------------------ #
    # Split (R*-style over position and velocity sorts)
    # ------------------------------------------------------------------ #

    def _sort_key(self, item: Entry, kind: str, dim: int) -> float:
        tc = self._now
        if isinstance(item, LeafEntry):
            if kind == "pos":
                return item.p0[dim] + item.vel[dim] * tc
            return item.vel[dim]
        if kind == "pos":
            return item.tpbr.bounds_at(tc)[0][dim]
        return item.tpbr.vlower[dim]

    def _split_entries(self, node: TPRNode) -> Tuple[List[Entry],
                                                     List[Entry]]:
        """Choose axis by least total integrated margin, then the
        distribution on that axis by least integrated overlap (ties by
        total integrated area) -- the R*-tree recipe with time-
        parameterized metrics, sorting velocities as well as positions."""
        entries = node.entries
        total = len(entries)
        m = self._min_entries(node)
        tc, horizon = self._now, self.config.horizon

        def prefix_suffix(order: List[Entry]):
            boxes = [self._entry_tpbr(e) for e in order]
            prefix = [boxes[0].rebased(tc)]
            for box in boxes[1:]:
                prefix.append(TPBR.union_of([prefix[-1], box], tc))
            suffix = [boxes[-1].rebased(tc)]
            for box in reversed(boxes[:-1]):
                suffix.append(TPBR.union_of([suffix[-1], box], tc))
            suffix.reverse()
            return prefix, suffix

        best_axis = None
        best_margin = float("inf")
        for kind in ("pos", "vel"):
            for dim in range(self.config.d):
                order = sorted(
                    entries, key=lambda e: self._sort_key(e, kind, dim))
                prefix, suffix = prefix_suffix(order)
                margin_sum = 0.0
                for k in range(m, total - m + 1):
                    margin_sum += prefix[k - 1].margin_integral(tc, horizon)
                    margin_sum += suffix[k].margin_integral(tc, horizon)
                if margin_sum < best_margin:
                    best_margin = margin_sum
                    best_axis = (kind, dim, order, prefix, suffix)

        kind, dim, order, prefix, suffix = best_axis
        best_k = m
        best_key = None
        for k in range(m, total - m + 1):
            left, right = prefix[k - 1], suffix[k]
            overlap = left.overlap_integral(
                right, tc, horizon, self.config.overlap_samples)
            area = (left.area_integral(tc, horizon)
                    + right.area_integral(tc, horizon))
            key = (overlap, area)
            if best_key is None or key < best_key:
                best_key = key
                best_k = k
        return list(order[:best_k]), list(order[best_k:])

    def _split(self, path: List[int]) -> None:
        rid = path[-1]
        self.counters.splits += 1
        node = self.cache.get(rid)
        group1, group2 = self._split_entries(node)
        node.entries = group1
        self.cache.update(rid, node)
        sibling = TPRNode(node.level, group2)
        sibling_rid = self.cache.insert(self.node_bytes, sibling)
        if len(path) == 1:
            # Root split: grow the tree by one level.
            new_root = TPRNode(node.level + 1, [
                ChildEntry(rid, self._tight_tpbr(node)),
                ChildEntry(sibling_rid, self._tight_tpbr(sibling)),
            ])
            self._root = self.cache.insert(self.node_bytes, new_root)
            return
        parent_rid = path[-2]
        parent = self.cache.get(parent_rid)
        for entry in parent.entries:
            if entry.rid == rid:
                entry.tpbr = self._tight_tpbr(node)
                break
        parent.entries.append(ChildEntry(sibling_rid,
                                         self._tight_tpbr(sibling)))
        self.cache.update(parent_rid, parent)
        if len(parent.entries) > self._capacity(parent):
            self._handle_overflow(path[:-1])
        else:
            self._adjust_upward(path[:-1])

    # ------------------------------------------------------------------ #
    # Forced reinsert (used by the TPR*-tree subclass)
    # ------------------------------------------------------------------ #

    def _forced_reinsert(self, path: List[int]) -> None:
        """PickWorst (Section 3.2): sort along the dimension with the
        largest extent (velocity extents scaled by the horizon to be
        commensurate with positions) and reinsert the first lambda share."""
        self.counters.forced_reinserts += 1
        rid = path[-1]
        node = self.cache.get(rid)
        tc, horizon = self._now, self.config.horizon
        tight = self._tight_tpbr(node)
        best_axis = ("pos", 0)
        best_extent = -1.0
        for dim in range(self.config.d):
            pos_extent = tight.upper[dim] - tight.lower[dim]
            vel_extent = (tight.vupper[dim] - tight.vlower[dim]) * horizon
            if pos_extent > best_extent:
                best_extent = pos_extent
                best_axis = ("pos", dim)
            if vel_extent > best_extent:
                best_extent = vel_extent
                best_axis = ("vel", dim)
        kind, dim = best_axis
        order = sorted(node.entries,
                       key=lambda e: self._sort_key(e, kind, dim))
        n_reinsert = max(1, int(self.config.reinsert_fraction * len(order)))
        removed = order[:n_reinsert]
        node.entries = order[n_reinsert:]
        self.cache.update(rid, node)
        self._adjust_upward(path)
        level = node.level
        for item in removed:
            self._insert_item(item, level)

    # ------------------------------------------------------------------ #
    # TPBR maintenance
    # ------------------------------------------------------------------ #

    def _adjust_upward(self, path: List[int]) -> None:
        """Re-tighten the child TPBRs stored along ``path`` bottom-up."""
        for depth in range(len(path) - 1, 0, -1):
            child_rid = path[depth]
            child = self.cache.get(child_rid)
            parent_rid = path[depth - 1]
            parent = self.cache.get(parent_rid)
            for entry in parent.entries:
                if entry.rid == child_rid:
                    entry.tpbr = self._tight_tpbr(child)
                    break
            self.cache.update(parent_rid, parent)

    # ------------------------------------------------------------------ #
    # Deletion
    # ------------------------------------------------------------------ #

    def _find_leaf(self, rid: int, p0: Sequence[float],
                   vel: Sequence[float], oid: int,
                   path: List[int]) -> Optional[Tuple[List[int], int]]:
        node = self.cache.get(rid)
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.oid == oid:
                    return path, i
            return None
        for child in node.entries:
            if child.tpbr.contains_trajectory(p0, vel,
                                              self.config.delete_eps):
                hit = self._find_leaf(child.rid, p0, vel, oid,
                                      path + [child.rid])
                if hit is not None:
                    return hit
        return None

    def _condense(self, path: List[int]) -> None:
        """R-tree CondenseTree: drop under-filled nodes along the delete
        path, reinsert their orphaned entries, shrink a one-child root."""
        self.counters.condenses += 1
        orphans: List[Tuple[Entry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            rid = path[depth]
            node = self.cache.get(rid)
            parent_rid = path[depth - 1]
            parent = self.cache.get(parent_rid)
            if len(node.entries) < self._min_entries(node):
                parent.entries = [e for e in parent.entries if e.rid != rid]
                self.cache.update(parent_rid, parent)
                for entry in node.entries:
                    orphans.append((entry, node.level))
                self.cache.free(rid)
            else:
                for entry in parent.entries:
                    if entry.rid == rid:
                        entry.tpbr = self._tight_tpbr(node)
                        break
                self.cache.update(parent_rid, parent)
        while True:
            root = self.cache.get(self._root)
            if root.is_leaf or len(root.entries) != 1:
                break
            child_rid = root.entries[0].rid
            self.cache.free(self._root)
            self._root = child_rid
        root = self.cache.get(self._root)
        if not root.is_leaf and not root.entries:
            self.cache.free(self._root)
            self._root = self.cache.insert(self.node_bytes, TPRNode(0, []))
        self._reinserted_levels = set()
        for item, level in orphans:
            self._insert_item(item, level)

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def _query_node(self, rid: int, moving,
                    evaluator: MovingQueryEvaluator,
                    results: List[int],
                    trace: Optional[DescentTrace] = None,
                    depth: int = 0) -> None:
        node = self.cache.get(rid)
        if node.is_leaf:
            if trace is not None:
                trace.leaf_visits += 1
                trace.entries_scanned += len(node.entries)
                if depth > trace.max_depth:
                    trace.max_depth = depth
                before = len(results)
            matches = evaluator.matches_trajectory
            append = results.append
            for entry in node.entries:
                if matches(entry.p0, entry.vel):
                    append(entry.oid)
            if trace is not None:
                trace.candidates += len(results) - before
            return
        if trace is not None:
            trace.nonleaf_visits += 1
            if depth > trace.max_depth:
                trace.max_depth = depth
            trace.tpbr_tests += len(node.entries)
        for child in node.entries:
            if child.tpbr.intersects_query(moving):
                if trace is not None:
                    trace.children_recursed += 1
                self._query_node(child.rid, moving, evaluator, results,
                                 trace, depth + 1)
            elif trace is not None:
                trace.children_pruned += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def height(self) -> int:
        """Levels in the tree (1 for a single leaf root)."""
        return self.cache.get(self._root).level + 1

    def node_count(self) -> int:
        """Total nodes (each occupies one page)."""
        return self._count_nodes(self._root)

    def _count_nodes(self, rid: int) -> int:
        node = self.cache.get(rid)
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(c.rid) for c in node.entries)

    def all_entries(self) -> List[LeafEntry]:
        """Every stored leaf entry (test helper)."""
        out: List[LeafEntry] = []
        self._collect_entries(self._root, out)
        return out

    def _collect_entries(self, rid: int, out: List[LeafEntry]) -> None:
        node = self.cache.get(rid)
        if node.is_leaf:
            out.extend(node.entries)
            return
        for child in node.entries:
            self._collect_entries(child.rid, out)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(d={self.config.d}, "
                f"entries={len(self)}, height={self.height()})")
