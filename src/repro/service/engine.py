"""Cross-query vectorized batch evaluation over columnar shard mirrors.

This is the compute kernel that makes micro-batching pay on a single
core: instead of descending the quadtree once per query, a *batch* of B
coalesced queries is evaluated against a shard's flat columnar mirror of
live dual entries in one ``(B, N)`` numpy broadcast per dual plane,
followed by one gathered exact-refinement pass over the surviving
(query, entry) pairs.  Per-query Python overhead amortizes across the
batch, which is where the service's >= 2x throughput over serial
single-query evaluation comes from.

Correctness contract: for every query ``q`` in the batch the produced id
*set* equals ``StripesIndex.query(q)`` on the same entries.  This holds
because

* the per-plane containment test uses the same boundary-line arithmetic
  as :func:`repro.core.query_region.build_query_regions` /
  ``QueryRegion2D.contains_batch`` (``bound + vmax dt + vmax L`` as the
  intercept, ``-dt`` as the slope, evaluated in float64 on the same
  ``to_dual``-rounded coordinates the tree stores), and
* the refinement re-derives native motion parameters exactly as
  ``StripesIndex._query_moving`` does (``pv = v - vmax``, ``p0 = p -
  pv t_ref - vmax L``) and applies interval intersection with the same
  branch structure as
  :meth:`repro.query.predicates.MovingQueryEvaluator.matches_batch`.

Result *order* is unspecified (the tree reports in descent order, the
mirror in insertion order); callers compare sets.

:class:`ShardMirror` maintains the columns: a per-lifetime-window map of
``oid -> [(v, p), ...]`` dual tuples (exactly the values ``to_dual``
produced, so float32 rounding matches the tree bit for bit) with lazy
numpy column rebuilds.  Mutation follows the single-writer-per-shard
model of ``repro.service.sharding``; the rebuild is double-checked under
the mirror's own lock so concurrent readers are safe.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dual import DualPoint, DualSpace
from repro.query.types import PredictiveQuery

__all__ = ["CompiledBatch", "ShardMirror", "evaluate_batch"]


class CompiledBatch:
    """Stacked per-query coefficient arrays for one micro-batch.

    Compiling once per batch hoists the ``as_moving()`` canonicalization
    and the evaluator coefficient algebra (the array forms of
    ``MovingQueryEvaluator.__init__``) out of the per-(window, shard)
    evaluation loop.
    """

    __slots__ = ("size", "d", "low1", "high1", "low2", "high2",
                 "t_low", "t_high", "needs_refine",
                 "ql0", "ql_v", "qh0", "qh_v")

    def __init__(self, queries: Sequence[PredictiveQuery], d: int,
                 refine: bool = True):
        moving = [q.as_moving() for q in queries]
        for m in moving:
            if m.d != d:
                raise ValueError(
                    f"query is {m.d}-d but the index is {d}-d")
        self.size = len(moving)
        self.d = d
        self.low1 = np.array([m.low1 for m in moving], dtype=np.float64)
        self.high1 = np.array([m.high1 for m in moving], dtype=np.float64)
        self.low2 = np.array([m.low2 for m in moving], dtype=np.float64)
        self.high2 = np.array([m.high2 for m in moving], dtype=np.float64)
        self.t_low = np.array([m.t_low for m in moving], dtype=np.float64)
        self.t_high = np.array([m.t_high for m in moving], dtype=np.float64)
        duration = self.t_high - self.t_low
        # A query whose dimensions can match at different instants needs
        # the exact common-instant refinement; a time-slice query
        # (duration 0) is already exact after containment.
        self.needs_refine = (duration > 0.0) if refine \
            else np.zeros(self.size, dtype=bool)
        needs = (duration > 0.0)[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            self.ql_v = np.where(
                needs, (self.low2 - self.low1) / duration[:, None], 0.0)
            self.qh_v = np.where(
                needs, (self.high2 - self.high1) / duration[:, None], 0.0)
        self.ql0 = self.low1 - self.ql_v * self.t_low[:, None]
        self.qh0 = self.high1 - self.qh_v * self.t_low[:, None]


def evaluate_batch(batch: CompiledBatch, space: DualSpace,
                   oids: np.ndarray, vs: np.ndarray, ps: np.ndarray,
                   results: List[List[int]]) -> None:
    """Evaluate every query of ``batch`` against one window's columns.

    ``oids``/``vs``/``ps`` are the window's live entries in dual
    coordinates (shapes ``(N,)``, ``(N, d)``, ``(N, d)``); matches are
    appended to ``results[k]`` for query ``k``.
    """
    if not oids.size or not batch.size:
        return
    t_ref = space.t_ref
    lifetime = space.lifetime
    # --- filter: per-plane dual-region containment, all queries at once.
    # Two boundary lines per side (one per query rectangle endpoint);
    # slopes depend only on the endpoint times, so the lower and upper
    # lines at the same endpoint share a slope.
    dt_lo = batch.t_low - t_ref
    dt_hi = batch.t_high - t_ref
    la_s = (-dt_lo)[:, None]
    lb_s = (-dt_hi)[:, None]
    mask = np.ones((batch.size, oids.size), dtype=bool)
    for i in range(batch.d):
        vm = space.vmax[i]
        shift = vm * lifetime
        la_i = (batch.low1[:, i] + vm * dt_lo + shift)[:, None]
        lb_i = (batch.low2[:, i] + vm * dt_hi + shift)[:, None]
        ua_i = (batch.high1[:, i] + vm * dt_lo + shift)[:, None]
        ub_i = (batch.high2[:, i] + vm * dt_hi + shift)[:, None]
        v = vs[None, :, i]
        p = ps[None, :, i]
        lower = np.minimum(la_i + la_s * v, lb_i + lb_s * v)
        upper = np.maximum(ua_i + la_s * v, ub_i + lb_s * v)
        mask &= (p >= lower) & (p <= upper)
    qidx, row = np.nonzero(mask)
    if not qidx.size:
        return
    # --- refine: exact common-instant interval intersection over the
    # surviving (query, entry) pairs, coefficients gathered per pair.
    vmax = np.array(space.vmax, dtype=np.float64)
    pvs = vs[row] - vmax
    p0s = ps[row] - pvs * t_ref - vmax * lifetime
    lo = batch.t_low[qidx].copy()
    hi = batch.t_high[qidx].copy()
    for i in range(batch.d):
        for a, b in (
                (p0s[:, i] - batch.ql0[qidx, i],
                 pvs[:, i] - batch.ql_v[qidx, i]),
                (batch.qh0[qidx, i] - p0s[:, i],
                 batch.qh_v[qidx, i] - pvs[:, i])):
            with np.errstate(divide="ignore", invalid="ignore"):
                root = -a / b
            lo = np.where(b > 0.0, np.maximum(lo, root), lo)
            hi = np.where(b < 0.0, np.minimum(hi, root), hi)
            hi = np.where((b == 0.0) & (a < 0.0), -np.inf, hi)
    keep = np.where(batch.needs_refine[qidx], lo <= hi, True)
    qk = qidx[keep]
    matched = oids[row[keep]]
    # np.nonzero yields row-major order, so qk is already non-decreasing;
    # one searchsorted splits the flat match list back into per-query runs.
    bounds = np.searchsorted(qk, np.arange(batch.size + 1))
    for k in range(batch.size):
        start, stop = bounds[k], bounds[k + 1]
        if start < stop:
            results[k].extend(matched[start:stop].tolist())


class _WindowMirror:
    """Columnar mirror of one lifetime window's live entries."""

    __slots__ = ("space", "entries", "size", "dirty", "oids", "vs", "ps")

    def __init__(self, space: DualSpace):
        self.space = space
        # oid -> list of (v, p) dual tuples.  A list, not a single slot:
        # the index tolerates duplicate oids per window, and delete
        # mirrors DualQuadTree._find_entry (exact (v, p) match first,
        # then any entry of the oid).
        self.entries: Dict[int, List[Tuple[Tuple[float, ...],
                                           Tuple[float, ...]]]] = {}
        self.size = 0
        self.dirty = True
        self.oids = np.empty(0, dtype=np.int64)
        self.vs = np.empty((0, space.d), dtype=np.float64)
        self.ps = np.empty((0, space.d), dtype=np.float64)

    def rebuild(self) -> None:
        oids: List[int] = []
        vs: List[Tuple[float, ...]] = []
        ps: List[Tuple[float, ...]] = []
        for oid, pairs in self.entries.items():
            for v, p in pairs:
                oids.append(oid)
                vs.append(v)
                ps.append(p)
        d = self.space.d
        self.oids = np.array(oids, dtype=np.int64)
        self.vs = np.array(vs, dtype=np.float64).reshape(len(oids), d)
        self.ps = np.array(ps, dtype=np.float64).reshape(len(oids), d)
        self.dirty = False


class ShardMirror:
    """Per-window columnar mirrors of one shard's live dual entries.

    The shard's single writer calls :meth:`note_insert` /
    :meth:`note_delete` / :meth:`sync_windows` in lockstep with the
    underlying :class:`repro.core.stripes.StripesIndex` mutations (under
    the shard's exclusive lock); readers call :meth:`window_columns`
    under the shard's shared lock.  The internal lock only protects the
    lazy column rebuild, which is the one mutation the read path performs.
    """

    def __init__(self, config):
        self._config = config
        self._windows: Dict[int, _WindowMirror] = {}
        self._lock = threading.Lock()
        #: Bumped on every mutation; lets readers key caches derived from
        #: this mirror's columns (e.g. the facade's merged snapshot).
        self.epoch = 0

    def space_for(self, window: int) -> DualSpace:
        """The dual space of ``window`` (same derivation as the index)."""
        mirror = self._windows.get(window)
        if mirror is not None:
            return mirror.space
        cfg = self._config
        return DualSpace(cfg.vmax, cfg.pmax, cfg.lifetime,
                         t_ref=window * cfg.lifetime, float32=cfg.float32)

    @property
    def total_entries(self) -> int:
        """Live mirrored entries across all windows."""
        return sum(m.size for m in self._windows.values())

    # ---------------------------------------------------------------- #
    # Writer-side hooks (shard exclusive lock held)
    # ---------------------------------------------------------------- #

    def note_insert(self, window: int, dual: DualPoint) -> None:
        mirror = self._windows.get(window)
        if mirror is None:
            mirror = self._windows[window] = _WindowMirror(
                self.space_for(window))
        mirror.entries.setdefault(dual.oid, []).append((dual.v, dual.p))
        mirror.size += 1
        mirror.dirty = True
        self.epoch += 1

    def note_insert_batch(self, window: int,
                          duals: Sequence[DualPoint]) -> None:
        """Mirror a whole window group of inserts with one dirty-flag /
        epoch bump (the batched twin of :meth:`note_insert`)."""
        if not duals:
            return
        mirror = self._windows.get(window)
        if mirror is None:
            mirror = self._windows[window] = _WindowMirror(
                self.space_for(window))
        entries = mirror.entries
        for dual in duals:
            entries.setdefault(dual.oid, []).append((dual.v, dual.p))
        mirror.size += len(duals)
        mirror.dirty = True
        self.epoch += 1

    def note_delete(self, window: int, dual: DualPoint) -> None:
        """Remove the mirrored entry for a delete the index accepted.

        Matching mirrors ``DualQuadTree._find_entry``: the exact
        ``(v, p)`` pair when present, else any entry of the oid.
        """
        mirror = self._windows.get(window)
        if mirror is None:
            return
        pairs = mirror.entries.get(dual.oid)
        if not pairs:
            return
        try:
            pairs.remove((dual.v, dual.p))
        except ValueError:
            pairs.pop()
        if not pairs:
            del mirror.entries[dual.oid]
        mirror.size -= 1
        mirror.dirty = True
        self.epoch += 1

    def note_delete_batch(self, window: int,
                          duals: Sequence[DualPoint]) -> None:
        """Mirror a whole window group of accepted deletes with one
        dirty-flag / epoch bump; per-dual matching is identical to
        :meth:`note_delete`."""
        mirror = self._windows.get(window)
        if mirror is None:
            return
        entries = mirror.entries
        removed = 0
        for dual in duals:
            pairs = entries.get(dual.oid)
            if not pairs:
                continue
            try:
                pairs.remove((dual.v, dual.p))
            except ValueError:
                pairs.pop()
            if not pairs:
                del entries[dual.oid]
            removed += 1
        if removed:
            mirror.size -= removed
            mirror.dirty = True
            self.epoch += 1

    def sync_windows(self, live_windows: Sequence[int]) -> None:
        """Drop mirrors of windows the index has retired."""
        live = set(live_windows)
        for window in [w for w in self._windows if w not in live]:
            del self._windows[window]
            self.epoch += 1

    # ---------------------------------------------------------------- #
    # Reader side (shard shared lock held)
    # ---------------------------------------------------------------- #

    def window_columns(self) -> List[Tuple[DualSpace, np.ndarray,
                                           np.ndarray, np.ndarray]]:
        """``(space, oids, vs, ps)`` per live window, rebuilt if stale."""
        out = []
        for window in sorted(self._windows):
            mirror = self._windows[window]
            if mirror.dirty:
                with self._lock:
                    if mirror.dirty:  # double-checked under the lock
                        mirror.rebuild()
            out.append((mirror.space, mirror.oids, mirror.vs, mirror.ps))
        return out
