"""The concurrent STRIPES query service: workers, micro-batching,
backpressure.

:class:`StripesService` fronts a :class:`repro.service.sharding.
ShardedStripes` with a thread pool behind a *bounded* request queue:

* **Micro-batching** -- a worker that picks up a request keeps draining
  the queue for up to ``batch_window_s`` seconds or ``batch_max``
  requests, then evaluates the whole batch in one
  ``ShardedStripes.query_batch`` fan-out.  Concurrent callers therefore
  share one vectorized evaluation instead of paying per-query descents,
  which is what buys the service its throughput on a single core.
* **Admission control** -- a full queue rejects immediately with
  :class:`Overloaded` (explicit, never silent); per-request deadlines
  (``timeout_s``) are enforced at dequeue time, failing expired requests
  with :class:`RequestTimeout` instead of wasting evaluation on them.
* **Graceful drain** -- ``close()`` stops admissions, lets workers finish
  the queue (``drain=True``, the default) or fails pending requests with
  :class:`ServiceClosed` (``drain=False``), then joins the workers.

Writes (``insert``/``update``/``delete``) pass through to the sharded
facade inline on the caller's thread under the per-shard writer locks --
an update on one shard never blocks queries on another, and queries on
the *same* shard only wait for the short exclusive section.

All queue/batch/latency signals are exported through ``repro.obs``
metrics when a registry is attached (see docs/SERVICE.md for the
catalogue).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Optional

from repro.query.types import MovingObjectState, PredictiveQuery
from repro.service.sharding import ShardedStripes, ShardTransientError
from repro.storage.faults import TransientIOError

__all__ = ["ServiceConfig", "StripesService", "Overloaded",
           "RequestTimeout", "ServiceClosed"]


class Overloaded(RuntimeError):
    """The request queue is full; the caller must back off and retry."""


class RequestTimeout(TimeoutError):
    """The request's deadline expired before a worker evaluated it."""


class ServiceClosed(RuntimeError):
    """The service is shut down (or shutting down) and admits no work."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`StripesService` (see docs/SERVICE.md).

    The batching defaults are the measured optimum of the ``stripes-bench
    serve`` tuning matrix on the paper's workload shape: small-ish batches
    (16) keep the flat engine's ``(B, N)`` temporaries cache-resident and
    the per-batch GIL hold short, and a half-millisecond window is enough
    coalescing time under concurrent load without dominating latency.
    """

    workers: int = 4
    #: Bounded queue capacity; submissions beyond it raise ``Overloaded``.
    max_queue: int = 256
    #: Upper bound on queries coalesced into one evaluation batch.
    batch_max: int = 16
    #: How long a worker waits to grow a non-empty batch, in seconds.
    batch_window_s: float = 0.0005
    #: Default per-request deadline; ``None`` means no deadline.
    default_timeout_s: Optional[float] = None
    #: Transient-IO retries per operation before giving up (queries shed
    #: the failing shard after exhaustion; writes re-raise).
    io_max_retries: int = 4
    #: Initial retry backoff, doubling per attempt ...
    io_backoff_s: float = 0.001
    #: ... up to this cap.
    io_backoff_cap_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.batch_max <= 0:
            raise ValueError("batch_max must be positive")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.io_max_retries < 0:
            raise ValueError("io_max_retries must be non-negative")
        if self.io_backoff_s < 0 or self.io_backoff_cap_s < 0:
            raise ValueError("retry backoffs must be non-negative")


class _Request:
    __slots__ = ("query", "future", "deadline", "enqueued_at")

    def __init__(self, query: PredictiveQuery, future: Future,
                 deadline: Optional[float], enqueued_at: float):
        self.query = query
        self.future = future
        self.deadline = deadline
        self.enqueued_at = enqueued_at


#: Batch-size histogram buckets (requests per evaluated batch).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class _RequestQueue:
    """Bounded MPMC queue with *bulk* dequeue.

    ``queue.Queue`` costs one lock round-trip per dequeued item; at
    micro-batch sizes of 32-64 that per-item overhead dominates the
    coalescing loop.  This queue lets a worker take up to ``n`` requests
    under a single lock acquisition instead.
    """

    __slots__ = ("_maxsize", "_items", "_lock", "_not_empty")

    def __init__(self, maxsize: int):
        self._maxsize = maxsize
        self._items: "deque[_Request]" = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def put_nowait(self, item: "_Request") -> bool:
        """Append ``item``; False when the queue is at capacity."""
        with self._lock:
            if len(self._items) >= self._maxsize:
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def pop_up_to(self, n: int, timeout: float) -> "List[_Request]":
        """Pop up to ``n`` items, waiting up to ``timeout`` for the first.

        May return an empty list early (another worker drained the wakeup);
        callers loop on their own deadline.
        """
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
                if not self._items:
                    return []
            popleft = self._items.popleft
            return [popleft() for _ in range(min(n, len(self._items)))]

    def drain(self) -> "List[_Request]":
        """Atomically empty the queue, returning everything pending."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class StripesService:
    """A thread-pool query service over a sharded STRIPES index.

    Start with a context manager or :meth:`start`; submit queries with
    :meth:`query` (synchronous) or :meth:`submit` (returns a
    ``concurrent.futures.Future``).
    """

    def __init__(self, sharded: ShardedStripes,
                 config: ServiceConfig = ServiceConfig(),
                 registry=None):
        self.sharded = sharded
        self.config = config
        self._queue = _RequestQueue(config.max_queue)
        self._workers: List[threading.Thread] = []
        self._closing = threading.Event()
        self._started = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        # Metric instruments default to None-checks so an unmetered
        # service pays nothing.
        self._m_requests = self._m_rejected = self._m_timeouts = None
        self._m_batches = self._m_errors = None
        self._m_io_retries = self._m_shed = None
        self._h_batch_size = self._h_latency = None
        if registry is not None:
            self.attach_metrics(registry)

    # ---------------------------------------------------------------- #
    # Lifecycle
    # ---------------------------------------------------------------- #

    def start(self) -> "StripesService":
        """Spawn the worker threads (idempotent)."""
        if self._closing.is_set():
            raise ServiceClosed("service already closed")
        if self._started:
            return self
        self._started = True
        for i in range(self.config.workers):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"stripes-worker-{i}",
                                      daemon=True)
            worker.start()
            self._workers.append(worker)
        return self

    def __enter__(self) -> "StripesService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True) -> None:
        """Stop admitting work and shut the workers down.

        ``drain=True`` evaluates everything already queued; ``drain=False``
        fails queued requests with :class:`ServiceClosed` immediately.
        Idempotent.
        """
        if self._closing.is_set():
            return
        self._closing.set()
        if not drain:
            for request in self._queue.drain():
                request.future.set_exception(
                    ServiceClosed("service closed before evaluation"))
        for worker in self._workers:
            worker.join()
        self._workers.clear()

    @property
    def closed(self) -> bool:
        return self._closing.is_set()

    # ---------------------------------------------------------------- #
    # Submission
    # ---------------------------------------------------------------- #

    def submit(self, query: PredictiveQuery,
               timeout_s: Optional[float] = None) -> Future:
        """Enqueue ``query``; returns a Future resolving to the id list.

        Raises :class:`ServiceClosed` after shutdown began and
        :class:`Overloaded` when the bounded queue is full -- overload is
        an explicit signal, never a silent drop.
        """
        if not self._started or self._closing.is_set():
            if self._m_rejected is not None:
                self._m_rejected.inc()
            raise ServiceClosed("service is not accepting requests")
        now = time.perf_counter()
        effective = timeout_s if timeout_s is not None \
            else self.config.default_timeout_s
        deadline = now + effective if effective is not None else None
        request = _Request(query, Future(), deadline, now)
        if not self._queue.put_nowait(request):
            if self._m_rejected is not None:
                self._m_rejected.inc()
            raise Overloaded(
                f"request queue full ({self.config.max_queue} pending)")
        if self._m_requests is not None:
            self._m_requests.inc()
        return request.future

    def query(self, query: PredictiveQuery,
              timeout_s: Optional[float] = None) -> List[int]:
        """Synchronous submit + wait; raises what the Future raises."""
        return self.submit(query, timeout_s=timeout_s).result()

    # ---------------------------------------------------------------- #
    # Workers
    # ---------------------------------------------------------------- #

    def _worker_loop(self) -> None:
        cfg = self.config
        while True:
            batch = self._queue.pop_up_to(cfg.batch_max, timeout=0.05)
            if not batch:
                if self._closing.is_set():
                    return
                continue
            if len(batch) < cfg.batch_max and cfg.batch_window_s > 0:
                window_ends = time.perf_counter() + cfg.batch_window_s
                while len(batch) < cfg.batch_max:
                    remaining = window_ends - time.perf_counter()
                    if remaining <= 0:
                        break
                    batch.extend(self._queue.pop_up_to(
                        cfg.batch_max - len(batch), remaining))
            self._evaluate(batch)

    def _evaluate(self, batch: List[_Request]) -> None:
        now = time.perf_counter()
        live: List[_Request] = []
        for request in batch:
            if request.future.cancelled():
                continue
            if request.deadline is not None and now > request.deadline:
                if self._m_timeouts is not None:
                    self._m_timeouts.inc()
                request.future.set_exception(RequestTimeout(
                    f"deadline exceeded after "
                    f"{now - request.enqueued_at:.3f}s in queue"))
                continue
            live.append(request)
        if not live:
            return
        with self._inflight_lock:
            self._inflight += len(live)
        try:
            results = self._query_with_retries([r.query for r in live])
        except Exception as exc:  # noqa: BLE001 - forwarded to callers
            if self._m_errors is not None:
                self._m_errors.inc(len(live))
            for request in live:
                request.future.set_exception(exc)
            return
        finally:
            with self._inflight_lock:
                self._inflight -= len(live)
        done = time.perf_counter()
        if self._m_batches is not None:
            self._m_batches.inc()
            self._h_batch_size.observe(len(live))
            for request in live:
                self._h_latency.observe(done - request.enqueued_at)
        for request, result in zip(live, results):
            request.future.set_result(result)

    # ---------------------------------------------------------------- #
    # Transient-IO resilience
    # ---------------------------------------------------------------- #

    def _backoff(self, attempt: int) -> None:
        """Sleep the capped-exponential delay for retry ``attempt``
        (1-based)."""
        delay = min(self.config.io_backoff_s * (2 ** (attempt - 1)),
                    self.config.io_backoff_cap_s)
        if delay > 0:
            time.sleep(delay)

    def _query_with_retries(self, queries: List[PredictiveQuery]) \
            -> List[List[int]]:
        """Evaluate a batch, retrying transient shard IO errors with
        capped exponential backoff; a shard that keeps failing is *shed*
        (``ShardedStripes.mark_degraded``) and the batch re-runs without
        it, returning the healthy shards' partial answer rather than
        failing every caller.  Terminates: each exhausted retry budget
        removes one shard from the fan-out, and shards are finite.
        """
        cfg = self.config
        attempts = 0
        while True:
            try:
                return self.sharded.query_batch(queries)
            except ShardTransientError as exc:
                attempts += 1
                if attempts > cfg.io_max_retries:
                    self.sharded.mark_degraded(exc.sid)
                    if self._m_shed is not None:
                        self._m_shed.inc()
                    attempts = 0  # fresh budget for any other shard
                    continue
                if self._m_io_retries is not None:
                    self._m_io_retries.inc()
                self._backoff(attempts)

    def _io_retry(self, op, *args):
        """Run a write, retrying transient IO errors with backoff.

        A :class:`TransientIOError` means the failed page write was not
        applied, but the surrounding index operation may already have
        applied *earlier* pages -- retrying re-runs the whole operation,
        so writes are at-least-once under transient faults (see
        docs/DURABILITY.md for the idempotence discussion).  After the
        budget is exhausted the error propagates to the caller.
        """
        attempt = 0
        while True:
            try:
                return op(*args)
            except TransientIOError:
                attempt += 1
                if attempt > self.config.io_max_retries:
                    raise
                if self._m_io_retries is not None:
                    self._m_io_retries.inc()
                self._backoff(attempt)

    # ---------------------------------------------------------------- #
    # Writes (inline, per-shard locking inside the facade)
    # ---------------------------------------------------------------- #

    def insert(self, obj: MovingObjectState) -> None:
        if self._closing.is_set():
            raise ServiceClosed("service is not accepting writes")
        self._io_retry(self.sharded.insert, obj)

    def delete(self, obj: MovingObjectState) -> bool:
        if self._closing.is_set():
            raise ServiceClosed("service is not accepting writes")
        return self._io_retry(self.sharded.delete, obj)

    def update(self, old: Optional[MovingObjectState],
               new: MovingObjectState) -> bool:
        if self._closing.is_set():
            raise ServiceClosed("service is not accepting writes")
        return self._io_retry(self.sharded.update, old, new)

    # ---------------------------------------------------------------- #
    # Observability
    # ---------------------------------------------------------------- #

    def attach_metrics(self, registry, prefix: str = "service") -> None:
        """Export queue/batch/latency instruments into ``registry``."""
        from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S

        self._m_requests = registry.counter(
            f"{prefix}_requests_total", help="queries admitted")
        self._m_rejected = registry.counter(
            f"{prefix}_rejected_total",
            help="queries rejected (queue full or closed)")
        self._m_timeouts = registry.counter(
            f"{prefix}_timeouts_total",
            help="queries expired before evaluation")
        self._m_batches = registry.counter(
            f"{prefix}_batches_total", help="micro-batches evaluated")
        self._m_errors = registry.counter(
            f"{prefix}_errors_total", help="queries failed with an error")
        self._m_io_retries = registry.counter(
            f"{prefix}_io_retries_total",
            help="operations retried after a transient IO error")
        self._m_shed = registry.counter(
            f"{prefix}_shards_shed_total",
            help="shards degraded out of the query fan-out")
        self._h_batch_size = registry.histogram(
            f"{prefix}_batch_size", buckets=BATCH_SIZE_BUCKETS,
            help="queries coalesced per evaluated batch")
        self._h_latency = registry.histogram(
            f"{prefix}_latency_seconds", buckets=DEFAULT_LATENCY_BUCKETS_S,
            help="enqueue-to-result latency")
        queue_depth = registry.gauge(
            f"{prefix}_queue_depth", help="requests waiting in the queue")
        inflight = registry.gauge(
            f"{prefix}_inflight", help="requests being evaluated right now")
        workers = registry.gauge(
            f"{prefix}_workers", help="worker thread count")
        shard_degraded = registry.gauge(
            f"{prefix}_shard_degraded",
            help="shards currently shed from the query fan-out")

        def collect() -> None:
            queue_depth.set(len(self._queue))
            with self._inflight_lock:
                inflight.set(self._inflight)
            workers.set(len(self._workers))
            shard_degraded.set(len(self.sharded.degraded_shards()))

        registry.register_collector(collect)
        self.sharded.attach_metrics(registry, prefix=f"{prefix}_sharded")
