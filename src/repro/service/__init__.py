"""The concurrent STRIPES query service (docs/SERVICE.md).

Turns the single-threaded library into a sharded, concurrent service:

* :class:`repro.service.sharding.ShardedStripes` -- N independent
  :class:`repro.core.stripes.StripesIndex` shards (private pagefile +
  buffer pool each) behind a pluggable :class:`ShardPolicy`, with
  per-shard reader/writer locks and fan-out query + merge.
* :class:`repro.service.service.StripesService` -- a worker thread pool
  behind a bounded request queue with micro-batching (concurrent queries
  coalesce into one vectorized ``query_batch`` per shard), explicit
  ``Overloaded`` rejection, per-request deadlines, and graceful drain.
* :class:`repro.service.client.ServiceClient` /
  :class:`repro.service.client.LoadDriver` -- the synchronous handle and
  the closed-loop load generator behind ``stripes-bench serve``.
"""

from repro.service.client import LoadDriver, LoadReport, ServiceClient
from repro.service.engine import CompiledBatch, ShardMirror, evaluate_batch
from repro.service.service import (
    Overloaded,
    RequestTimeout,
    ServiceClosed,
    ServiceConfig,
    StripesService,
)
from repro.service.sharding import (
    HashShardPolicy,
    RWLock,
    ShardedStripes,
    ShardPolicy,
    VelocityBandShardPolicy,
)

__all__ = [
    "ShardedStripes",
    "ShardPolicy",
    "HashShardPolicy",
    "VelocityBandShardPolicy",
    "RWLock",
    "StripesService",
    "ServiceConfig",
    "Overloaded",
    "RequestTimeout",
    "ServiceClosed",
    "ServiceClient",
    "LoadDriver",
    "LoadReport",
    "CompiledBatch",
    "ShardMirror",
    "evaluate_batch",
]
