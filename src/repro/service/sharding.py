"""Sharded STRIPES: N independent sub-indexes behind one facade.

:class:`ShardedStripes` partitions moving objects across ``n_shards``
independent :class:`repro.core.stripes.StripesIndex` instances -- each
with its own pagefile and buffer pool -- under a pluggable
:class:`ShardPolicy`.  The decomposition follows the velocity/speed
partitioning line of work (Nguyen et al., *Boosting Moving Object
Indexing through Velocity Partitioning*; Xu et al., *Speed Partitioning
for Indexing Moving Objects*): splitting a moving-object index into
per-partition sub-indexes shrinks per-partition dead space and, here,
gives each partition private storage so writers on one shard never block
readers on another.

Lock model (the single-writer-per-shard invariant)
--------------------------------------------------
Each shard carries

* a reader/writer lock -- writes (insert/delete/update/rotation) take it
  exclusively, queries take it shared;
* a *tree mutex* serializing tree-descent reads, because a descent
  mutates shared state (buffer-pool LRU order and pin counts, node-cache
  hit counters) even though it is logically a read.

Queries therefore run concurrently across shards and -- on the columnar
fast path, which touches no tree state -- concurrently *within* a shard.
The underlying ``BufferPool``/``RecordStore``/``NodeCache`` stay
internally unlocked (see their module docstrings); this facade is what
upholds their discipline.

Query fast path
---------------
Below :attr:`ShardedStripes.scan_threshold` live entries per shard,
query batches are evaluated by the cross-query vectorized flat engine
(:mod:`repro.service.engine`) against the shard's columnar mirror -- one
``(B, N)`` broadcast per dual plane instead of B tree descents.  Above
the threshold the per-shard ``query_batch`` tree descent takes over
(the tree's pruning wins once N is large).  Both paths produce the same
id sets as ``StripesIndex.query`` on the same entries.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence

from repro.core.stripes import StripesConfig, StripesIndex, _net_update_runs
from repro.query.types import MovingObjectState, PredictiveQuery
from repro.service.engine import CompiledBatch, ShardMirror, evaluate_batch
from repro.storage.buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.faults import TransientIOError
from repro.storage.pagefile import InMemoryPageFile, PageFile

__all__ = ["ShardPolicy", "HashShardPolicy", "VelocityBandShardPolicy",
           "RWLock", "ShardedStripes", "ShardTransientError"]


class ShardTransientError(RuntimeError):
    """A shard's storage raised a retryable IO error mid-query.

    Carries the shard id so the service layer can retry -- and, when
    retries run out, shed -- exactly the failing shard while every other
    shard keeps serving.
    """

    def __init__(self, sid: int, cause: TransientIOError):
        super().__init__(f"shard {sid}: {cause}")
        self.sid = sid
        self.cause = cause

#: Fibonacci-hash multiplier (Knuth): spreads consecutive oids uniformly.
_HASH_MULTIPLIER = 2654435761


class ShardPolicy:
    """Maps a moving-object state to a shard id in ``[0, n_shards)``.

    Policies must be *pure* (same state -> same shard, forever): an
    update routes its old entry's delete by re-applying the policy to the
    old state, so a policy that changed its mind would strand entries.
    """

    def shard_of(self, obj: MovingObjectState, n_shards: int) -> int:
        raise NotImplementedError


class HashShardPolicy(ShardPolicy):
    """Uniform hash of the object id (the default)."""

    def shard_of(self, obj: MovingObjectState, n_shards: int) -> int:
        return ((obj.oid * _HASH_MULTIPLIER) & 0xFFFFFFFF) % n_shards


class VelocityBandShardPolicy(ShardPolicy):
    """Partition by current speed into equal-width bands.

    Objects of similar speed land together, so each shard's dual-space
    velocity extent -- and with it the dead space a query region sweeps --
    is a fraction of the unpartitioned index's, the effect the velocity/
    speed-partitioning papers exploit.  ``max_speed`` is the workload's
    speed bound (``|v| <= max_speed``); faster objects clamp into the top
    band.  Note the shard is a function of the *state*: an object whose
    update crosses a band boundary migrates (its update becomes a delete
    on the old band's shard and an insert on the new one's), which the
    facade handles by routing the two halves independently.
    """

    def __init__(self, max_speed: float):
        if max_speed <= 0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        self.max_speed = float(max_speed)

    def shard_of(self, obj: MovingObjectState, n_shards: int) -> int:
        speed = math.sqrt(sum(v * v for v in obj.vel))
        band = int(speed / self.max_speed * n_shards)
        return min(band, n_shards - 1)


class RWLock:
    """A writer-preference reader/writer lock.

    Readers share; a writer excludes everyone.  Arriving writers block
    new readers, so a steady query stream cannot starve updates.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class _Shard:
    """One partition: a private index + pool, its mirror, and its locks."""

    __slots__ = ("sid", "index", "mirror", "lock", "tree_mutex")

    def __init__(self, sid: int, index: StripesIndex):
        self.sid = sid
        self.index = index
        self.mirror = ShardMirror(index.config)
        self.lock = RWLock()
        self.tree_mutex = threading.Lock()


#: Per-shard live-entry count above which query batches fall back from
#: the flat columnar engine to the tree descent.  Crossover measured on
#: the BENCH_PR2 workload shape: the O(B x N) flat evaluation beats B
#: pruned descents up to high-thousands of entries per shard.
DEFAULT_SCAN_THRESHOLD = 8192


class ShardedStripes:
    """Facade over ``n_shards`` independent STRIPES indexes.

    Thread-safe under the per-shard lock model described in the module
    docstring.  Query results carry the same id *sets* as a single
    :class:`StripesIndex` fed the same operations; ordering within a
    result is unspecified.
    """

    def __init__(self, config: StripesConfig, n_shards: int = 4,
                 policy: Optional[ShardPolicy] = None,
                 pool_pages: int = DEFAULT_POOL_PAGES,
                 scan_threshold: int = DEFAULT_SCAN_THRESHOLD,
                 refine: bool = True,
                 pagefile_factory: Optional[
                     Callable[[int], PageFile]] = None):
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.config = config
        self.n_shards = n_shards
        self.policy = policy if policy is not None else HashShardPolicy()
        self.scan_threshold = scan_threshold
        self.refine = refine
        if pagefile_factory is None:
            pagefile_factory = lambda sid: InMemoryPageFile()  # noqa: E731
        per_shard_pages = max(16, pool_pages // n_shards)
        self._shards = [
            _Shard(sid, StripesIndex(
                config,
                BufferPool(pagefile_factory(sid),
                           capacity=per_shard_pages)))
            for sid in range(n_shards)
        ]
        # Shards shed after persistent storage failures: skipped by
        # queries until restore_shard() brings them back.
        self._degraded: set = set()
        self._degraded_lock = threading.Lock()
        # Newest lifetime window any shard has seen; advancing it rotates
        # *every* shard so a write-quiet shard still expires its entries
        # exactly when a serial single index would.
        self._max_window = -1
        self._window_lock = threading.Lock()
        self._registry = None
        self._shard_batch_hists: List = []

    # ---------------------------------------------------------------- #
    # Introspection
    # ---------------------------------------------------------------- #

    @property
    def shards(self) -> List[_Shard]:
        """The shard records (tests and metrics reach in; callers must
        honor the lock model)."""
        return self._shards

    def __len__(self) -> int:
        return sum(len(s.index) for s in self._shards)

    def shard_sizes(self) -> List[int]:
        """Live entries per shard."""
        return [len(s.index) for s in self._shards]

    def pages_in_use(self) -> int:
        """Pages holding records across all shards."""
        return sum(s.index.pages_in_use() for s in self._shards)

    # ---------------------------------------------------------------- #
    # Degraded-shard bookkeeping
    # ---------------------------------------------------------------- #

    def degraded_shards(self) -> frozenset:
        """Shard ids currently shed from query fan-out."""
        with self._degraded_lock:
            return frozenset(self._degraded)

    def mark_degraded(self, sid: int) -> None:
        """Shed shard ``sid``: queries skip it (returning the partial
        answer from the healthy shards) until :meth:`restore_shard`.
        The shard's index is left untouched -- writes may still target
        it, and restoring loses nothing."""
        if not 0 <= sid < self.n_shards:
            raise ValueError(f"shard id {sid} out of range")
        with self._degraded_lock:
            self._degraded.add(sid)

    def restore_shard(self, sid: int) -> None:
        """Bring a shed shard back into the query fan-out (no-op when it
        was not degraded)."""
        with self._degraded_lock:
            self._degraded.discard(sid)

    def __repr__(self) -> str:
        return (f"ShardedStripes(n_shards={self.n_shards}, "
                f"policy={type(self.policy).__name__}, "
                f"entries={self.shard_sizes()})")

    # ---------------------------------------------------------------- #
    # Window coordination
    # ---------------------------------------------------------------- #

    def _advance_windows(self, t: float) -> None:
        """Propagate a global window advance to every shard.

        A single index rotates when an update's window arrives; with
        shards, the update only reaches *one* partition, so the facade
        broadcasts the advance.  Idempotent and cheap when nothing moved.
        """
        window = int(t // self.config.lifetime)
        with self._window_lock:
            if window <= self._max_window:
                return
            self._max_window = window
        for shard in self._shards:
            with shard.lock.write():
                shard.index.rotate_to(window)
                shard.mirror.sync_windows(shard.index.live_windows)

    # ---------------------------------------------------------------- #
    # Writes
    # ---------------------------------------------------------------- #

    def _shard_for(self, obj: MovingObjectState) -> _Shard:
        return self._shards[self.policy.shard_of(obj, self.n_shards)]

    def _insert_locked(self, shard: _Shard, obj: MovingObjectState) -> None:
        index = shard.index
        window = int(obj.t // self.config.lifetime)
        index.insert(obj)
        shard.mirror.note_insert(
            window, shard.mirror.space_for(window).to_dual(obj))
        shard.mirror.sync_windows(index.live_windows)

    def _delete_locked(self, shard: _Shard, obj: MovingObjectState) -> bool:
        removed = shard.index.delete(obj)
        if removed:
            window = int(obj.t // self.config.lifetime)
            shard.mirror.note_delete(
                window, shard.mirror.space_for(window).to_dual(obj))
        return removed

    def insert(self, obj: MovingObjectState) -> None:
        """Insert a new predicted trajectory into its shard."""
        self._advance_windows(obj.t)
        shard = self._shard_for(obj)
        with shard.lock.write():
            self._insert_locked(shard, obj)

    def insert_batch(self, objs: Sequence[MovingObjectState]) -> int:
        """Insert many trajectories; returns the number inserted.

        Batched twin of per-object :meth:`insert`: the global window
        advance is applied once for the batch's newest timestamp, objects
        are grouped by shard, and each shard applies its whole group under
        a single exclusive-lock acquisition through
        :meth:`StripesIndex.insert_batch`, with the columnar mirror
        updated one window group at a time.  Query-equivalent to the
        sequential loop for timestamp-ordered batches.
        """
        objs = list(objs)
        if not objs:
            return 0
        self._advance_windows(max(obj.t for obj in objs))
        by_shard: Dict[int, List[MovingObjectState]] = {}
        for obj in objs:
            by_shard.setdefault(
                self.policy.shard_of(obj, self.n_shards), []).append(obj)
        for sid, group in by_shard.items():
            shard = self._shards[sid]
            with shard.lock.write():
                self._insert_batch_locked(shard, group)
        return len(objs)

    def _insert_batch_locked(self, shard: _Shard,
                             group: List[MovingObjectState]) -> None:
        index = shard.index
        index.insert_batch(group)
        lifetime = self.config.lifetime
        by_window: Dict[int, List[MovingObjectState]] = {}
        for obj in group:
            by_window.setdefault(int(obj.t // lifetime), []).append(obj)
        mirror = shard.mirror
        for window in sorted(by_window):
            mirror.note_insert_batch(
                window,
                mirror.space_for(window)
                .to_dual_batch(by_window[window]).points())
        # Drops mirror windows the group itself rotated out (a batch can
        # span the retiring edge).
        mirror.sync_windows(index.live_windows)

    def _delete_batch_locked(self, shard: _Shard,
                             group: List[MovingObjectState]) -> int:
        flags = shard.index.delete_batch(group)
        lifetime = self.config.lifetime
        by_window: Dict[int, List[MovingObjectState]] = {}
        for obj, ok in zip(group, flags):
            if ok:
                by_window.setdefault(int(obj.t // lifetime), []).append(obj)
        mirror = shard.mirror
        for window, removed in by_window.items():
            mirror.note_delete_batch(
                window,
                mirror.space_for(window).to_dual_batch(removed).points())
        return sum(flags)

    def delete_batch(self, objs: Sequence[MovingObjectState]) -> int:
        """Remove many entries; returns how many were actually removed.
        Objects are grouped by shard and each shard's group runs under
        one exclusive-lock acquisition."""
        objs = list(objs)
        if not objs:
            return 0
        by_shard: Dict[int, List[MovingObjectState]] = {}
        for obj in objs:
            by_shard.setdefault(
                self.policy.shard_of(obj, self.n_shards), []).append(obj)
        removed = 0
        for sid, group in by_shard.items():
            shard = self._shards[sid]
            with shard.lock.write():
                removed += self._delete_batch_locked(shard, group)
        return removed

    def update_batch(self, pairs: Sequence[Tuple[
            Optional[MovingObjectState], MovingObjectState]]) -> int:
        """Apply many ``(old, new)`` updates; returns removals observed.

        The batch is cut into *conflict-free runs* with exact update
        chains netted in place
        (:func:`repro.core.stripes._net_update_runs`) and each run is
        applied in order: window advance once for the run's newest
        timestamp, then every shard's deletes (batched, under that
        shard's lock), then every shard's inserts -- the cross-shard
        generalisation of delete-before-insert.  For timestamp-ordered
        batches the surviving entries (and therefore every query answer)
        match sequential :meth:`update` replay; the removed *count* can
        undercount pairs whose old entry sat in a window the batch
        itself rotated out.
        """
        lifetime = self.config.lifetime
        removed = 0
        for run, credit in _net_update_runs(
                pairs, lambda t: int(t // lifetime), len(self.config.vmax)):
            removed += self._apply_update_run(run) + credit
        return removed

    #: Runs below this size take the per-pair path (mirrors
    #: ``StripesIndex._WRITE_BATCH_MIN``).
    _UPDATE_RUN_MIN = 4

    def _apply_update_run(self, pairs: List[Tuple[
            Optional[MovingObjectState], MovingObjectState, int]]) -> int:
        """Apply one conflict-free run of ``(old, new, delete_window)``
        triples (each object id at most once); returns removals
        observed.  The delete window is ignored here: the facade
        advances every shard to the run's newest timestamp up front (one
        lock round per shard), which is where the documented
        removed-count undercount comes from."""
        if not pairs:
            return 0
        if len(pairs) < self._UPDATE_RUN_MIN:
            removed = 0
            for old, new, _ in pairs:
                if self.update(old, new):
                    removed += 1
            return removed
        self._advance_windows(max(new.t for _, new, _ in pairs))
        deletes: Dict[int, List[MovingObjectState]] = {}
        inserts: Dict[int, List[MovingObjectState]] = {}
        for old, new, _ in pairs:
            if old is not None:
                deletes.setdefault(
                    self.policy.shard_of(old, self.n_shards), []).append(old)
            inserts.setdefault(
                self.policy.shard_of(new, self.n_shards), []).append(new)
        removed = 0
        for sid, group in deletes.items():
            shard = self._shards[sid]
            with shard.lock.write():
                removed += self._delete_batch_locked(shard, group)
        for sid, group in inserts.items():
            shard = self._shards[sid]
            with shard.lock.write():
                self._insert_batch_locked(shard, group)
        return removed

    def delete(self, obj: MovingObjectState) -> bool:
        """Remove the entry previously inserted for ``obj``; False when
        expired or absent."""
        shard = self._shard_for(obj)
        with shard.lock.write():
            return self._delete_locked(shard, obj)

    def update(self, old: Optional[MovingObjectState],
               new: MovingObjectState) -> bool:
        """Delete ``old`` (if any, and not expired) and insert ``new``.

        Matches ``StripesIndex.update`` semantics: the window rotation
        rides on the *arrival* of the update, before the old entry is
        looked up.  When the policy maps old and new to different shards
        (a velocity-band migration), the two halves run under their own
        shards' locks.
        """
        self._advance_windows(new.t)
        new_shard = self._shard_for(new)
        old_shard = self._shard_for(old) if old is not None else None
        if old_shard is None or old_shard is new_shard:
            with new_shard.lock.write():
                removed = (self._delete_locked(new_shard, old)
                           if old is not None else False)
                self._insert_locked(new_shard, new)
            return removed
        with old_shard.lock.write():
            removed = self._delete_locked(old_shard, old)
        with new_shard.lock.write():
            self._insert_locked(new_shard, new)
        return removed

    # ---------------------------------------------------------------- #
    # Queries
    # ---------------------------------------------------------------- #

    def query(self, query: PredictiveQuery) -> List[int]:
        """Object ids matching ``query`` across all shards."""
        return self.query_batch([query])[0]

    def query_batch(self, queries: Sequence[PredictiveQuery]) \
            -> List[List[int]]:
        """Evaluate a batch of queries; ``result[k]`` corresponds to
        ``queries[k]`` (ids unordered).

        This is the fan-out + merge the service workers call: per shard,
        either the cross-query flat engine (small shard) or the tree
        batch descent (large shard), under the shard's shared lock.
        """
        if not queries:
            return []
        compiled = CompiledBatch(queries, self.config.d, refine=self.refine)
        results: List[List[int]] = [[] for _ in queries]
        use_clock = bool(self._shard_batch_hists)
        # Flat-path shards only contribute column *snapshots* under their
        # read lock; the evaluation itself runs lock-free afterwards
        # (rebuilds replace the arrays wholesale, so a collected ref stays
        # a consistent snapshot).  Snapshots are evaluated per
        # (shard, window) rather than concatenated: the narrower (B, N)
        # temporaries stay cache-resident, which measures faster than
        # fewer-but-wider kernel calls on this workload.
        flat_cols: List[tuple] = []
        degraded = self.degraded_shards()
        for shard in self._shards:
            if shard.sid in degraded:
                continue
            if use_clock:
                t0 = time.perf_counter()
            try:
                with shard.lock.read():
                    if shard.mirror.total_entries <= self.scan_threshold:
                        flat_cols.extend(shard.mirror.window_columns())
                    else:
                        # Tree descents mutate pool/cache state: they stay
                        # under the read lock plus the tree mutex.
                        with shard.tree_mutex:
                            shard_results = shard.index.query_batch(
                                queries, refine=self.refine)
                        for out, part in zip(results, shard_results):
                            out.extend(part)
            except TransientIOError as exc:
                # Tag the failure with its shard so the caller can retry
                # or shed precisely.  Results so far are NOT returned:
                # this batch attempt is void.
                raise ShardTransientError(shard.sid, exc) from exc
            if use_clock:
                self._shard_batch_hists[shard.sid].observe(
                    time.perf_counter() - t0)
        for space, oids, vs, ps in flat_cols:
            evaluate_batch(compiled, space, oids, vs, ps, results)
        return results

    # ---------------------------------------------------------------- #
    # Observability
    # ---------------------------------------------------------------- #

    def attach_metrics(self, registry, prefix: str = "sharded") -> None:
        """Export per-shard gauges and batch-evaluation histograms into
        ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`)."""
        from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S

        self._registry = registry
        self._shard_batch_hists = [
            registry.histogram(f"{prefix}_shard{shard.sid}_batch_seconds",
                               buckets=DEFAULT_LATENCY_BUCKETS_S,
                               help="per-shard batch evaluation latency")
            for shard in self._shards
        ]
        entry_gauges = [
            registry.gauge(f"{prefix}_shard{shard.sid}_entries",
                           help="live entries on this shard")
            for shard in self._shards
        ]
        pages = registry.gauge(f"{prefix}_pages_in_use",
                               help="record pages across all shards")
        shards_gauge = registry.gauge(f"{prefix}_shards", help="shard count")
        degraded_gauge = registry.gauge(
            f"{prefix}_degraded_shards",
            help="shards currently shed from query fan-out")

        def collect() -> None:
            for gauge, shard in zip(entry_gauges, self._shards):
                gauge.set(len(shard.index))
            pages.set(self.pages_in_use())
            shards_gauge.set(self.n_shards)
            degraded_gauge.set(len(self.degraded_shards()))

        registry.register_collector(collect)
