"""In-process client and closed-loop load driver for the query service.

:class:`ServiceClient` is the thin synchronous handle callers hold; it
exists so application code talks to an interface, not to the service's
queue internals (a remote transport would slot in behind the same
surface).

:class:`LoadDriver` is the measurement companion: ``n_threads`` closed-
loop clients (each issues a query, waits for the result, immediately
issues the next -- classic closed-loop load generation) hammer the
service for a fixed number of requests per thread, recording per-request
latencies.  The resulting :class:`LoadReport` carries throughput and
exact p50/p95/p99 latencies (computed from the raw sample list, not a
histogram) plus rejection/timeout counts, which is what ``stripes-bench
serve`` prints and snapshots.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.query.types import PredictiveQuery
from repro.service.service import (
    Overloaded,
    RequestTimeout,
    ServiceClosed,
    StripesService,
)

__all__ = ["ServiceClient", "LoadDriver", "LoadReport"]


class ServiceClient:
    """Synchronous in-process client for a :class:`StripesService`."""

    def __init__(self, service: StripesService):
        self._service = service

    def query(self, query: PredictiveQuery,
              timeout_s: Optional[float] = None) -> List[int]:
        """Evaluate ``query``; raises ``Overloaded`` / ``RequestTimeout``
        / ``ServiceClosed`` exactly as the service signals them."""
        return self._service.query(query, timeout_s=timeout_s)


def _exact_percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    rank = min(len(sorted_samples) - 1,
               max(0, int(q * len(sorted_samples) + 0.5) - 1))
    return sorted_samples[rank]


@dataclass
class LoadReport:
    """Outcome of one closed-loop load run."""

    threads: int = 0
    offered: int = 0
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    duration_s: float = 0.0
    throughput_qps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in (
            "threads", "offered", "completed", "rejected", "timeouts",
            "errors", "duration_s", "throughput_qps", "p50_ms", "p95_ms",
            "p99_ms", "mean_ms")}

    def format(self) -> str:
        return (f"{self.completed}/{self.offered} ok "
                f"({self.rejected} rejected, {self.timeouts} timed out, "
                f"{self.errors} errors) in {self.duration_s:.2f}s -> "
                f"{self.throughput_qps:,.0f} q/s; latency "
                f"p50 {self.p50_ms:.2f} / p95 {self.p95_ms:.2f} / "
                f"p99 {self.p99_ms:.2f} ms")


@dataclass
class _ThreadStats:
    latencies_s: List[float] = field(default_factory=list)
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    issued: int = 0


class LoadDriver:
    """Closed-loop multi-threaded load against a :class:`StripesService`.

    Each thread walks the shared query list round-robin from its own
    offset, so all queries are exercised regardless of thread count and
    two threads never need coordination.  ``backoff_s`` is slept after an
    ``Overloaded`` rejection before retrying with the *next* query --
    rejected work is counted, not resubmitted, keeping the loop honest
    about admission control.
    """

    def __init__(self, service: StripesService,
                 queries: Sequence[PredictiveQuery],
                 n_threads: int = 4,
                 requests_per_thread: int = 200,
                 timeout_s: Optional[float] = None,
                 backoff_s: float = 0.0):
        if not queries:
            raise ValueError("LoadDriver needs at least one query")
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self._service = service
        self._queries = list(queries)
        self.n_threads = n_threads
        self.requests_per_thread = requests_per_thread
        self.timeout_s = timeout_s
        self.backoff_s = backoff_s

    def _client_loop(self, offset: int, stats: _ThreadStats,
                     start_gate: threading.Event) -> None:
        client = ServiceClient(self._service)
        queries = self._queries
        n = len(queries)
        start_gate.wait()
        for k in range(self.requests_per_thread):
            query = queries[(offset + k) % n]
            stats.issued += 1
            t0 = time.perf_counter()
            try:
                client.query(query, timeout_s=self.timeout_s)
            except Overloaded:
                stats.rejected += 1
                if self.backoff_s:
                    time.sleep(self.backoff_s)
                continue
            except RequestTimeout:
                stats.timeouts += 1
                continue
            except ServiceClosed:
                break
            except Exception:  # noqa: BLE001 - counted, run continues
                stats.errors += 1
                continue
            stats.latencies_s.append(time.perf_counter() - t0)

    def run(self) -> LoadReport:
        """Drive the load and aggregate a :class:`LoadReport`."""
        per_thread = [_ThreadStats() for _ in range(self.n_threads)]
        start_gate = threading.Event()
        stride = max(1, len(self._queries) // self.n_threads)
        threads = [
            threading.Thread(target=self._client_loop,
                             args=(i * stride, per_thread[i], start_gate),
                             name=f"load-client-{i}", daemon=True)
            for i in range(self.n_threads)
        ]
        for thread in threads:
            thread.start()
        t0 = time.perf_counter()
        start_gate.set()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - t0

        latencies = sorted(s for stats in per_thread
                           for s in stats.latencies_s)
        completed = len(latencies)
        report = LoadReport(
            threads=self.n_threads,
            offered=sum(s.issued for s in per_thread),
            completed=completed,
            rejected=sum(s.rejected for s in per_thread),
            timeouts=sum(s.timeouts for s in per_thread),
            errors=sum(s.errors for s in per_thread),
            duration_s=duration,
            throughput_qps=completed / duration if duration > 0 else 0.0,
            p50_ms=_exact_percentile(latencies, 0.50) * 1e3,
            p95_ms=_exact_percentile(latencies, 0.95) * 1e3,
            p99_ms=_exact_percentile(latencies, 0.99) * 1e3,
            mean_ms=(sum(latencies) / completed * 1e3) if completed else 0.0,
        )
        return report
