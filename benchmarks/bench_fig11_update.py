"""E3 / Figure 11: average per-update cost (IO + CPU components).

Paper shape: STRIPES updates are more than an order of magnitude cheaper
than TPR* updates, driven by single-path descents versus ChoosePath's
multi-path traversal and forced reinsertion.  Under the Python substrate
the *CPU* component of that gap reproduces robustly at every scale and is
asserted; the IO component is scale-dependent (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_fig11_per_update_cost(benchmark, scale):
    runs = run_once(benchmark,
                    lambda: experiments.workload_mix_runs(scale))
    for mix, results in runs.items():
        print()
        print(render_cost_table(f"Figure 11 analog ({mix} mix)", results,
                                scale.disk))
        stripes = results["STRIPES"].updates
        tprstar = results["TPR*"].updates
        # STRIPES single-path updates must beat TPR* ChoosePath on CPU.
        assert stripes.mean_cpu_seconds() < tprstar.mean_cpu_seconds(), (
            f"{mix}: STRIPES update CPU {stripes.mean_cpu_seconds()} !< "
            f"TPR* {tprstar.mean_cpu_seconds()}")
