"""A2: the Section 4.6.4 quad-pruning optimisation on/off.

Classifying each plane's four quads once per node (instead of once per
child) changes no answers and no IOs -- only query CPU.  Identical
answers/IOs are asserted; the CPU difference is reported.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_ablation_quad_pruning(benchmark, scale):
    results = run_once(benchmark,
                       lambda: experiments.pruning_ablation(scale))
    print()
    print(render_cost_table("A2: quad pruning", results, scale.disk))
    pruned = results["pruned"]
    unpruned = results["unpruned"]
    assert pruned.query_hits == unpruned.query_hits
    assert pruned.queries.physical_io == unpruned.queries.physical_io
    speedup = (unpruned.queries.mean_cpu_seconds()
               / max(pruned.queries.mean_cpu_seconds(), 1e-12))
    print(f"query CPU speedup from pruning: {speedup:.2f}x")
