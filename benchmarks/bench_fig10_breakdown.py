"""E2 / Figure 10: total IO and CPU cost breakdown over the measured
operations (log-scale bars in the paper).

Paper shape: STRIPES' CPU component is far below the TPR*-tree's (the
TPR* pays for integral metrics, ChoosePath, and reinsert sorting).
The CPU ordering is asserted for update-heavy mixes.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_breakdown


def test_fig10_cost_breakdown(benchmark, scale):
    runs = run_once(benchmark,
                    lambda: experiments.workload_mix_runs(scale))
    for mix, results in runs.items():
        print()
        print(render_breakdown(f"Figure 10 analog ({mix} mix)", results,
                               scale.disk))
    # Update-heavy mix: STRIPES must spend less CPU on updates overall.
    heavy = runs["80-20"]
    assert heavy["STRIPES"].updates.cpu_seconds \
        < heavy["TPR*"].updates.cpu_seconds
