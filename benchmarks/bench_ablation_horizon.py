"""A4: TPR*-tree sensitivity to the metric-integration horizon H.

The TPR family's structure quality depends on integrating its metrics
over a horizon matched to the query window (Section 3.1).  This ablation
shows how far a mis-tuned horizon degrades TPR* queries -- one candidate
explanation for the large STRIPES-vs-TPR* query gaps the paper reports
(its TPR* was "optimized for static point interval query").
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_ablation_horizon(benchmark, scale):
    results = run_once(benchmark,
                       lambda: experiments.horizon_ablation(scale))
    named = {f"H={h:g}": r for h, r in results.items()}
    print()
    print(render_cost_table("A4: TPR* horizon sensitivity", named,
                            scale.disk))
    for result in results.values():
        assert result.queries.count > 0
