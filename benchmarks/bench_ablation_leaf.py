"""A1: the two-leaf-size scheme of Section 5.1 versus single-size leaves.

The paper adopts small (half-page) newborn leaves promoted to large
(full-page) on first overflow, "nearly doubling" leaf page occupancy.
The ablation asserts the space saving; per-op costs are reported.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table, render_load


def test_ablation_leaf_sizes(benchmark, scale):
    results = run_once(benchmark,
                       lambda: experiments.leaf_size_ablation(scale))
    print()
    print(render_load("A1: index size", results, scale.disk))
    print()
    print(render_cost_table("A1: per-op costs", results, scale.disk))
    two = results["two-sizes"]
    single = results["single-size"]
    ladder = results["ladder-4"]
    # Each refinement of the sizing scheme must not use more pages; the
    # paper credits two sizes with ~doubling occupancy and proposes more
    # sizes as future work.
    assert two.pages_used <= single.pages_used
    assert ladder.pages_used <= two.pages_used
