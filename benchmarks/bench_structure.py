"""E7 / Section 5.1: structural statistics after loading the 500K-analog
uniform data set with the paper's 4-byte-float layout.

Paper numbers at 500K: STRIPES ~11,200 pages vs TPR* ~4,600 (ratio ~2.4x);
STRIPES height up to 7 vs TPR* height 4; 1,486 non-leaf nodes of 352 bytes
(~11 per page); leaf occupancy ~24 % with the two-size scheme.  The
benchmark asserts the scale-free parts of that story: STRIPES is the
larger index by roughly the paper's factor, its non-leaf footprint is a
tiny fraction of the total, and several non-leaf records share one page.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import ExperimentScale
from repro.storage.page import PAGE_SIZE

# Structure statistics need enough objects for leaf occupancy to settle
# (at a few hundred objects both indexes are a handful of pages and the
# ratio is noise).  Loading is insert-only and cheap, so this benchmark
# enforces a floor of 2% of paper scale (10K objects).
MIN_SCALE = 0.02


def test_structure_stats(benchmark, scale):
    if scale.scale < MIN_SCALE:
        scale = ExperimentScale(scale=MIN_SCALE, seed=scale.seed)
    stats = run_once(benchmark,
                     lambda: experiments.structure_stats(scale))
    print()
    print(f"STRIPES pages {stats.stripes_pages}, height "
          f"{stats.stripes_height}, non-leaf nodes "
          f"{stats.stripes_nonleaf_nodes} x {stats.stripes_nonleaf_bytes} B, "
          f"leaves {stats.stripes_small_leaves} small / "
          f"{stats.stripes_large_leaves} large, occupancy "
          f"{stats.stripes_leaf_occupancy:.1%}")
    print(f"TPR* pages {stats.tprstar_pages}, height {stats.tprstar_height}")
    print(f"size ratio {stats.size_ratio:.2f}x (paper ~2.4x)")

    # STRIPES is the larger index, in the paper's ballpark (2.4x +/- wide).
    assert 1.2 <= stats.size_ratio <= 6.0
    # Non-leaf records are small: several fit per page (paper: ~11).
    assert stats.stripes_nonleaf_bytes * 4 <= PAGE_SIZE
    # Non-leaf footprint is a small fraction of the index.
    nonleaf_pages = (stats.stripes_nonleaf_nodes
                     * stats.stripes_nonleaf_bytes + PAGE_SIZE - 1) \
        // PAGE_SIZE
    assert nonleaf_pages <= 0.2 * stats.stripes_pages + 1
    # The unbalanced quadtree is taller than the TPR* R-tree.
    assert stats.stripes_height >= stats.tprstar_height
