"""Benchmarks for the future-work extensions: predictive kNN and distance
joins, STRIPES vs TPR* vs the exact scan baseline.

Correctness is asserted (index answers must match the oracle's distances /
pair sets); timings show where the index-based algorithms beat the scan.
"""

import random

import pytest

from repro.core.stripes import StripesConfig, StripesIndex
from repro.baselines.scan import ScanIndex
from repro.extensions import distance_join, knn
from repro.query.types import MovingObjectState
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTreeConfig

N_OBJECTS = 4_000
PMAX = (1000.0, 1000.0)
VMAX = 3.0


@pytest.fixture(scope="module")
def loaded_indexes():
    rng = random.Random(17)
    stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                         lifetime=120.0))
    pool = BufferPool(InMemoryPageFile(), capacity=4096)
    tprstar = TPRStarTree(TPRTreeConfig(d=2, horizon=60.0),
                          RecordStore(pool))
    scan = ScanIndex(120.0)
    for oid in range(N_OBJECTS):
        state = MovingObjectState(
            oid,
            (rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1])),
            (rng.uniform(-VMAX, VMAX), rng.uniform(-VMAX, VMAX)),
            0.0)
        stripes.insert(state)
        tprstar.insert(state)
        scan.insert(state)
    return {"STRIPES": stripes, "TPR*": tprstar, "SCAN": scan}


@pytest.mark.parametrize("name", ["STRIPES", "TPR*", "SCAN"])
def test_knn_benchmark(benchmark, loaded_indexes, name):
    index = loaded_indexes[name]
    oracle = loaded_indexes["SCAN"]
    rng = random.Random(23)
    queries = [((rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1])),
                rng.uniform(0, 60)) for _ in range(64)]
    state = {"i": 0}

    def op():
        point, t = queries[state["i"] % len(queries)]
        state["i"] += 1
        return knn(index, point, t, k=10)

    result = benchmark(op)
    expected = knn(oracle, queries[(state["i"] - 1) % len(queries)][0],
                   queries[(state["i"] - 1) % len(queries)][1], k=10)
    assert [round(d, 6) for _, d in result] \
        == [round(d, 6) for _, d in expected]


@pytest.mark.parametrize("name", ["STRIPES", "TPR*", "SCAN"])
def test_self_join_benchmark(benchmark, loaded_indexes, name):
    index = loaded_indexes[name]

    def op():
        return distance_join(index, index, radius=3.0, t=30.0)

    pairs = benchmark.pedantic(op, rounds=1, iterations=1)
    expected = distance_join(loaded_indexes["SCAN"], loaded_indexes["SCAN"],
                             radius=3.0, t=30.0)
    assert pairs == expected
