"""X4-X6: parameter sweeps beyond the paper's figures.

* Dimensionality (the paper's core motivation: boxes degrade with d,
  points do not);
* query spatial selectivity;
* query temporal range W.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_dimension_sweep(benchmark, scale):
    runs = run_once(benchmark, lambda: experiments.dimension_sweep(scale))
    for d, results in runs.items():
        print()
        print(render_cost_table(f"X4: d = {d}", results, scale.disk))
        # The STRIPES update-CPU advantage must hold in every
        # dimensionality (single-path point inserts vs box maintenance).
        assert results["STRIPES"].updates.mean_cpu_seconds() \
            < results["TPR*"].updates.mean_cpu_seconds()
    ratios = {d: (results["TPR*"].updates.mean_cpu_seconds()
                  / max(results["STRIPES"].updates.mean_cpu_seconds(),
                        1e-12))
              for d, results in runs.items()}
    print(f"\nupdate CPU ratio TPR*/STRIPES by dimension: "
          + ", ".join(f"d={d}: {r:.1f}x" for d, r in ratios.items()))


def test_selectivity_sweep(benchmark, scale):
    runs = run_once(benchmark, lambda: experiments.selectivity_sweep(scale))
    hits = []
    for fraction, results in runs.items():
        print()
        print(render_cost_table(f"X5: query area fraction = {fraction}",
                                results, scale.disk))
        hits.append(results["STRIPES"].query_hits)
    # Bigger queries return more results.
    assert hits == sorted(hits)


def test_temporal_range_sweep(benchmark, scale):
    runs = run_once(benchmark,
                    lambda: experiments.temporal_range_sweep(scale))
    for window, results in runs.items():
        print()
        print(render_cost_table(f"X6: temporal range W = {window:g}",
                                results, scale.disk))
        for result in results.values():
            assert result.queries.count > 0
