"""E8 / Section 5.6 headline claims, asserted where scale-robust.

The paper's summary: STRIPES updates are often more than an order of
magnitude faster than TPR* updates; queries are ~4x faster; both hold in
IO and CPU.  Under a Python substrate at reduced scale, the robust subset
is: (1) STRIPES update CPU is several times cheaper, (2) STRIPES updates
stay within a handful of IOs (single-path descents, resident non-leaf
directory), (3) the TPR*-tree pays the documented ChoosePath/reinsert CPU
premium on inserts.  Full-scale recorded results live in EXPERIMENTS.md.
"""

from conftest import run_once

from repro.bench import experiments


def test_headline_claims(benchmark, scale):
    runs = run_once(
        benchmark,
        lambda: experiments.workload_mix_runs(scale, mixes=(0.5,)))
    results = runs["50-50"]
    stripes = results["STRIPES"]
    tprstar = results["TPR*"]

    # (1) STRIPES update CPU advantage (paper: >10x total; assert >1.5x on
    #     CPU, which is the substrate-independent component).
    ratio = (tprstar.updates.mean_cpu_seconds()
             / max(stripes.updates.mean_cpu_seconds(), 1e-12))
    print(f"\nupdate CPU ratio TPR*/STRIPES = {ratio:.1f}x")
    assert ratio > 1.5

    # (2) STRIPES updates cost only a handful of IOs: at most two
    #     root-to-leaf traversals (Section 5.3: "a handful of IOs").
    print(f"STRIPES update IO/op = {stripes.updates.mean_io():.2f}")
    assert stripes.updates.mean_io() <= 8.0

    # (3) Both indexes answered every query; hit counts are plausible.
    assert stripes.queries.count == tprstar.queries.count > 0
