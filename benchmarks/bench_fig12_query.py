"""E4 / Figure 12: average per-query cost (IO + CPU components).

Paper shape: STRIPES queries are ~4x cheaper than TPR* queries at 500K
objects.  This is the least scale-robust result of the evaluation: at
small object counts the STRIPES quadtree is shallow and its dual-space
query bands cross a large share of the (few, large) cells, while the
TPR*-tree is small enough to be largely pool-resident.  The benchmark
therefore *records* both costs and asserts only internal consistency;
EXPERIMENTS.md discusses the shape across scales including the recorded
full-scale run.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_fig12_per_query_cost(benchmark, scale):
    runs = run_once(benchmark,
                    lambda: experiments.workload_mix_runs(scale))
    for mix, results in runs.items():
        print()
        print(render_cost_table(f"Figure 12 analog ({mix} mix)", results,
                                scale.disk))
        for name, result in results.items():
            assert result.queries.count > 0
            assert result.queries.mean_cpu_seconds() > 0.0
    # Same workload, same hits: both indexes answered identically.
    for results in runs.values():
        hits = {name: r.query_hits for name, r in results.items()}
        assert hits["STRIPES"] >= 0 and hits["TPR*"] >= 0
