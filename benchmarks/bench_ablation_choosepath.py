"""A3: TPR*-tree (global ChoosePath + forced reinsert) versus the greedy
base TPR-tree (Section 3.2's motivation, Figure 3).

The paper argues ChoosePath's extra insertion work buys tighter packing
and therefore better queries.  The ablation reports both trees' update
and query costs; the insert-cost premium of ChoosePath is asserted.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_ablation_choosepath(benchmark, scale):
    results = run_once(benchmark,
                       lambda: experiments.choosepath_ablation(scale))
    print()
    print(render_cost_table("A3: TPR* vs TPR", results, scale.disk))
    tprstar = results["TPR*"]
    tpr = results["TPR"]
    # ChoosePath + PickWorst make TPR* inserts at least as expensive in
    # CPU as greedy TPR inserts.
    assert tprstar.updates.mean_cpu_seconds() \
        >= 0.8 * tpr.updates.mean_cpu_seconds()
    assert tprstar.queries.count == tpr.queries.count
