"""Shared configuration for the figure-reproduction benchmarks.

Every benchmark runs the corresponding paper experiment at
``STRIPES_BENCH_SCALE`` (default 0.002, i.e. 1K objects for the paper's
500K) so the whole suite finishes in a couple of minutes under CPython.
Set the environment variable higher for more faithful shapes -- see
EXPERIMENTS.md for recorded full-scale (1.0) results::

    STRIPES_BENCH_SCALE=0.01 pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

from repro.bench.experiments import ExperimentScale

DEFAULT_SCALE = 0.002


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    value = float(os.environ.get("STRIPES_BENCH_SCALE", DEFAULT_SCALE))
    return ExperimentScale(scale=value, seed=7)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
