"""E6 / Figure 14: network-skewed data sets (ND = 20 and 60, 50-50 mix).

Paper shape: "both index structures handle skewed data sets well" -- the
per-op costs under skew stay in the same regime as the uniform 50-50
workload, and the ordering between the indexes does not flip with ND.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_fig14_skew(benchmark, scale):
    def run():
        skewed = experiments.skew(scale)
        uniform = experiments.workload_mix_runs(scale, mixes=(0.5,))
        return skewed, uniform

    skewed, uniform = run_once(benchmark, run)
    base = uniform["50-50"]
    print()
    print(render_cost_table("uniform 50-50 (reference)", base, scale.disk))
    for nd, results in skewed.items():
        print()
        print(render_cost_table(f"Figure 14 analog (ND={nd})", results,
                                scale.disk))
        for name in ("STRIPES", "TPR*"):
            skew_upd = results[name].updates.mean_cpu_seconds()
            base_upd = base[name].updates.mean_cpu_seconds()
            # Skew must not blow up update cost (paper: handled well).
            assert skew_upd < 5.0 * base_upd + 1e-4, (
                f"{name} ND={nd}: skewed update CPU {skew_upd} vs uniform "
                f"{base_upd}")
        # STRIPES' update CPU advantage survives skew.
        assert results["STRIPES"].updates.mean_cpu_seconds() \
            < results["TPR*"].updates.mean_cpu_seconds()
