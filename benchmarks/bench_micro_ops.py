"""Micro-benchmarks of the core operations (proper repeated-measurement
pytest-benchmark timings, complementing the one-shot figure experiments):

* STRIPES insert / update / delete / the three query types;
* TPR*-tree insert / update / query;
* the dual transform and query-region construction;
* a (non-timed) smoke check that the metrics export stays well-formed
  against a benchmark-sized index.
"""

import itertools
import json
import random

import pytest

from repro.core.dual import DualSpace
from repro.obs import MetricsRegistry
from repro.core.query_region import build_query_regions
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTreeConfig

PMAX = (1000.0, 1000.0)
VMAX = (3.0, 3.0)
LIFETIME = 120.0
N_LOADED = 3_000


def random_state(rng, oid, t=0.0):
    return MovingObjectState(
        oid,
        (rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1])),
        (rng.uniform(-VMAX[0], VMAX[0]), rng.uniform(-VMAX[1], VMAX[1])),
        t)


@pytest.fixture(scope="module")
def loaded_stripes():
    rng = random.Random(5)
    index = StripesIndex(StripesConfig(vmax=VMAX, pmax=PMAX,
                                       lifetime=LIFETIME))
    states = {}
    for oid in range(N_LOADED):
        state = random_state(rng, oid)
        index.insert(state)
        states[oid] = state
    return index, states


@pytest.fixture(scope="module")
def loaded_tprstar():
    rng = random.Random(6)
    pool = BufferPool(InMemoryPageFile(), capacity=4096)
    tree = TPRStarTree(TPRTreeConfig(d=2, horizon=60.0), RecordStore(pool))
    states = {}
    for oid in range(N_LOADED):
        state = random_state(rng, oid)
        tree.insert(state)
        states[oid] = state
    return tree, states


class TestStripesOps:
    def test_insert(self, benchmark, loaded_stripes):
        index, _ = loaded_stripes
        rng = random.Random(7)
        counter = itertools.count(10_000_000)

        def op():
            index.insert(random_state(rng, next(counter)))

        benchmark(op)

    def test_update(self, benchmark, loaded_stripes):
        index, states = loaded_stripes
        rng = random.Random(8)

        def op():
            oid = rng.randrange(N_LOADED)
            new = random_state(rng, oid, t=rng.uniform(0, LIFETIME - 1))
            index.update(states[oid], new)
            states[oid] = new

        benchmark(op)

    def test_time_slice_query(self, benchmark, loaded_stripes):
        index, _ = loaded_stripes
        rng = random.Random(9)

        def op():
            x, y = rng.uniform(0, 950), rng.uniform(0, 950)
            return index.query(TimeSliceQuery((x, y), (x + 50, y + 50),
                                              rng.uniform(0, 40)))

        benchmark(op)

    def test_window_query(self, benchmark, loaded_stripes):
        index, _ = loaded_stripes
        rng = random.Random(10)

        def op():
            x, y = rng.uniform(0, 950), rng.uniform(0, 950)
            t1 = rng.uniform(0, 20)
            return index.query(WindowQuery((x, y), (x + 50, y + 50),
                                           t1, t1 + 20))

        benchmark(op)

    def test_moving_query(self, benchmark, loaded_stripes):
        index, _ = loaded_stripes
        rng = random.Random(11)

        def op():
            x, y = rng.uniform(0, 900), rng.uniform(0, 900)
            t1 = rng.uniform(0, 20)
            return index.query(MovingQuery(
                (x, y), (x + 50, y + 50),
                (x + 40, y + 40), (x + 90, y + 90), t1, t1 + 20))

        benchmark(op)


class TestTPRStarOps:
    def test_insert(self, benchmark, loaded_tprstar):
        tree, _ = loaded_tprstar
        rng = random.Random(12)
        counter = itertools.count(20_000_000)

        def op():
            tree.insert(random_state(rng, next(counter)))

        benchmark(op)

    def test_update(self, benchmark, loaded_tprstar):
        tree, states = loaded_tprstar
        rng = random.Random(13)

        def op():
            oid = rng.randrange(N_LOADED)
            new = random_state(rng, oid, t=tree.now)
            tree.update(states[oid], new)
            states[oid] = new

        benchmark(op)

    def test_time_slice_query(self, benchmark, loaded_tprstar):
        tree, _ = loaded_tprstar
        rng = random.Random(14)

        def op():
            x, y = rng.uniform(0, 950), rng.uniform(0, 950)
            return tree.query(TimeSliceQuery((x, y), (x + 50, y + 50),
                                             tree.now + rng.uniform(0, 40)))

        benchmark(op)


class TestMetricsExport:
    """CI smoke: attaching a registry to a loaded index must yield a
    well-formed JSON snapshot and Prometheus exposition (skipped under
    ``--benchmark-only``; it asserts correctness, not speed)."""

    def test_metrics_json_well_formed(self, loaded_stripes):
        index, _ = loaded_stripes
        registry = MetricsRegistry()
        index.attach_metrics(registry)
        data = json.loads(registry.to_json())
        assert set(data) == {"counters", "gauges", "histograms"}
        assert data["counters"]["stripes_inserts_total"] >= N_LOADED
        assert data["gauges"]["stripes_entries"] >= N_LOADED
        text = registry.expose_text()
        assert "# TYPE stripes_inserts_total counter" in text
        assert text.endswith("\n")

    def test_tprstar_metrics_json_well_formed(self, loaded_tprstar):
        tree, _ = loaded_tprstar
        registry = MetricsRegistry()
        tree.attach_metrics(registry)
        data = json.loads(registry.to_json())
        assert data["counters"]["tpr_inserts_total"] >= N_LOADED
        assert data["counters"]["tpr_choosepath_pops_total"] > 0


class TestPrimitives:
    def test_dual_transform(self, benchmark):
        space = DualSpace(vmax=VMAX, pmax=PMAX, lifetime=LIFETIME)
        rng = random.Random(15)
        states = [random_state(rng, oid, t=rng.uniform(0, 100))
                  for oid in range(512)]
        it = itertools.cycle(states)
        benchmark(lambda: space.to_dual(next(it)))

    def test_query_region_construction(self, benchmark):
        rng = random.Random(16)
        queries = [WindowQuery((x, x), (x + 50.0, x + 50.0),
                               10.0, 30.0).as_moving()
                   for x in (rng.uniform(0, 900) for _ in range(256))]
        it = itertools.cycle(queries)
        benchmark(lambda: build_query_regions(next(it), VMAX, LIFETIME, 0.0))
