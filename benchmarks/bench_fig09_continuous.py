"""E1 / Figure 9: continuous performance per batch of operations.

Paper shape: both STRIPES and the TPR*-tree are flat across batches
(steady state); STRIPES' total batch cost is lower.  The steady-state
flatness is asserted; the cost ordering is reported (it is scale-dependent
under the Python substrate -- see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_batches


def test_fig09_continuous_performance(benchmark, scale):
    runs = run_once(benchmark,
                    lambda: experiments.continuous_performance(scale))
    for mix, results in runs.items():
        print()
        print(render_batches(f"Figure 9 analog ({mix} mix)", results,
                             scale.disk))
        for name, result in results.items():
            batches = result.batches
            assert batches, f"{name} produced no batches"
            # Steady state: no batch (after warm-up) costs more than 4x the
            # median batch -- the paper's Figure 9 shows flat series.
            costs = sorted(b.total_seconds(scale.disk) for b in batches[1:]
                           if b.ops == batches[0].ops)
            if len(costs) >= 3:
                median = costs[len(costs) // 2]
                assert costs[-1] <= 4.0 * median + 1e-3, (
                    f"{name} {mix}: batch costs degrade over time: {costs}")
