"""E5 / Figure 13: effect of the number of moving objects (100K vs 900K
analogs, 50-50 mix).

Paper shape: at 100K the whole TPR*-tree fits in the 2048-page pool, so
its queries incur no IO and beat STRIPES by ~35 %; STRIPES updates remain
~5x faster.  At 900K the gap between the indexes widens in STRIPES'
favour.  The pool-residency crossover (TPR* index pages <= pool at the
100K analog, > pool at the 900K analog) is asserted, as is the zero query
IO it implies for TPR*.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.report import render_cost_table


def test_fig13_scaling(benchmark, scale):
    runs = run_once(benchmark, lambda: experiments.scaling(scale))
    for paper_n, results in runs.items():
        print()
        print(render_cost_table(
            f"Figure 13 analog ({paper_n // 1000}K objects)", results,
            scale.disk))
    small = runs[100_000]
    large = runs[900_000]
    # The 100K-analog TPR*-tree fits in the pool: queries read no pages.
    assert small["TPR*"].pages_used <= scale.pool_pages
    assert small["TPR*"].queries.physical_io == 0
    # The 900K-analog does not fit.
    assert large["TPR*"].pages_used > scale.pool_pages
    # STRIPES update CPU advantage holds at both sizes.
    for results in (small, large):
        assert results["STRIPES"].updates.mean_cpu_seconds() \
            < results["TPR*"].updates.mean_cpu_seconds()
