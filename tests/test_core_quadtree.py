"""Unit, structural-invariant, and property tests for the dual-space
bucket PR quadtree (Sections 4.2-4.4, 4.6.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dual import DualPoint, DualSpace
from repro.core.nodes import INVALID_RID, LeafNode, NonLeafNode
from repro.core.quadtree import DualQuadTree, QuadTreeConfig
from repro.core.query_region import build_query_regions
from repro.query.types import TimeSliceQuery, WindowQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile

SPACE = DualSpace(vmax=(3.0, 3.0), pmax=(100.0, 100.0), lifetime=10.0)
# Velocity extent (6, 6); position extent (160, 160).


def make_tree(config=QuadTreeConfig(), pool_pages=4096, space=SPACE):
    pool = BufferPool(InMemoryPageFile(), capacity=pool_pages)
    return DualQuadTree(space, RecordStore(pool), config)


def random_point(rng, oid, space=SPACE):
    return DualPoint(
        oid,
        tuple(rng.uniform(0, e) for e in space.velocity_extent),
        tuple(rng.uniform(0, e) for e in space.position_extent))


def check_invariants(tree):
    """Walk the whole tree checking structural invariants:

    * non-leaf ``size`` equals the number of entries in its subtree;
    * every entry lies inside its leaf's grid cell;
    * child cells tile the parent cell (corner arithmetic consistent);
    * levels increase by one per edge; no leaf deeper than max_depth.
    """
    def walk(rid, is_leaf, level, v_corner, p_corner):
        sl_v, sl_p = tree._child_sides(level)
        node = tree.cache.get(rid)
        if is_leaf:
            assert isinstance(node, LeafNode)
            assert node.level == level <= tree.config.max_depth
            assert node.v_corner == v_corner
            assert node.p_corner == p_corner
            entries = tree._leaf_all_entries(node)
            for entry in entries:
                for i in range(tree.d):
                    assert v_corner[i] <= entry.v[i] <= v_corner[i] + sl_v[i]
                    assert p_corner[i] <= entry.p[i] <= p_corner[i] + sl_p[i]
            return len(entries)
        assert isinstance(node, NonLeafNode)
        assert node.level == level
        total = 0
        for idx in node.present_children():
            cv, cp = tree._child_corner(node, idx)
            total += walk(node.children[idx], node.child_is_leaf[idx],
                          level + 1, cv, cp)
        assert node.size == total, (
            f"non-leaf at level {level} says size={node.size}, subtree "
            f"has {total}")
        return total

    total = walk(tree._root_rid, tree._root_is_leaf, 0,
                 (0.0,) * tree.d, (0.0,) * tree.d)
    assert total == tree.count


class TestInsert:
    def test_empty_tree(self):
        tree = make_tree()
        assert tree.count == 0
        assert tree.all_entries() == []
        check_invariants(tree)

    def test_single_insert(self):
        tree = make_tree()
        point = DualPoint(1, (1.0, 2.0), (3.0, 4.0))
        tree.insert(point)
        assert tree.count == 1
        assert tree.all_entries() == [point]
        check_invariants(tree)

    def test_root_leaf_splits_on_overflow(self):
        tree = make_tree()
        rng = random.Random(1)
        for oid in range(tree.large_capacity + 5):
            tree.insert(random_point(rng, oid))
        stats = tree.stats()
        assert stats.nonleaf_nodes >= 1
        assert stats.height >= 2
        check_invariants(tree)

    def test_small_leaf_promoted_to_large(self):
        tree = make_tree()
        rng = random.Random(2)
        for oid in range(tree.small_capacity + 1):
            tree.insert(random_point(rng, oid))
        stats = tree.stats()
        # One overflow of a small root leaf: promoted, not split.
        assert stats.large_leaves == 1
        assert stats.small_leaves == 0
        assert stats.nonleaf_nodes == 0
        check_invariants(tree)

    def test_bulk_inserts_preserve_invariants(self):
        tree = make_tree()
        rng = random.Random(3)
        points = [random_point(rng, oid) for oid in range(2000)]
        for point in points:
            tree.insert(point)
        assert tree.count == 2000
        assert sorted(e.oid for e in tree.all_entries()) == list(range(2000))
        check_invariants(tree)

    def test_boundary_coordinates(self):
        """Points exactly on the space boundary stay indexable."""
        tree = make_tree()
        corners = [
            DualPoint(1, (0.0, 0.0), (0.0, 0.0)),
            DualPoint(2, (6.0, 6.0), (160.0, 160.0)),
            DualPoint(3, (0.0, 6.0), (160.0, 0.0)),
        ]
        for point in corners:
            tree.insert(point)
        for oid in range(100, 100 + tree.large_capacity):
            tree.insert(DualPoint(oid, (6.0, 6.0), (160.0, 160.0)))
        assert tree.count == 3 + tree.large_capacity
        for point in corners:
            assert tree.delete(point)
        check_invariants(tree)


class TestDuplicatesAndOverflowChains:
    def test_coincident_points_chain_at_max_depth(self):
        tree = make_tree(QuadTreeConfig(max_depth=3))
        n = tree.large_capacity * 2 + 10
        for oid in range(n):
            tree.insert(DualPoint(oid, (1.0, 1.0), (10.0, 10.0)))
        assert tree.count == n
        stats = tree.stats()
        assert stats.extension_records >= 1
        assert sorted(e.oid for e in tree.all_entries()) == list(range(n))
        check_invariants(tree)

    def test_chain_shrinks_on_delete(self):
        tree = make_tree(QuadTreeConfig(max_depth=2))
        n = tree.large_capacity + 10
        points = [DualPoint(oid, (1.0, 1.0), (10.0, 10.0))
                  for oid in range(n)]
        for point in points:
            tree.insert(point)
        for point in points[: n - 5]:
            assert tree.delete(point)
        assert tree.count == 5
        check_invariants(tree)


class TestDelete:
    def test_delete_existing(self):
        tree = make_tree()
        point = DualPoint(1, (1.0, 1.0), (1.0, 1.0))
        tree.insert(point)
        assert tree.delete(point)
        assert tree.count == 0
        check_invariants(tree)

    def test_delete_missing_returns_false(self):
        tree = make_tree()
        tree.insert(DualPoint(1, (1.0, 1.0), (1.0, 1.0)))
        assert not tree.delete(DualPoint(2, (2.0, 2.0), (2.0, 2.0)))
        assert tree.count == 1
        check_invariants(tree)

    def test_delete_from_empty_tree(self):
        tree = make_tree()
        assert not tree.delete(DualPoint(1, (1.0, 1.0), (1.0, 1.0)))

    def test_insert_delete_all_random(self):
        tree = make_tree()
        rng = random.Random(4)
        points = [random_point(rng, oid) for oid in range(1500)]
        for point in points:
            tree.insert(point)
        rng.shuffle(points)
        for point in points:
            assert tree.delete(point), point
        assert tree.count == 0
        check_invariants(tree)

    def test_underfill_collapses_subtree(self):
        tree = make_tree()
        rng = random.Random(5)
        points = [random_point(rng, oid) for oid in range(1000)]
        for point in points:
            tree.insert(point)
        assert tree.stats().nonleaf_nodes > 0
        for point in points[:-5]:
            assert tree.delete(point)
        # Down to 5 entries: everything must have collapsed into the root.
        stats = tree.stats()
        assert stats.nonleaf_nodes == 0
        assert stats.height == 1
        check_invariants(tree)

    def test_failed_delete_rolls_back_sizes(self):
        tree = make_tree()
        rng = random.Random(6)
        points = [random_point(rng, oid) for oid in range(1200)]
        for point in points:
            tree.insert(point)
        ghost = DualPoint(99999, points[0].v, points[0].p)
        ghost = DualPoint(99999, (0.123, 0.456), (0.789, 1.012))
        assert not tree.delete(ghost)
        check_invariants(tree)


class TestSearch:
    @staticmethod
    def regions_for(query, t_ref=0.0):
        return build_query_regions(query.as_moving(), SPACE.vmax,
                                   SPACE.lifetime, t_ref)

    def test_search_everything(self):
        tree = make_tree()
        rng = random.Random(7)
        for oid in range(500):
            tree.insert(random_point(rng, oid))
        # A query region covering the whole space at t = t_ref.
        query = TimeSliceQuery((-1000.0, -1000.0), (1000.0, 1000.0), 0.0)
        found = tree.search(self.regions_for(query))
        assert len(found) == 500

    def test_search_empty_region(self):
        tree = make_tree()
        rng = random.Random(8)
        for oid in range(200):
            tree.insert(random_point(rng, oid))
        query = TimeSliceQuery((-500.0, -500.0), (-400.0, -400.0), 0.0)
        assert tree.search(self.regions_for(query)) == []

    def test_wrong_region_count_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError, match="query regions"):
            tree.search(())

    def test_pruning_and_unpruned_agree(self):
        rng = random.Random(9)
        points = [random_point(rng, oid) for oid in range(800)]
        pruned = make_tree(QuadTreeConfig(quad_pruning=True))
        plain = make_tree(QuadTreeConfig(quad_pruning=False))
        for point in points:
            pruned.insert(point)
            plain.insert(point)
        for trial in range(30):
            x = rng.uniform(0, 90)
            query = WindowQuery((x, x), (x + 10, x + 10),
                                rng.uniform(0, 5), rng.uniform(5, 15))
            regions = self.regions_for(query)
            assert sorted(pruned.search(regions)) \
                == sorted(plain.search(regions))


class TestDestroyAndStats:
    def test_destroy_frees_all_pages(self):
        tree = make_tree()
        rng = random.Random(10)
        for oid in range(800):
            tree.insert(random_point(rng, oid))
        assert tree.store.pages_in_use() > 0
        tree.destroy()
        assert tree.store.pages_in_use() == 0
        assert tree.count == 0

    def test_stats_shape(self):
        tree = make_tree()
        rng = random.Random(11)
        for oid in range(600):
            tree.insert(random_point(rng, oid))
        stats = tree.stats()
        assert stats.entries == 600
        assert stats.leaf_nodes == stats.small_leaves + stats.large_leaves
        assert 0.0 < stats.leaf_occupancy <= 1.0
        assert stats.height >= 2

    def test_single_size_config_uses_only_large_leaves(self):
        tree = make_tree(QuadTreeConfig(use_small_leaves=False))
        rng = random.Random(12)
        for oid in range(400):
            tree.insert(random_point(rng, oid))
        stats = tree.stats()
        assert stats.small_leaves + stats.large_leaves > 0
        assert tree.small_bytes == tree.large_bytes
        check_invariants(tree)


class TestSearchExactness:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_search_returns_exact_region_membership(self, data):
        """The dual-region search (INSIDE shortcut + OVERLAP filtering +
        DISJUNCT pruning) must return exactly the entries whose dual
        points satisfy per-plane membership -- no more, no fewer.  This
        pins the INSIDE classification: a wrongly-INSIDE cell would leak
        non-members, a wrongly-DISJUNCT cell would drop members."""
        seed = data.draw(st.integers(0, 2**32), label="seed")
        rng = random.Random(seed)
        tree = make_tree()
        points = [random_point(rng, oid)
                  for oid in range(data.draw(st.integers(50, 600),
                                             label="n"))]
        for point in points:
            tree.insert(point)
        for _ in range(5):
            x = rng.uniform(-20, 110)
            y = rng.uniform(-20, 110)
            side = rng.uniform(0.1, 60)
            t1 = rng.uniform(0, 12)
            t2 = t1 + rng.uniform(0, 10)
            query = WindowQuery((x, y), (x + side, y + side), t1, t2)
            regions = build_query_regions(query.as_moving(), SPACE.vmax,
                                          SPACE.lifetime, 0.0)
            expected = sorted(
                p.oid for p in points
                if all(regions[i].contains_point(p.v[i], p.p[i])
                       for i in range(2)))
            got = sorted(e.oid for e in tree.search(regions))
            assert got == expected


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_insert_delete_mix(self, data):
        """Random interleavings of inserts and deletes keep all invariants
        and exactly track the live multiset."""
        tree = make_tree()
        rng = random.Random(data.draw(st.integers(0, 2**32), label="seed"))
        live = {}
        next_oid = 0
        n_steps = data.draw(st.integers(20, 120), label="steps")
        for _ in range(n_steps):
            if live and rng.random() < 0.4:
                oid = rng.choice(sorted(live))
                assert tree.delete(live.pop(oid))
            else:
                point = random_point(rng, next_oid)
                tree.insert(point)
                live[next_oid] = point
                next_oid += 1
        assert tree.count == len(live)
        assert sorted(e.oid for e in tree.all_entries()) == sorted(live)
        check_invariants(tree)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_clustered_points_stress_splits(self, seed):
        """Tightly clustered points force deep splits without breaking
        invariants."""
        tree = make_tree(QuadTreeConfig(max_depth=8))
        rng = random.Random(seed)
        cx = rng.uniform(0, 6)
        cy = rng.uniform(0, 160)
        for oid in range(300):
            point = DualPoint(
                oid,
                (min(6.0, max(0.0, cx + rng.gauss(0, 0.01))),
                 rng.uniform(0, 6)),
                (min(160.0, max(0.0, cy + rng.gauss(0, 0.1))),
                 rng.uniform(0, 160)))
            tree.insert(point)
        assert tree.count == 300
        check_invariants(tree)
