"""Integration tests: every index against the exact oracle on generated
workloads, cross-index agreement, and on-disk persistence."""

import pytest

from repro.baselines.scan import ScanIndex
from repro.bench.runner import DEFAULT_LIFETIME
from repro.core.quadtree import QuadTreeConfig
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.predicates import matches_with_tolerance
from repro.query.types import TimeSliceQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile, OnDiskPageFile
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTree, TPRTreeConfig
from repro.workload.generator import WorkloadSpec, generate_workload
from repro.workload.operations import QueryOp, UpdateOp


def replay(index, oracle, workload, check_queries=True, eps=1e-7):
    """Replay a workload against an index and the oracle in lockstep,
    checking every query result (modulo boundary rounding)."""
    states = {}
    for state in workload.initial:
        index.insert(state)
        oracle.insert(state)
        states[state.oid] = state
    for op in workload.operations:
        if isinstance(op, UpdateOp):
            index.update(op.old, op.new)
            oracle.update(op.old, op.new)
            states[op.new.oid] = op.new
        elif isinstance(op, QueryOp) and check_queries:
            got = sorted(index.query(op.query))
            expected = sorted(oracle.query(op.query))
            if got != expected:
                diff = set(got).symmetric_difference(expected)
                live = {s.oid: s for s in oracle.live_states()}
                for oid in diff:
                    _, boundary = matches_with_tolerance(
                        live[oid], op.query, eps)
                    assert boundary, (
                        f"{type(index).__name__}: object {oid} mismatched "
                        f"and is not on the query boundary")


@pytest.fixture(scope="module")
def uniform_workload():
    return generate_workload(WorkloadSpec(
        n_objects=800, update_fraction=0.5, n_operations=400, seed=99))


@pytest.fixture(scope="module")
def skewed_workload():
    return generate_workload(WorkloadSpec(
        n_objects=800, update_fraction=0.5, n_operations=400, seed=100,
        nd=10))


class TestOracleEquivalenceOnGeneratedWorkloads:
    def test_stripes_uniform(self, uniform_workload):
        index = StripesIndex(StripesConfig(
            vmax=uniform_workload.vmax, pmax=uniform_workload.pmax,
            lifetime=DEFAULT_LIFETIME))
        replay(index, ScanIndex(DEFAULT_LIFETIME), uniform_workload)

    def test_stripes_skewed(self, skewed_workload):
        index = StripesIndex(StripesConfig(
            vmax=skewed_workload.vmax, pmax=skewed_workload.pmax,
            lifetime=DEFAULT_LIFETIME))
        replay(index, ScanIndex(DEFAULT_LIFETIME), skewed_workload)

    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_tpr_uniform(self, cls, uniform_workload):
        pool = BufferPool(InMemoryPageFile(), capacity=4096)
        tree = cls(TPRTreeConfig(d=2, horizon=60.0), RecordStore(pool))
        replay(tree, ScanIndex(1e12), uniform_workload)

    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_tpr_skewed(self, cls, skewed_workload):
        pool = BufferPool(InMemoryPageFile(), capacity=4096)
        tree = cls(TPRTreeConfig(d=2, horizon=60.0), RecordStore(pool))
        replay(tree, ScanIndex(1e12), skewed_workload)

    def test_stripes_tiny_pool_still_exact(self, uniform_workload):
        """Heavy eviction pressure must not change any result."""
        pool = BufferPool(InMemoryPageFile(), capacity=8)
        index = StripesIndex(StripesConfig(
            vmax=uniform_workload.vmax, pmax=uniform_workload.pmax,
            lifetime=DEFAULT_LIFETIME), pool)
        replay(index, ScanIndex(DEFAULT_LIFETIME), uniform_workload)
        assert pool.stats.evictions > 0

    def test_tprstar_tiny_pool_still_exact(self, uniform_workload):
        pool = BufferPool(InMemoryPageFile(), capacity=8)
        tree = TPRStarTree(TPRTreeConfig(d=2, horizon=60.0),
                           RecordStore(pool))
        replay(tree, ScanIndex(1e12), uniform_workload)
        assert pool.stats.evictions > 0

    def test_stripes_max_depth_one_still_exact(self, uniform_workload):
        """A pathological depth limit forces overflow chains everywhere;
        results must be unchanged."""
        index = StripesIndex(StripesConfig(
            vmax=uniform_workload.vmax, pmax=uniform_workload.pmax,
            lifetime=DEFAULT_LIFETIME,
            quadtree=QuadTreeConfig(max_depth=1)))
        replay(index, ScanIndex(DEFAULT_LIFETIME), uniform_workload)


class TestOnDiskPersistence:
    def test_stripes_over_real_file(self, tmp_path, uniform_workload):
        pagefile = OnDiskPageFile(tmp_path / "stripes.db")
        pool = BufferPool(pagefile, capacity=64)
        index = StripesIndex(StripesConfig(
            vmax=uniform_workload.vmax, pmax=uniform_workload.pmax,
            lifetime=DEFAULT_LIFETIME), pool)
        replay(index, ScanIndex(DEFAULT_LIFETIME), uniform_workload,
               check_queries=True)
        index.flush()
        assert (tmp_path / "stripes.db").stat().st_size > 0
        pagefile.close()

    def test_page_images_survive_flush_cycle(self, tmp_path):
        """Flush everything, drop the pool, re-read pages raw: the stored
        bytes deserialize back to the same entries."""
        from repro.query.types import MovingObjectState
        pagefile = OnDiskPageFile(tmp_path / "cycle.db")
        pool = BufferPool(pagefile, capacity=64)
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0),
                               lifetime=30.0)
        index = StripesIndex(config, pool)
        for oid in range(50):
            index.insert(MovingObjectState(
                oid, (float(oid), float(oid)), (0.1, -0.1), 0.0))
        before = sorted(index.query(
            TimeSliceQuery((0.0, 0.0), (100.0, 100.0), 0.0)))
        index.flush()
        pool.clear()
        after = sorted(index.query(
            TimeSliceQuery((0.0, 0.0), (100.0, 100.0), 0.0)))
        assert before == after == list(range(50))
        assert pool.stats.physical_reads > 0  # really re-read from disk
        pagefile.close()


class TestCrossIndexAgreement:
    def test_all_indexes_same_answers_when_nothing_expires(self):
        """With every update inside one lifetime window, STRIPES never
        expires anything and all four implementations must agree exactly
        on every query."""
        workload = generate_workload(WorkloadSpec(
            n_objects=600, update_fraction=0.5, n_operations=300,
            duration=50.0, seed=123))
        stripes = StripesIndex(StripesConfig(
            vmax=workload.vmax, pmax=workload.pmax, lifetime=1e9))
        pool1 = BufferPool(InMemoryPageFile(), capacity=4096)
        tpr = TPRTree(TPRTreeConfig(d=2, horizon=60.0), RecordStore(pool1))
        pool2 = BufferPool(InMemoryPageFile(), capacity=4096)
        tprstar = TPRStarTree(TPRTreeConfig(d=2, horizon=60.0),
                              RecordStore(pool2))
        scan = ScanIndex(1e9)
        indexes = [stripes, tpr, tprstar, scan]
        for state in workload.initial:
            for index in indexes:
                index.insert(state)
        for op in workload.operations:
            if isinstance(op, UpdateOp):
                for index in indexes:
                    index.update(op.old, op.new)
            else:
                answers = [sorted(index.query(op.query))
                           for index in indexes]
                assert answers[0] == answers[1] == answers[2] == answers[3]
