"""Tests for the quadtree's extended features: the leaf size ladder
(Section 5.1 future work), size-counter count queries, and bulk loading."""

import random

import pytest

from repro.baselines.scan import ScanIndex
from repro.core.dual import DualPoint, DualSpace
from repro.core.quadtree import DualQuadTree, QuadTreeConfig
from repro.core.query_region import build_query_regions
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.storage.page import PAGE_SIZE

SPACE = DualSpace(vmax=(3.0, 3.0), pmax=(100.0, 100.0), lifetime=10.0)
LADDER = (505, 1011, 2045, PAGE_SIZE - 5)  # 1/8, 1/4, 1/2, full page


def make_tree(config=QuadTreeConfig(), pool_pages=4096):
    pool = BufferPool(InMemoryPageFile(), capacity=pool_pages)
    return DualQuadTree(SPACE, RecordStore(pool), config)


def random_point(rng, oid):
    return DualPoint(
        oid,
        tuple(rng.uniform(0, e) for e in SPACE.velocity_extent),
        tuple(rng.uniform(0, e) for e in SPACE.position_extent))


class TestLeafSizeLadder:
    def test_ladder_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            QuadTreeConfig(leaf_size_ladder=(100, 100))
        with pytest.raises(ValueError, match="strictly increasing"):
            QuadTreeConfig(leaf_size_ladder=(200, 100))

    def test_equal_capacity_rungs_rejected(self):
        # 500 and 505 bytes hold the same number of 40-byte entries; such
        # a ladder has a rung with nothing to promote into.
        with pytest.raises(ValueError, match="strictly increasing "
                                             "capacities"):
            make_tree(QuadTreeConfig(leaf_size_ladder=(500, 505)))

    def test_ladder_overrides_two_size_scheme(self):
        tree = make_tree(QuadTreeConfig(leaf_size_ladder=LADDER))
        assert tree.leaf_ladder == list(LADDER)
        assert tree.small_bytes == LADDER[0]
        assert tree.large_bytes == LADDER[-1]
        assert tree.leaf_capacities == sorted(tree.leaf_capacities)

    def test_leaves_promote_stepwise(self):
        tree = make_tree(QuadTreeConfig(leaf_size_ladder=LADDER))
        rng = random.Random(1)
        # Fill the root leaf just past the smallest capacity: it must be
        # promoted to the second rung, not jump to the largest.
        for oid in range(tree.leaf_capacities[0] + 1):
            tree.insert(random_point(rng, oid))
        stats = tree.stats()
        assert stats.leaves_by_size == {LADDER[1]: 1}

    def test_four_rung_ladder_correctness(self):
        """A four-size ladder must not change any result set."""
        rng = random.Random(2)
        ladder_tree = make_tree(QuadTreeConfig(leaf_size_ladder=LADDER))
        plain_tree = make_tree()
        points = [random_point(rng, oid) for oid in range(1500)]
        for point in points:
            ladder_tree.insert(point)
            plain_tree.insert(point)
        for trial in range(20):
            x = rng.uniform(0, 90)
            query = WindowQuery((x, x), (x + 10, x + 10),
                                rng.uniform(0, 5), rng.uniform(5, 15))
            regions = build_query_regions(query.as_moving(), SPACE.vmax,
                                          SPACE.lifetime, 0.0)
            assert sorted(e.oid for e in ladder_tree.search(regions)) \
                == sorted(e.oid for e in plain_tree.search(regions))
        # Deletes work across rungs.
        rng.shuffle(points)
        for point in points:
            assert ladder_tree.delete(point)
        assert ladder_tree.count == 0

    def test_ladder_improves_occupancy(self):
        rng = random.Random(3)
        ladder_tree = make_tree(QuadTreeConfig(leaf_size_ladder=LADDER))
        single_tree = make_tree(QuadTreeConfig(use_small_leaves=False))
        for oid in range(3000):
            point = random_point(rng, oid)
            ladder_tree.insert(point)
            single_tree.insert(point)
        assert ladder_tree.stats().leaf_occupancy \
            > single_tree.stats().leaf_occupancy
        assert ladder_tree.store.pages_in_use() \
            <= single_tree.store.pages_in_use()


class TestCountQueries:
    @staticmethod
    def regions_for(query, t_ref=0.0):
        return build_query_regions(query.as_moving(), SPACE.vmax,
                                   SPACE.lifetime, t_ref)

    def test_count_matches_search(self):
        tree = make_tree()
        rng = random.Random(4)
        for oid in range(1200):
            tree.insert(random_point(rng, oid))
        for trial in range(25):
            x = rng.uniform(0, 90)
            query = TimeSliceQuery((x, x), (x + 10, x + 10),
                                   rng.uniform(0, 15))
            regions = self.regions_for(query)
            assert tree.count_in_regions(regions) \
                == len(tree.search(regions))

    def test_count_whole_space_reads_no_leaves(self):
        # Tiny leaves force height >= 3 so INSIDE non-leaf children exist;
        # the size-counter shortcut only pays off below such children.
        tree = make_tree(QuadTreeConfig(leaf_size_ladder=(150, 505)))
        rng = random.Random(5)
        for oid in range(1000):
            tree.insert(random_point(rng, oid))
        assert tree.stats().height >= 3
        query = TimeSliceQuery((-1e6, -1e6), (1e6, 1e6), 0.0)
        regions = self.regions_for(query)
        logical_before = tree.store.pool.stats.logical_reads
        assert tree.count_in_regions(regions) == 1000
        count_reads = tree.store.pool.stats.logical_reads - logical_before
        logical_before = tree.store.pool.stats.logical_reads
        assert len(tree.search(regions)) == 1000
        search_reads = tree.store.pool.stats.logical_reads - logical_before
        # Counting everything touches only the upper levels.
        assert count_reads < search_reads / 3

    def test_stripes_count_time_slice(self):
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0),
                               lifetime=30.0)
        index = StripesIndex(config)
        oracle = ScanIndex(30.0)
        rng = random.Random(6)
        for oid in range(800):
            state = MovingObjectState(
                oid, (rng.uniform(0, 200), rng.uniform(0, 200)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                rng.uniform(0, 29))
            index.insert(state)
            oracle.insert(state)
        for trial in range(20):
            x = rng.uniform(0, 170)
            query = TimeSliceQuery((x, x), (x + 30, x + 30),
                                   rng.uniform(29, 50))
            assert index.count(query) == len(oracle.query(query))

    def test_stripes_count_window_falls_back_to_exact(self):
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0),
                               lifetime=30.0)
        index = StripesIndex(config)
        rng = random.Random(7)
        for oid in range(500):
            index.insert(MovingObjectState(
                oid, (rng.uniform(0, 200), rng.uniform(0, 200)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                rng.uniform(0, 29)))
        query = WindowQuery((50.0, 50.0), (90.0, 90.0), 30.0, 45.0)
        assert index.count(query) == len(index.query(query))


class TestBulkLoad:
    def test_bulk_load_equivalent_to_inserts(self):
        rng = random.Random(8)
        points = [random_point(rng, oid) for oid in range(2000)]
        loaded = make_tree()
        loaded.bulk_load(points)
        inserted = make_tree()
        for point in points:
            inserted.insert(point)
        assert loaded.count == inserted.count == 2000
        assert sorted(e.oid for e in loaded.all_entries()) \
            == sorted(e.oid for e in inserted.all_entries())
        for trial in range(15):
            x = rng.uniform(0, 90)
            query = TimeSliceQuery((x, x), (x + 10, x + 10),
                                   rng.uniform(0, 15))
            regions = build_query_regions(query.as_moving(), SPACE.vmax,
                                          SPACE.lifetime, 0.0)
            assert sorted(e.oid for e in loaded.search(regions)) \
                == sorted(e.oid for e in inserted.search(regions))

    def test_bulk_load_requires_empty_tree(self):
        tree = make_tree()
        tree.insert(DualPoint(1, (1.0, 1.0), (1.0, 1.0)))
        with pytest.raises(RuntimeError, match="empty"):
            tree.bulk_load([DualPoint(2, (2.0, 2.0), (2.0, 2.0))])

    def test_bulk_load_empty_batch(self):
        tree = make_tree()
        tree.bulk_load([])
        assert tree.count == 0

    def test_stripes_bulk_load(self):
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0),
                               lifetime=30.0)
        rng = random.Random(9)
        states = [MovingObjectState(
            oid, (rng.uniform(0, 200), rng.uniform(0, 200)),
            (rng.uniform(-3, 3), rng.uniform(-3, 3)), rng.uniform(0, 55))
            for oid in range(1000)]
        bulk = StripesIndex(config)
        assert bulk.bulk_load(states) == 1000
        slow = StripesIndex(config)
        oracle = ScanIndex(30.0)
        for state in states:
            slow.insert(state)
            oracle.insert(state)
        assert len(bulk) == len(slow) == len(oracle)
        for trial in range(15):
            x = rng.uniform(0, 170)
            query = TimeSliceQuery((x, x), (x + 30, x + 30),
                                   rng.uniform(56, 70))
            assert sorted(bulk.query(query)) == sorted(slow.query(query)) \
                == sorted(oracle.query(query))

    def test_stripes_bulk_load_rejects_non_empty(self):
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0),
                               lifetime=30.0)
        index = StripesIndex(config)
        index.insert(MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0))
        with pytest.raises(RuntimeError, match="empty"):
            index.bulk_load([MovingObjectState(2, (2.0, 2.0), (0.0, 0.0),
                                               0.0)])

    def test_stripes_bulk_load_rejects_wide_window_span(self):
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0),
                               lifetime=30.0)
        index = StripesIndex(config)
        states = [
            MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0),
            MovingObjectState(2, (2.0, 2.0), (0.0, 0.0), 70.0),
        ]
        with pytest.raises(ValueError, match="lifetime windows"):
            index.bulk_load(states)
