"""Unit tests for spans, descent traces, and ``explain()``."""

import pytest

from repro import (
    MovingObjectState,
    StripesConfig,
    StripesIndex,
    TimeSliceQuery,
)
from repro.obs import DescentTrace, Span, Tracer
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import InMemoryPageFile


class TestTracer:
    def test_spans_nest_via_stack(self):
        tracer = Tracer()
        with tracer.span("outer", a=1) as outer:
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current is outer
        assert tracer.current is None
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in tracer.roots[0].children] == ["inner"]
        assert tracer.roots[0].attrs == {"a": 1}

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        assert [s.name for s in tracer.roots[0].children] == [
            "first", "second"]

    def test_span_duration_measured(self):
        ticks = iter([1.0, 3.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("timed") as span:
            pass
        assert span.duration_s == pytest.approx(2.5)

    def test_duration_recorded_even_when_body_raises(self):
        ticks = iter([1.0, 2.0])
        tracer = Tracer(clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError
        assert span.duration_s == pytest.approx(1.0)
        assert tracer.current is None

    def test_events_attach_to_open_span(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            tracer.event("split", node=3)
        assert span.events == [("split", {"node": 3})]

    def test_events_without_span_are_orphans(self):
        tracer = Tracer()
        tracer.event("rotation", window=2)
        assert tracer.orphan_events == [("rotation", {"window": 2})]
        assert "* rotation window=2" in tracer.format()

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.event("loose")
        tracer.reset()
        assert tracer.roots == [] and tracer.orphan_events == []

    def test_format_tree(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("a"):
            with tracer.span("b", n=1):
                tracer.event("e")
        lines = tracer.format().splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("  b n=1")
        assert lines[2].strip().startswith("* e")


class TestSpan:
    def test_tree_lines_indent(self):
        root = Span("root")
        root.children.append(Span("child"))
        lines = root.tree_lines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")


class TestDescentTrace:
    def test_derived_totals(self):
        t = DescentTrace(nonleaf_visits=2, leaf_visits=3, quads_inside=1,
                         quads_overlap=4, quads_disjunct=5)
        assert t.nodes_visited == 5
        assert t.quads_classified == 10

    def test_merge_sums_counters_and_maxes_depth(self):
        a = DescentTrace(nonleaf_visits=1, max_depth=2, candidates=3)
        b = DescentTrace(nonleaf_visits=2, max_depth=5, candidates=4)
        a.merge(b)
        assert a.nonleaf_visits == 3
        assert a.max_depth == 5
        assert a.candidates == 7

    def test_as_dict_excludes_label(self):
        d = DescentTrace(label="x", leaf_visits=1).as_dict()
        assert "label" not in d
        assert d["leaf_visits"] == 1

    def test_format_lines_reports_quad_classes(self):
        t = DescentTrace(quads_inside=1, quads_overlap=2, quads_disjunct=3)
        text = "\n".join(t.format_lines())
        assert "INSIDE 1 / OVERLAP 2 / DISJUNCT 3" in text

    def test_tpbr_row_only_when_nonzero(self):
        assert not any("TPBR" in line
                       for line in DescentTrace().format_lines())
        assert any("TPBR tests" in line
                   for line in DescentTrace(tpbr_tests=4).format_lines())


def _two_object_index():
    pool = BufferPool(InMemoryPageFile(), capacity=32)
    index = StripesIndex(
        StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0), lifetime=120.0),
        pool)
    index.insert(MovingObjectState(oid=1, pos=(10.0, 10.0),
                                   vel=(0.0, 0.0), t=0.0))
    index.insert(MovingObjectState(oid=2, pos=(90.0, 90.0),
                                   vel=(0.0, 0.0), t=0.0))
    return index


class TestExplainKnownIndex:
    """explain() on a two-object index whose descent is fully known: one
    root leaf, both entries scanned, exactly one candidate matches."""

    QUERY = TimeSliceQuery((0.0, 0.0), (20.0, 20.0), t=0.0)

    def test_matches_query_and_counts(self):
        index = _two_object_index()
        explain = index.explain(self.QUERY)
        assert explain.results == index.query(self.QUERY) == [1]
        trace = explain.total_trace()
        assert trace.leaf_visits == 1
        assert trace.nonleaf_visits == 0
        assert trace.entries_scanned == 2
        assert trace.candidates == 1
        assert explain.candidates == 1
        assert explain.refined_away == 0

    def test_span_tree_captured(self):
        index = _two_object_index()
        tracer = Tracer()
        explain = index.explain(self.QUERY, tracer=tracer)
        assert explain.span.name == "stripes.query"
        assert [c.name for c in explain.span.children] == [
            "stripes.descend"]

    def test_format_mentions_the_descent(self):
        text = _two_object_index().explain(self.QUERY).format()
        assert "STRIPES explain" in text
        assert "scanned 2" in text
        assert "candidates" in text
        assert "INSIDE 0 / OVERLAP 0 / DISJUNCT 0" in text

    def test_deep_index_classifies_quads(self):
        """Enough objects to force non-leaf nodes: the descent must then
        classify quads and prune DISJUNCT children."""
        pool = BufferPool(InMemoryPageFile(), capacity=64)
        index = StripesIndex(
            StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0),
                          lifetime=120.0), pool)
        for oid in range(300):
            index.insert(MovingObjectState(
                oid=oid, pos=((oid * 7) % 100, (oid * 13) % 100),
                vel=(((oid % 5) - 2) * 0.1, ((oid % 3) - 1) * 0.1), t=0.0))
        explain = index.explain(TimeSliceQuery((0.0, 0.0), (30.0, 30.0),
                                               t=10.0))
        trace = explain.total_trace()
        assert trace.nonleaf_visits >= 1
        assert trace.quads_classified > 0
        assert trace.children_pruned > 0
        assert sorted(explain.results) == sorted(
            index.query(TimeSliceQuery((0.0, 0.0), (30.0, 30.0), t=10.0)))
