"""Unit and property tests for the exact matching predicates."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.predicates import (
    MovingQueryEvaluator,
    intersect_intervals,
    linear_nonneg_interval,
    match_interval,
    matches,
    matches_with_tolerance,
    trajectory_match_interval,
)
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                   allow_infinity=False)


class TestLinearInterval:
    def test_constant_true(self):
        assert linear_nonneg_interval(1.0, 0.0, 0.0, 5.0) == (0.0, 5.0)

    def test_constant_false(self):
        assert linear_nonneg_interval(-1.0, 0.0, 0.0, 5.0) is None

    def test_increasing(self):
        assert linear_nonneg_interval(-2.0, 1.0, 0.0, 5.0) == (2.0, 5.0)

    def test_decreasing(self):
        assert linear_nonneg_interval(2.0, -1.0, 0.0, 5.0) == (0.0, 2.0)

    def test_empty_when_root_outside(self):
        assert linear_nonneg_interval(-10.0, 1.0, 0.0, 5.0) is None

    def test_inverted_range(self):
        assert linear_nonneg_interval(1.0, 0.0, 5.0, 0.0) is None

    @settings(max_examples=200, deadline=None)
    @given(a=finite, b=finite,
           t1=st.floats(min_value=0, max_value=100),
           width=st.floats(min_value=0, max_value=100))
    def test_interval_is_exact(self, a, b, t1, width):
        """Every point inside the returned interval satisfies the
        inequality; midpoints outside do not (up to float noise)."""
        t2 = t1 + width
        interval = linear_nonneg_interval(a, b, t1, t2)
        if interval is None:
            mid = (t1 + t2) / 2
            assert a + b * mid < 1e-6 * (1 + abs(a) + abs(b) * abs(mid))
        else:
            lo, hi = interval
            assert t1 <= lo <= hi <= t2
            for t in (lo, hi, (lo + hi) / 2):
                assert a + b * t >= -1e-6 * (1 + abs(a) + abs(b) * abs(t))


class TestIntersectIntervals:
    def test_any_none_gives_none(self):
        assert intersect_intervals([(0, 1), None]) is None

    def test_disjoint_gives_none(self):
        assert intersect_intervals([(0, 1), (2, 3)]) is None

    def test_overlapping(self):
        assert intersect_intervals([(0, 5), (3, 8)]) == (3, 5)

    def test_empty_list_is_unbounded(self):
        lo, hi = intersect_intervals([])
        assert lo == -math.inf and hi == math.inf


class TestMatches:
    def test_time_slice_hit(self):
        obj = MovingObjectState(1, (0.0, 0.0), (1.0, 1.0), 0.0)
        assert matches(obj, TimeSliceQuery((4.0, 4.0), (6.0, 6.0), 5.0))

    def test_time_slice_miss(self):
        obj = MovingObjectState(1, (0.0, 0.0), (1.0, 1.0), 0.0)
        assert not matches(obj, TimeSliceQuery((4.0, 4.0), (6.0, 6.0), 9.0))

    def test_window_crossing_object(self):
        # Fast object crosses the window mid-interval: in at some t even
        # though it is outside at both endpoints.
        obj = MovingObjectState(1, (0.0,), (5.0,), 0.0)
        assert matches(obj, WindowQuery((10.0,), (11.0,), 0.0, 10.0))

    def test_window_requires_common_instant(self):
        # In x-range early, in y-range late, never both: no match.
        obj = MovingObjectState(1, (0.0, 100.0), (10.0, -10.0), 0.0)
        query = WindowQuery((0.0, 0.0), (10.0, 10.0), 0.0, 10.0)
        interval_x = linear_nonneg_interval(0.0 - 0.0, 10.0, 0.0, 10.0)
        assert interval_x is not None
        assert not matches(obj, query)

    def test_moving_query_follows_object(self):
        obj = MovingObjectState(1, (0.0, 0.0), (1.0, 0.0), 0.0)
        chasing = MovingQuery((0.0, -1.0), (1.0, 1.0),
                              (10.0, -1.0), (11.0, 1.0), 0.0, 10.0)
        assert matches(obj, chasing)

    def test_stationary_object_in_static_window(self):
        obj = MovingObjectState(1, (5.0,), (0.0,), 0.0)
        assert matches(obj, WindowQuery((4.0,), (6.0,), 100.0, 200.0))

    def test_match_interval_endpoints(self):
        obj = MovingObjectState(1, (0.0,), (1.0,), 0.0)
        interval = match_interval(obj, WindowQuery((5.0,), (7.0,), 0.0, 100.0))
        assert interval == (5.0, 7.0)


class TestEvaluatorEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_evaluator_matches_interval_form(self, data):
        """MovingQueryEvaluator agrees with trajectory_match_interval on
        random trajectories and queries."""
        d = data.draw(st.integers(min_value=1, max_value=3), label="d")
        coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
        p0 = data.draw(st.tuples(*[coords] * d), label="p0")
        pv = data.draw(st.tuples(*[coords] * d), label="pv")
        t1 = data.draw(st.floats(min_value=0, max_value=50), label="t1")
        dt = data.draw(st.floats(min_value=0, max_value=50), label="dt")
        low1 = data.draw(st.tuples(*[coords] * d), label="low1")
        ext = st.floats(min_value=0, max_value=50, allow_nan=False)
        sides1 = data.draw(st.tuples(*[ext] * d), label="sides1")
        if t1 + dt == t1:  # degenerate moving queries must not change shape
            low2, sides2 = low1, sides1
        else:
            low2 = data.draw(st.tuples(*[coords] * d), label="low2")
            sides2 = data.draw(st.tuples(*[ext] * d), label="sides2")
        query = MovingQuery(
            low1, tuple(l + s for l, s in zip(low1, sides1)),
            low2, tuple(l + s for l, s in zip(low2, sides2)),
            t1, t1 + dt)
        via_interval = trajectory_match_interval(p0, pv, query) is not None
        via_evaluator = MovingQueryEvaluator(query).matches_trajectory(p0, pv)
        assert via_interval == via_evaluator

    def test_matches_state_agrees_with_matches(self):
        obj = MovingObjectState(1, (3.0, 4.0), (-1.0, 2.0), 2.0)
        query = WindowQuery((0.0, 0.0), (5.0, 5.0), 3.0, 6.0)
        assert (MovingQueryEvaluator(query).matches_state(obj)
                == matches(obj, query))


class TestTolerance:
    def test_interior_object_not_boundary(self):
        obj = MovingObjectState(1, (5.0,), (0.0,), 0.0)
        matched, boundary = matches_with_tolerance(
            obj, WindowQuery((0.0,), (10.0,), 0.0, 1.0), eps=1e-9)
        assert matched and not boundary

    def test_edge_object_is_boundary(self):
        obj = MovingObjectState(1, (10.0,), (0.0,), 0.0)
        matched, boundary = matches_with_tolerance(
            obj, WindowQuery((0.0,), (10.0,), 0.0, 1.0), eps=1e-9)
        assert matched and boundary

    def test_far_object_not_boundary(self):
        obj = MovingObjectState(1, (50.0,), (0.0,), 0.0)
        matched, boundary = matches_with_tolerance(
            obj, WindowQuery((0.0,), (10.0,), 0.0, 1.0), eps=1e-9)
        assert not matched and not boundary
