"""Rotation must not leak storage: retired windows free their pages and
detach their node caches from the shared buffer pool (the PR-3 fix to
``StripesIndex._retire_expired``)."""

import random

import pytest

from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import MovingObjectState
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import InMemoryPageFile

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0), lifetime=30.0)


def bulk_states(rng, n, t, oid_base=0):
    return [MovingObjectState(
        oid_base + i,
        tuple(rng.uniform(0, p) for p in CONFIG.pmax),
        tuple(rng.uniform(-v, v) for v in CONFIG.vmax),
        t) for i in range(n)]


def test_rotation_releases_pages():
    """Retiring a well-populated window must shrink pages_in_use and be
    accounted in pages_reclaimed."""
    rng = random.Random(31)
    index = StripesIndex(CONFIG)
    index.insert_batch(bulk_states(rng, 400, t=1.0))
    pages_full = index.pages_in_use()
    assert pages_full > 0
    assert index.pages_reclaimed == 0
    # Jump two lifetime windows ahead: window 0 retires wholesale.
    index.insert(MovingObjectState(
        9000, (50.0, 50.0), (0.0, 0.0), 2 * CONFIG.lifetime + 1.0))
    assert index.rotations == 1
    assert index.pages_reclaimed > 0
    assert index.pages_in_use() < pages_full
    assert len(index) == 1


def test_rotate_to_is_a_noop_for_live_windows():
    index = StripesIndex(CONFIG)
    index.insert(MovingObjectState(1, (10.0, 10.0), (0.0, 0.0), 1.0))
    index.rotate_to(0)
    index.rotate_to(1)
    assert index.rotations == 0
    assert len(index) == 1


def test_rotate_to_retires_without_an_insert():
    index = StripesIndex(CONFIG)
    rng = random.Random(32)
    index.insert_batch(bulk_states(rng, 50, t=1.0))
    index.rotate_to(2)
    assert index.rotations == 1
    assert len(index) == 0


def test_destroy_detaches_eviction_listener():
    """Every rotation must remove the retired tree's cache from the
    pool's eviction-listener list (the long-service leak)."""
    pool = BufferPool(InMemoryPageFile(), capacity=64)
    index = StripesIndex(CONFIG, pool)
    rng = random.Random(33)
    baseline = len(pool._eviction_listeners)
    for round_i in range(4):
        t = round_i * 2 * CONFIG.lifetime + 1.0
        index.insert_batch(bulk_states(rng, 30, t=t, oid_base=round_i * 100))
        # One live window registers one listener; retired ones must be gone.
        assert len(pool._eviction_listeners) <= baseline + 2
    assert index.rotations >= 3


def test_node_cache_detach_is_idempotent():
    index = StripesIndex(CONFIG)
    index.insert(MovingObjectState(1, (10.0, 10.0), (0.0, 0.0), 1.0))
    (tree,) = index._trees.values()
    pool = index.pool
    before = len(pool._eviction_listeners)
    tree.cache.detach()
    assert len(pool._eviction_listeners) == before - 1
    tree.cache.detach()  # second detach must be a no-op
    assert len(pool._eviction_listeners) == before - 1
    assert tree.cache.cached_count() == 0


def test_detached_cache_ignores_late_traffic():
    """After detach, _remember and eviction callbacks must be inert."""
    index = StripesIndex(CONFIG)
    rng = random.Random(34)
    index.insert_batch(bulk_states(rng, 20, t=1.0))
    (tree,) = index._trees.values()
    cache = tree.cache
    cache.detach()
    # Queries after detach still work (decode misses, just no caching).
    from repro.query.types import TimeSliceQuery
    result = index.query(TimeSliceQuery((0.0, 0.0), CONFIG.pmax, 2.0))
    assert len(result) == 20
    assert cache.cached_count() == 0


def test_pages_reclaimed_metric_exported():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    index = StripesIndex(CONFIG)
    index.attach_metrics(registry)
    rng = random.Random(35)
    index.insert_batch(bulk_states(rng, 200, t=1.0))
    index.rotate_to(5)
    registry.collect()
    assert registry.get("stripes_pages_reclaimed_total").to_value() \
        == index.pages_reclaimed
    assert index.pages_reclaimed > 0
