"""Unit tests for the metrics registry: instrument semantics, the
Prometheus text exposition format, and the JSON snapshot."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("ops_total")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("ops_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_mirrors_external_count(self):
        c = Counter("reads_total")
        c.set_total(42)
        assert c.value == 42

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("0starts_with_digit")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("pages")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12

    def test_reset(self):
        g = Gauge("pages")
        g.set(7)
        g.reset()
        assert g.value == 0


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 100.0):
            h.observe(v)
        # raw (non-cumulative) counts: <=1: 2, <=2: 2, <=4: 1, +Inf: 1
        assert h.bucket_counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.sum == pytest.approx(108.0)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, math.inf))

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(10):
            h.observe(0.5)  # all in the first bucket
        # target = q * 10 observations, lower edge 0, upper 1.0
        assert h.percentile(0.5) == pytest.approx(0.5)
        assert h.percentile(1.0) == pytest.approx(1.0)

    def test_percentile_empty_and_overflow(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        assert h.percentile(0.5) == 0.0
        h.observe(50.0)  # +Inf bucket clamps to largest finite bound
        assert h.percentile(0.99) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            h.percentile(2.0)

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(
            DEFAULT_LATENCY_BUCKETS_S)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_contains_get_names(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        assert "a" in reg and "c" not in reg
        assert reg.get("b").kind == "gauge"
        assert reg.get("c") is None
        assert reg.names() == ["a", "b"]

    def test_collector_runs_on_export(self):
        reg = MetricsRegistry()
        external = {"n": 0}
        counter = reg.counter("ext_total")
        reg.register_collector(lambda: counter.set_total(external["n"]))
        external["n"] = 7
        assert reg.to_dict()["counters"]["ext_total"] == 7
        external["n"] = 9
        assert "ext_total 9" in reg.expose_text()

    def test_reset_zeroes_instruments_keeps_collectors(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        hist = reg.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        reg.reset()
        assert reg.counter("a").value == 0
        assert hist.count == 0

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        data = json.loads(reg.to_json())
        assert data["counters"]["a_total"] == 3
        assert data["gauges"]["g"] == 1.5
        h = data["histograms"]["h"]
        assert h["count"] == 1
        assert h["buckets"] == {"0.1": 1, "1": 1, "+Inf": 1}

    def test_exposition_golden(self):
        """Exact Prometheus text format for one of each instrument."""
        reg = MetricsRegistry()
        reg.counter("req_total", help="requests served").inc(3)
        reg.gauge("temp").set(2.5)
        h = reg.histogram("lat_seconds", buckets=(0.5, 1.0),
                          help="op latency")
        h.observe(0.25)
        h.observe(0.75)
        h.observe(9.0)
        assert reg.expose_text() == (
            '# HELP lat_seconds op latency\n'
            '# TYPE lat_seconds histogram\n'
            'lat_seconds_bucket{le="0.5"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            'lat_seconds_sum 10\n'
            'lat_seconds_count 3\n'
            '# HELP req_total requests served\n'
            '# TYPE req_total counter\n'
            'req_total 3\n'
            '# TYPE temp gauge\n'
            'temp 2.5\n'
        )

    def test_exposition_ends_with_newline(self):
        reg = MetricsRegistry()
        assert reg.expose_text() == ""
        reg.counter("a").inc()
        assert reg.expose_text().endswith("\n")
