"""Unit and property tests for the dual transform (Section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dual import DualPoint, DualSpace
from repro.query.types import MovingObjectState

SPACE = DualSpace(vmax=(3.0, 3.0), pmax=(1000.0, 1000.0), lifetime=60.0)


def obj_strategy(space: DualSpace, t_min=0.0):
    d = space.d
    pos = st.tuples(*[st.floats(min_value=0.0, max_value=space.pmax[i],
                                allow_nan=False) for i in range(d)])
    vel = st.tuples(*[st.floats(min_value=-space.vmax[i],
                                max_value=space.vmax[i], allow_nan=False)
                      for i in range(d)])
    t = st.floats(min_value=space.t_ref,
                  max_value=space.t_ref + space.lifetime)
    return st.builds(
        MovingObjectState,
        oid=st.integers(min_value=0, max_value=2**40),
        pos=pos, vel=vel, t=t)


class TestConfigValidation:
    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            DualSpace(vmax=(3.0,), pmax=(10.0, 10.0), lifetime=1.0)

    def test_nonpositive_vmax_rejected(self):
        with pytest.raises(ValueError, match="vmax"):
            DualSpace(vmax=(0.0, 3.0), pmax=(10.0, 10.0), lifetime=1.0)

    def test_nonpositive_lifetime_rejected(self):
        with pytest.raises(ValueError, match="lifetime"):
            DualSpace(vmax=(3.0,), pmax=(10.0,), lifetime=0.0)

    def test_extents(self):
        assert SPACE.velocity_extent == (6.0, 6.0)
        assert SPACE.position_extent == (1360.0, 1360.0)  # 1000 + 2*3*60

    def test_covers_time(self):
        space = DualSpace(vmax=(3.0,), pmax=(10.0,), lifetime=60.0,
                          t_ref=60.0)
        assert space.covers_time(60.0)
        assert space.covers_time(119.0)
        assert not space.covers_time(120.0)
        assert not space.covers_time(59.0)


class TestTransform:
    def test_known_values(self):
        obj = MovingObjectState(1, (100.0, 200.0), (2.0, -1.0), t=10.0)
        dual = SPACE.to_dual(obj)
        # V = v + vmax
        assert dual.v == (5.0, 2.0)
        # P = p - v (t - tref) + vmax L
        assert dual.p == (100.0 - 2.0 * 10.0 + 180.0,
                          200.0 + 1.0 * 10.0 + 180.0)

    def test_velocity_out_of_bounds_rejected(self):
        obj = MovingObjectState(1, (0.0, 0.0), (4.0, 0.0), t=0.0)
        with pytest.raises(ValueError, match="exceeds vmax"):
            SPACE.to_dual(obj)

    def test_position_out_of_bounds_rejected(self):
        obj = MovingObjectState(1, (2000.0, 0.0), (0.0, 0.0), t=0.0)
        with pytest.raises(ValueError, match="outside"):
            SPACE.to_dual(obj)

    def test_time_outside_lifetime_rejected(self):
        obj = MovingObjectState(1, (0.0, 0.0), (0.0, 0.0), t=100.0)
        with pytest.raises(ValueError, match="lifetime window"):
            SPACE.to_dual(obj)

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            SPACE.to_dual(MovingObjectState(1, (0.0,), (0.0,), 0.0))

    @settings(max_examples=300, deadline=None)
    @given(obj=obj_strategy(SPACE))
    def test_dual_coordinates_in_root_bounds(self, obj):
        dual = SPACE.to_dual(obj)
        for i in range(SPACE.d):
            assert 0.0 <= dual.v[i] <= SPACE.velocity_extent[i]
            assert -1e-9 <= dual.p[i] <= SPACE.position_extent[i] + 1e-9

    @settings(max_examples=300, deadline=None)
    @given(obj=obj_strategy(SPACE))
    def test_round_trip_preserves_trajectory(self, obj):
        """from_dual at any time reproduces the object's predicted
        position (the dual point encodes the same line)."""
        dual = SPACE.to_dual(obj)
        for when in (obj.t, obj.t + 17.5, SPACE.lifetime * 2):
            reconstructed = SPACE.from_dual(dual, when)
            expected = obj.position_at(when)
            for a, b in zip(reconstructed.pos, expected):
                assert a == pytest.approx(b, abs=1e-6)
            assert reconstructed.vel == pytest.approx(obj.vel)

    def test_position_at_matches_from_dual(self):
        obj = MovingObjectState(9, (10.0, 20.0), (1.0, -2.0), t=5.0)
        dual = SPACE.to_dual(obj)
        assert SPACE.position_at(dual, 42.0) == pytest.approx(
            SPACE.from_dual(dual, 42.0).pos)


class TestFloat32Mode:
    F32 = DualSpace(vmax=(3.0, 3.0), pmax=(1000.0, 1000.0), lifetime=60.0,
                    float32=True)

    def test_coordinates_are_float32_representable(self):
        import numpy as np
        obj = MovingObjectState(1, (123.456, 789.012), (1.23, -2.34), t=7.7)
        dual = self.F32.to_dual(obj)
        for coord in dual.v + dual.p:
            assert coord == float(np.float32(coord))

    def test_transform_is_deterministic(self):
        obj = MovingObjectState(1, (123.456, 789.012), (1.23, -2.34), t=7.7)
        assert self.F32.to_dual(obj) == self.F32.to_dual(obj)


class TestDualPoint:
    def test_named_tuple_equality(self):
        a = DualPoint(1, (1.0, 2.0), (3.0, 4.0))
        b = DualPoint(1, (1.0, 2.0), (3.0, 4.0))
        assert a == b
        assert a.d == 2

    def test_different_oid_not_equal(self):
        assert DualPoint(1, (0.0,), (0.0,)) != DualPoint(2, (0.0,), (0.0,))
