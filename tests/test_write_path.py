"""Equivalence tests for the vectorized write path.

The PR 4 write-path work (batch dual transform, grouped quadtree
inserts/deletes, run-netted batched updates, write-coalescing storage) is
only admissible because every batched operation promises *query
equivalence* with sequential replay: the same entries, the same leaf
membership, the same answers to every query -- split/promotion event
counts may differ, results may not.  This suite drives seeded-random and
adversarial workloads (leaf-split boundaries, max-depth overflow chains,
float32 rounding edges, cross-window batches, chained same-object
updates) through both paths and compares exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.dual import DualPoint, DualSpace
from repro.core.nodes import _PACK_BATCH_MIN, LeafNode, NodeCodec
from repro.core.quadtree import DualQuadTree, QuadTreeConfig
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import MovingObjectState, TimeSliceQuery, WindowQuery
from repro.service.sharding import (
    HashShardPolicy,
    ShardedStripes,
    VelocityBandShardPolicy,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile

VMAX = (3.0, 3.0)
PMAX = (1000.0, 1000.0)
LIFETIME = 120.0


def make_space(float32=False):
    return DualSpace(vmax=VMAX, pmax=PMAX, lifetime=LIFETIME,
                     float32=float32)


def make_tree(config=None, float32=False, pool_pages=4096):
    pool = BufferPool(InMemoryPageFile(), capacity=pool_pages)
    return DualQuadTree(make_space(float32), RecordStore(pool),
                        config if config is not None else QuadTreeConfig())


def make_index(float32=False, vectorized=True, pool_pages=4096):
    pool = BufferPool(InMemoryPageFile(), capacity=pool_pages)
    config = StripesConfig(vmax=VMAX, pmax=PMAX, lifetime=LIFETIME,
                           float32=float32,
                           quadtree=QuadTreeConfig(vectorized=vectorized))
    return StripesIndex(config, pool)


def random_states(rng, n, t_lo=0.0, t_hi=LIFETIME, oid_base=0):
    return [
        MovingObjectState(
            oid_base + i,
            pos=tuple(rng.uniform(0.0, PMAX[k]) for k in range(2)),
            vel=tuple(rng.uniform(-VMAX[k], VMAX[k]) for k in range(2)),
            t=rng.uniform(t_lo, t_hi))
        for i in range(n)
    ]


def random_dual_points(rng, n, space, oid_base=0):
    states = random_states(rng, n, oid_base=oid_base)
    return [space.to_dual(s) for s in states]


def random_queries(rng, n):
    queries = []
    for _ in range(n):
        lo = tuple(rng.uniform(0.0, PMAX[k]) for k in range(2))
        hi = tuple(lo[k] + rng.uniform(10.0, 200.0) for k in range(2))
        t1 = rng.uniform(0.0, LIFETIME)
        if rng.random() < 0.5:
            queries.append(TimeSliceQuery(lo, hi, t1))
        else:
            queries.append(WindowQuery(lo, hi, t1,
                                       t1 + rng.uniform(1.0, 40.0)))
    return queries


def entry_key(e: DualPoint):
    return (e.oid, tuple(e.v), tuple(e.p))


def tree_entry_set(tree):
    return sorted(entry_key(e) for e in tree.all_entries())


# --------------------------------------------------------------------- #
# Batch dual transform
# --------------------------------------------------------------------- #

class TestToDualBatch:
    """``to_dual_batch`` is bit-identical to per-object ``to_dual``."""

    @pytest.mark.parametrize("float32", [False, True])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_bit_identity(self, float32, seed):
        rng = random.Random(seed)
        space = make_space(float32)
        states = random_states(rng, 300)
        batch = space.to_dual_batch(states)
        scalar = [space.to_dual(s) for s in states]
        assert [entry_key(p) for p in batch.points()] \
            == [entry_key(p) for p in scalar]

    def test_float32_rounding_edges(self):
        """Values that straddle float32 rounding boundaries must round
        the same way through the batch transform as through the scalar
        ``float(np.float32(x))`` path."""
        space = make_space(float32=True)
        rng = random.Random(3)
        states = []
        for i in range(200):
            # Positions engineered to not be float32-representable.
            pos = tuple(rng.uniform(0.0, PMAX[k]) + 1e-5 for k in range(2))
            vel = tuple(rng.uniform(-VMAX[k], VMAX[k]) + 1e-7
                        for k in range(2))
            vel = tuple(max(-VMAX[k], min(VMAX[k], vel[k]))
                        for k in range(2))
            states.append(MovingObjectState(i, pos, vel,
                                            t=rng.uniform(0.0, LIFETIME)))
        batch = space.to_dual_batch(states)
        for got, s in zip(batch.points(), states):
            want = space.to_dual(s)
            assert entry_key(got) == entry_key(want)

    def test_identical_validation_errors(self):
        space = make_space()
        good = MovingObjectState(0, (10.0, 10.0), (1.0, 1.0), t=5.0)
        bad = MovingObjectState(1, (10.0, 10.0), (9.0, 1.0), t=5.0)
        with pytest.raises(ValueError) as batch_err:
            space.to_dual_batch([good, bad])
        with pytest.raises(ValueError) as scalar_err:
            space.to_dual(bad)
        assert str(batch_err.value) == str(scalar_err.value)

    def test_empty_batch(self):
        batch = make_space().to_dual_batch([])
        assert len(batch) == 0
        assert batch.points() == []


# --------------------------------------------------------------------- #
# Storage: batched codec, write_many, ordered flush
# --------------------------------------------------------------------- #

class TestBatchedLeafCodec:
    @pytest.mark.parametrize("float32", [False, True])
    @pytest.mark.parametrize("n", [0, 1, _PACK_BATCH_MIN - 1,
                                   _PACK_BATCH_MIN, _PACK_BATCH_MIN + 1,
                                   50, 170])
    def test_byte_parity_across_batch_threshold(self, float32, n):
        """The one-call batched pack emits exactly the bytes of the
        per-entry pack + join it replaces."""
        rng = random.Random(n + (1000 if float32 else 0))
        space = make_space(float32)
        codec = NodeCodec(2, float32)
        entries = random_dual_points(rng, n, space)
        leaf = LeafNode(0, (0.0, 0.0), (0.0, 0.0), entries)
        raw = codec.serialize(leaf)
        reference = codec._leaf_header.pack(
            1, leaf.level, len(entries), leaf.overflow,
            *leaf.v_corner, *leaf.p_corner) + b"".join(
            codec._entry.pack(e.oid, *e.v, *e.p) for e in entries)
        assert raw == reference
        back = codec.deserialize(raw)
        assert [entry_key(e) for e in back.entries] \
            == [entry_key(e) for e in entries]


class TestWriteMany:
    def _store_with_records(self, n, size=64):
        pool = BufferPool(InMemoryPageFile(), capacity=256)
        store = RecordStore(pool)
        rids = [store.allocate(size, bytes([i % 251]) * size)
                for i in range(n)]
        return pool, store, rids

    def test_equivalent_to_sequential_writes(self):
        pool, store, rids = self._store_with_records(40)
        payloads = [bytes([(i * 7) % 251]) * 64 for i in range(40)]
        gens = [store.generation_of(rid) for rid in rids]
        store.write_many(zip(rids, payloads))
        for rid, payload, gen in zip(rids, payloads, gens):
            assert store.read(rid) == payload
            assert store.generation_of(rid) == gen + 1

    def test_one_pin_per_page(self):
        pool, store, rids = self._store_with_records(40)
        before = pool.stats.logical_reads
        store.write_many((rid, b"\x42" * 64) for rid in rids)
        pages = {rid // 1024 for rid in rids}
        assert pool.stats.logical_reads - before == len(pages)

    def test_bad_payload_applies_nothing_on_its_page(self):
        pool, store, rids = self._store_with_records(4)
        originals = [store.read(rid) for rid in rids]
        items = [(rids[0], b"\x01" * 64), (rids[1], b"\x02" * 200)]
        with pytest.raises(ValueError):
            store.write_many(items)
        # Both records share the first page: the size check runs before
        # any byte lands, so the oversized payload keeps the *valid* one
        # from being applied too.
        assert store.read(rids[0]) == originals[0]
        assert store.read(rids[1]) == originals[1]

    def test_unknown_rid_raises(self):
        pool, store, rids = self._store_with_records(2)
        with pytest.raises(KeyError):
            store.write_many([(999 * 1024, b"\x00" * 64)])


class TestOrderedFlush:
    def test_flush_all_writes_in_page_id_order(self):
        pagefile = InMemoryPageFile()
        pool = BufferPool(pagefile, capacity=64)
        page_ids = []
        for i in range(8):
            page = pool.new_page()
            page.write(0, bytes([i]) * 4)
            pool.unpin(page, dirty=True)
            page_ids.append(page.page_id)
        order = []
        original = pagefile.write

        def spy(page_id, data):
            order.append(page_id)
            return original(page_id, data)

        pagefile.write = spy
        try:
            pool.flush_all()
        finally:
            pagefile.write = original
        assert order == sorted(order)
        assert sorted(order) == sorted(page_ids)


# --------------------------------------------------------------------- #
# Quadtree grouped descent
# --------------------------------------------------------------------- #

SPLIT_CONFIGS = [
    QuadTreeConfig(),                                  # default ladder
    QuadTreeConfig(leaf_size_ladder=(128, 256, 512)),  # tiny rungs: splits
    QuadTreeConfig(leaf_size_ladder=(128,)),           # single rung
    QuadTreeConfig(max_depth=2, leaf_size_ladder=(128, 256)),
]


class TestQuadTreeInsertBatch:
    @pytest.mark.parametrize("config", SPLIT_CONFIGS)
    @pytest.mark.parametrize("float32", [False, True])
    def test_matches_sequential(self, config, float32):
        rng = random.Random(11)
        points = random_dual_points(rng, 600, make_space(float32))
        batched = make_tree(config, float32)
        batched.insert_batch(points)
        sequential = make_tree(config, float32)
        for p in points:
            sequential.insert(p)
        assert batched.count == sequential.count == 600
        assert tree_entry_set(batched) == tree_entry_set(sequential)

    def test_leaf_split_boundary(self):
        """A batch that lands exactly at, one under, and one over a leaf
        capacity must agree with sequential inserts."""
        config = QuadTreeConfig(leaf_size_ladder=(128,))
        probe = make_tree(config)
        capacity = probe.leaf_capacities[0]
        rng = random.Random(5)
        for n in (capacity - 1, capacity, capacity + 1, 3 * capacity):
            points = random_dual_points(rng, n, make_space())
            batched = make_tree(config)
            batched.insert_batch(points)
            sequential = make_tree(config)
            for p in points:
                sequential.insert(p)
            assert tree_entry_set(batched) == tree_entry_set(sequential)

    def test_max_depth_overflow_chain(self):
        """Coincident points exceeding every ladder rung at max depth
        force the overflow-chain path (including the chain-head
        promotion only a grouped insert can trigger)."""
        config = QuadTreeConfig(max_depth=1, leaf_size_ladder=(128, 256))
        space = make_space()
        dup = DualPoint(0, (1.0, 1.0), (10.0, 10.0))
        points = [DualPoint(i, dup.v, dup.p) for i in range(400)]
        batched = make_tree(config)
        batched.insert_batch(points)
        sequential = make_tree(config)
        for p in points:
            sequential.insert(p)
        assert tree_entry_set(batched) == tree_entry_set(sequential)
        # And deleting half of them back out stays equivalent.
        doomed = points[::2]
        flags_b = batched.delete_batch(doomed)
        flags_s = [sequential.delete(p) for p in doomed]
        assert flags_b == flags_s
        assert tree_entry_set(batched) == tree_entry_set(sequential)

    def test_small_groups_use_scalar_path(self):
        tree = make_tree()
        points = random_dual_points(random.Random(1), 3, make_space())
        tree.insert_batch(points)
        assert tree.count == 3

    def test_scalar_mode_falls_back(self):
        config = QuadTreeConfig(vectorized=False)
        tree = make_tree(config)
        points = random_dual_points(random.Random(2), 100, make_space())
        tree.insert_batch(points)
        reference = make_tree(config)
        for p in points:
            reference.insert(p)
        assert tree_entry_set(tree) == tree_entry_set(reference)


class TestQuadTreeDeleteBatch:
    @pytest.mark.parametrize("config", SPLIT_CONFIGS)
    def test_matches_sequential_including_misses(self, config):
        rng = random.Random(13)
        space = make_space()
        points = random_dual_points(rng, 500, space)
        absent = random_dual_points(rng, 50, space, oid_base=10_000)
        batched = make_tree(config)
        batched.insert_batch(points)
        sequential = make_tree(config)
        for p in points:
            sequential.insert(p)
        doomed = points[::3] + absent
        rng.shuffle(doomed)
        flags_b = batched.delete_batch(doomed)
        flags_s = [sequential.delete(p) for p in doomed]
        assert flags_b == flags_s
        assert batched.count == sequential.count
        assert tree_entry_set(batched) == tree_entry_set(sequential)

    def test_collapse_then_reinsert(self):
        config = QuadTreeConfig(leaf_size_ladder=(128, 256))
        rng = random.Random(17)
        space = make_space()
        points = random_dual_points(rng, 400, space)
        batched = make_tree(config)
        batched.insert_batch(points)
        sequential = make_tree(config)
        for p in points:
            sequential.insert(p)
        # Delete almost everything to force bottom-up collapses...
        doomed = points[:380]
        assert batched.delete_batch(doomed) \
            == [sequential.delete(p) for p in doomed]
        assert tree_entry_set(batched) == tree_entry_set(sequential)
        # ...then grow the collapsed tree again through the batch path.
        fresh = random_dual_points(rng, 200, space, oid_base=5_000)
        batched.insert_batch(fresh)
        for p in fresh:
            sequential.insert(p)
        assert tree_entry_set(batched) == tree_entry_set(sequential)


class TestBulkLoadMicroFix:
    def test_bulk_load_accepts_iterators_and_lists(self):
        rng = random.Random(19)
        points = random_dual_points(rng, 120, make_space())
        from_list = make_tree()
        from_list.bulk_load(points)
        from_iter = make_tree()
        from_iter.bulk_load(iter(points))
        assert tree_entry_set(from_list) == tree_entry_set(from_iter)
        assert points == sorted(points, key=id) or len(points) == 120

    def test_bulk_load_on_fresh_tree_reclaims_root(self):
        tree = make_tree()
        pages_before = tree.store.pages_in_use()
        tree.bulk_load(random_dual_points(random.Random(23), 50,
                                          make_space()))
        # The fresh empty root was freed, not leaked: the loaded tree
        # accounts for every page in use.
        assert tree.store.pages_in_use() >= pages_before
        assert tree.count == 50


# --------------------------------------------------------------------- #
# StripesIndex batched writes
# --------------------------------------------------------------------- #

class TestStripesBatchParity:
    @pytest.mark.parametrize("float32", [False, True])
    def test_cross_window_insert_batch(self, float32):
        """A batch spanning four lifetime windows must rotate exactly as
        sequential inserts do (final windows and answers identical)."""
        rng = random.Random(29)
        states = []
        for w in range(4):
            states += random_states(rng, 120, t_lo=w * LIFETIME,
                                    t_hi=(w + 1) * LIFETIME - 1e-6,
                                    oid_base=1000 * w)
        states.sort(key=lambda s: s.t)
        batched = make_index(float32)
        batched.insert_batch(states)
        sequential = make_index(float32)
        for s in states:
            sequential.insert(s)
        assert batched.live_windows == sequential.live_windows
        assert len(batched) == len(sequential)
        for q in random_queries(rng, 40):
            assert set(batched.query(q)) == set(sequential.query(q))

    def test_delete_batch_matches_sequential(self):
        """Deletes of live, absent, and rotation-expired entries all
        flag exactly as per-point deletes do."""
        rng = random.Random(31)
        states = random_states(rng, 300, t_lo=3 * LIFETIME,
                               t_hi=4 * LIFETIME - 1e-6)
        # Entries whose window the indexes have already rotated out.
        expired = random_states(rng, 20, t_lo=0.0, t_hi=LIFETIME - 1e-6,
                                oid_base=9000)
        batched = make_index()
        batched.insert_batch(states)
        sequential = make_index()
        for s in states:
            sequential.insert(s)
        doomed = states[::2] + expired
        flags = batched.delete_batch(doomed)
        assert flags == [sequential.delete(s) for s in doomed]
        assert len(batched) == len(sequential)

    def test_update_batch_matches_sequential_replay(self):
        """Timestamp-ordered updates, including repeated objects whose
        chains net, replayed batched vs per-point."""
        rng = random.Random(37)
        initial = random_states(rng, 250)
        current = {s.oid: s for s in initial}
        pairs = []
        t = 1.0
        for _ in range(800):
            oid = rng.randrange(250)
            old = current[oid]
            t += rng.uniform(0.05, 0.6)
            new = MovingObjectState(
                oid,
                pos=tuple(rng.uniform(0.0, PMAX[k]) for k in range(2)),
                vel=tuple(rng.uniform(-VMAX[k], VMAX[k]) for k in range(2)),
                t=t)
            pairs.append((old, new))
            current[oid] = new
        batched = make_index()
        batched.insert_batch(initial)
        sequential = make_index()
        for s in initial:
            sequential.insert(s)
        removed_b = 0
        for i in range(0, len(pairs), 128):
            removed_b += batched.update_batch(pairs[i:i + 128])
        removed_s = sum(1 for old, new in pairs
                        if sequential.update(old, new))
        assert removed_b == removed_s
        # Netting may skip materialising a window every entry of which
        # was superseded inside one batch; the windows that do exist
        # agree, and so does every answer.
        assert set(batched.live_windows) <= set(sequential.live_windows)
        assert max(batched.live_windows) == max(sequential.live_windows)
        assert len(batched) == len(sequential)
        for q in random_queries(rng, 40):
            assert set(batched.query(q)) == set(sequential.query(q))

    def test_update_batch_spanning_rotation(self):
        """Chained updates whose windows the batch itself rotates out
        still leave identical state and answers."""
        rng = random.Random(41)
        initial = random_states(rng, 80, t_hi=LIFETIME - 1.0)
        pairs = []
        current = {s.oid: s for s in initial}
        for w in range(1, 5):
            for oid in range(0, 80, 3):
                old = current[oid]
                new = MovingObjectState(
                    oid,
                    pos=tuple(rng.uniform(0.0, PMAX[k]) for k in range(2)),
                    vel=tuple(rng.uniform(-VMAX[k], VMAX[k])
                              for k in range(2)),
                    t=w * LIFETIME + rng.uniform(0.0, LIFETIME - 1.0))
                pairs.append((old, new))
                current[oid] = new
        pairs.sort(key=lambda p: p[1].t)
        batched = make_index()
        batched.insert_batch(initial)
        sequential = make_index()
        for s in initial:
            sequential.insert(s)
        batched.update_batch(pairs)
        for old, new in pairs:
            sequential.update(old, new)
        assert set(batched.live_windows) <= set(sequential.live_windows)
        assert max(batched.live_windows) == max(sequential.live_windows)
        assert len(batched) == len(sequential)
        for q in random_queries(rng, 30):
            assert set(batched.query(q)) == set(sequential.query(q))

    def test_update_batch_with_none_old(self):
        rng = random.Random(43)
        states = random_states(rng, 60)
        index = make_index()
        removed = index.update_batch([(None, s) for s in states])
        assert removed == 0
        assert len(index) == 60

    def test_non_linkable_duplicate_splits_run(self):
        """Re-inserting an oid with old=None (not a chain link) must see
        its predecessor's insert, exactly as sequential replay would."""
        rng = random.Random(47)
        a = random_states(rng, 1)[0]
        b = MovingObjectState(a.oid, a.pos, a.vel, t=a.t + 1.0)
        index = make_index()
        index.update_batch([(None, a), (None, b), (a, b)])
        sequential = make_index()
        for pair in [(None, a), (None, b), (a, b)]:
            sequential.update(*pair)
        assert len(index) == len(sequential)
        for q in random_queries(rng, 10):
            assert set(index.query(q)) == set(sequential.query(q))

    def test_dimension_mismatch_raises(self):
        index = make_index()
        bad = MovingObjectState(1, (1.0,), (0.5,), t=0.0)
        with pytest.raises(ValueError):
            index.insert_batch([bad])
        with pytest.raises(ValueError):
            index.update_batch([(None, bad)])


# --------------------------------------------------------------------- #
# ShardedStripes batched writes
# --------------------------------------------------------------------- #

class TestShardedBatchParity:
    @pytest.mark.parametrize("policy", [None, "velocity"])
    def test_batched_writes_match_serial(self, policy):
        rng = random.Random(53)
        initial = random_states(rng, 200)
        current = {s.oid: s for s in initial}
        pairs = []
        t = 1.0
        for _ in range(400):
            oid = rng.randrange(200)
            old = current[oid]
            t += rng.uniform(0.1, 0.8)
            new = MovingObjectState(
                oid,
                pos=tuple(rng.uniform(0.0, PMAX[k]) for k in range(2)),
                vel=tuple(rng.uniform(-VMAX[k], VMAX[k]) for k in range(2)),
                t=t)
            pairs.append((old, new))
            current[oid] = new

        config = StripesConfig(vmax=VMAX, pmax=PMAX, lifetime=LIFETIME)
        shard_policy = (VelocityBandShardPolicy(VMAX[0])
                        if policy == "velocity" else HashShardPolicy())
        sharded = ShardedStripes(config, n_shards=3, policy=shard_policy,
                                 pool_pages=512)
        sharded.insert_batch(initial)
        for i in range(0, len(pairs), 96):
            sharded.update_batch(pairs[i:i + 96])

        serial = StripesIndex(
            config, BufferPool(InMemoryPageFile(), capacity=4096))
        for s in initial:
            serial.insert(s)
        for old, new in pairs:
            serial.update(old, new)

        for q in random_queries(rng, 40):
            assert set(sharded.query(q)) == set(serial.query(q))

    def test_delete_batch_counts(self):
        rng = random.Random(59)
        states = random_states(rng, 150)
        config = StripesConfig(vmax=VMAX, pmax=PMAX, lifetime=LIFETIME)
        sharded = ShardedStripes(config, n_shards=2, pool_pages=512)
        sharded.insert_batch(states)
        assert sharded.delete_batch(states[:70]) == 70
        serial = StripesIndex(
            config, BufferPool(InMemoryPageFile(), capacity=4096))
        for s in states:
            serial.insert(s)
        assert sum(serial.delete_batch(states[:70])) == 70
        for q in random_queries(rng, 20):
            assert set(sharded.query(q)) == set(serial.query(q))


# --------------------------------------------------------------------- #
# Write-path observability
# --------------------------------------------------------------------- #

class TestWritePathMetrics:
    def test_insert_histograms_observe(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        index = make_index()
        index.attach_metrics(registry)
        states = random_states(random.Random(61), 30)
        index.insert(states[0])
        index.insert_batch(states[1:])
        snapshot = registry.to_dict()
        hists = snapshot["histograms"]
        assert hists["stripes_insert_latency_seconds"]["count"] == 1
        assert hists["stripes_insert_batch_latency_seconds"]["count"] == 1
        registry.collect()
        assert registry.get("stripes_inserts_total").value == 30

    def test_unattached_index_pays_no_observation(self):
        index = make_index()
        assert index._insert_hist is None
        assert index._insert_batch_hist is None
        index.insert_batch(random_states(random.Random(67), 10))
        assert len(index) == 10

    def test_render_write_table(self):
        from repro.bench.report import render_write_table
        from repro.bench.runner import RunResult
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        index = make_index()
        index.attach_metrics(registry)
        for s in random_states(random.Random(71), 20):
            index.insert(s)
        result = RunResult("STRIPES")
        result.phase_metrics["ops"] = registry.to_dict()
        bare = RunResult("SCAN")
        text = render_write_table("write", {"STRIPES": result, "SCAN": bare})
        assert "20" in text          # inserts counter surfaced
        assert "SCAN" in text        # no-metrics row renders dashes
        assert text.count("-") > 10
