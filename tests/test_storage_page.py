"""Unit tests for the page abstraction."""

import pytest

from repro.storage.page import PAGE_SIZE, Page


class TestPageConstruction:
    def test_default_buffer_is_zeroed(self):
        page = Page(0)
        assert len(page.data) == PAGE_SIZE
        assert bytes(page.data) == b"\x00" * PAGE_SIZE

    def test_custom_page_size(self):
        page = Page(3, page_size=512)
        assert len(page.data) == 512

    def test_negative_page_id_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Page(-1)

    def test_wrong_buffer_length_rejected(self):
        with pytest.raises(ValueError, match="exactly"):
            Page(0, bytearray(10))

    def test_new_page_is_clean_and_unpinned(self):
        page = Page(0)
        assert not page.dirty
        assert not page.is_pinned
        assert page.pin_count == 0


class TestPinning:
    def test_pin_unpin_balance(self):
        page = Page(0)
        page.pin()
        page.pin()
        assert page.pin_count == 2
        page.unpin()
        assert page.is_pinned
        page.unpin()
        assert not page.is_pinned

    def test_unpin_without_pin_raises(self):
        page = Page(0)
        with pytest.raises(RuntimeError, match="unpinned more than pinned"):
            page.unpin()


class TestReadWrite:
    def test_write_marks_dirty(self):
        page = Page(0)
        page.write(10, b"hello")
        assert page.dirty
        assert page.read(10, 5) == b"hello"

    def test_write_at_end_boundary(self):
        page = Page(0)
        page.write(PAGE_SIZE - 3, b"abc")
        assert page.read(PAGE_SIZE - 3, 3) == b"abc"

    def test_write_past_end_rejected(self):
        page = Page(0)
        with pytest.raises(ValueError, match="out of page bounds"):
            page.write(PAGE_SIZE - 2, b"abc")

    def test_negative_offset_rejected(self):
        page = Page(0)
        with pytest.raises(ValueError):
            page.read(-1, 2)

    def test_read_does_not_mark_dirty(self):
        page = Page(0)
        page.read(0, 16)
        assert not page.dirty

    def test_repr_mentions_state(self):
        page = Page(7)
        page.mark_dirty()
        assert "id=7" in repr(page)
        assert "dirty=True" in repr(page)
