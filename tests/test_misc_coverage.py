"""Targeted tests for corners not covered elsewhere: TPR float32 mode,
custom quadtree collapse thresholds, workload ordering helpers, and
report rendering with degenerate inputs."""

import random

import pytest

from repro.baselines.scan import ScanIndex
from repro.bench.report import format_table, render_batches
from repro.bench.runner import RunResult
from repro.core.dual import DualPoint, DualSpace
from repro.core.quadtree import DualQuadTree, QuadTreeConfig
from repro.query.predicates import matches_with_tolerance
from repro.query.types import MovingObjectState, TimeSliceQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.storage.stats import DiskModel
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTreeConfig
from repro.workload.operations import QueryOp, Workload


class TestTPRFloat32:
    def test_float32_tree_matches_oracle_with_tolerance(self):
        rng = random.Random(71)
        pool = BufferPool(InMemoryPageFile(), capacity=4096)
        tree = TPRStarTree(
            TPRTreeConfig(d=2, horizon=30.0, float32=True,
                          delete_eps=1e-4),
            RecordStore(pool))
        oracle = ScanIndex(1e12)
        live = {}
        for oid in range(400):
            state = MovingObjectState(
                oid, (rng.uniform(0, 200), rng.uniform(0, 200)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                rng.uniform(0, 10))
            tree.insert(state)
            oracle.insert(state)
            live[oid] = state
        for oid in rng.sample(sorted(live), 150):
            new = MovingObjectState(
                oid, (rng.uniform(0, 200), rng.uniform(0, 200)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                tree.now + rng.uniform(0, 1))
            tree.update(live[oid], new)
            oracle.update(live[oid], new)
            live[oid] = new
        assert len(tree) == len(oracle)
        for _ in range(30):
            x = rng.uniform(0, 160)
            query = TimeSliceQuery((x, x), (x + 40, x + 40),
                                   tree.now + rng.uniform(0, 20))
            got = sorted(tree.query(query))
            expected = sorted(oracle.query(query))
            if got != expected:
                for oid in set(got).symmetric_difference(expected):
                    _, boundary = matches_with_tolerance(
                        live[oid], query, 1e-3)
                    assert boundary

    def test_float32_capacity_larger(self):
        pool = BufferPool(InMemoryPageFile(), capacity=64)
        narrow = TPRStarTree(TPRTreeConfig(d=2, float32=True),
                             RecordStore(pool))
        pool2 = BufferPool(InMemoryPageFile(), capacity=64)
        wide = TPRStarTree(TPRTreeConfig(d=2, float32=False),
                           RecordStore(pool2))
        assert narrow.leaf_capacity > wide.leaf_capacity


class TestCollapseThreshold:
    SPACE = DualSpace(vmax=(3.0, 3.0), pmax=(100.0, 100.0), lifetime=10.0)

    def _tree(self, collapse_capacity):
        pool = BufferPool(InMemoryPageFile(), capacity=4096)
        return DualQuadTree(
            self.SPACE, RecordStore(pool),
            QuadTreeConfig(collapse_capacity=collapse_capacity))

    def test_zero_threshold_never_collapses(self):
        tree = self._tree(collapse_capacity=0)
        rng = random.Random(81)
        points = [DualPoint(
            oid,
            tuple(rng.uniform(0, e) for e in self.SPACE.velocity_extent),
            tuple(rng.uniform(0, e) for e in self.SPACE.position_extent))
            for oid in range(500)]
        for point in points:
            tree.insert(point)
        assert tree.stats().nonleaf_nodes > 0
        for point in points[:-2]:
            assert tree.delete(point)
        # With a zero threshold the skeleton of non-leaf nodes remains.
        assert tree.stats().nonleaf_nodes > 0
        assert tree.count == 2

    def test_aggressive_threshold_collapses_early(self):
        tree = self._tree(collapse_capacity=10_000)
        rng = random.Random(82)
        points = [DualPoint(
            oid,
            tuple(rng.uniform(0, e) for e in self.SPACE.velocity_extent),
            tuple(rng.uniform(0, e) for e in self.SPACE.position_extent))
            for oid in range(400)]
        for point in points:
            tree.insert(point)
        before = tree.stats()
        # Any delete triggers a root collapse-and-rebuild: entries exceed
        # one leaf, so the rebuild is a compact subtree, not a leaf.
        assert tree.delete(points[0])
        stats = tree.stats()
        assert stats.nonleaf_nodes <= before.nonleaf_nodes
        assert tree.count == 399
        assert sorted(e.oid for e in tree.all_entries()) \
            == sorted(p.oid for p in points[1:])
        # Further deletes keep draining correctly through rebuilds.
        for point in points[1:100]:
            assert tree.delete(point)
        assert tree.count == 300


class TestWorkloadHelpers:
    def test_check_ordered_detects_disorder(self):
        early = QueryOp(TimeSliceQuery((0.0,), (1.0,), 5.0), issued_at=5.0)
        late = QueryOp(TimeSliceQuery((0.0,), (1.0,), 9.0), issued_at=9.0)
        assert Workload(initial=[], operations=[early, late]).check_ordered()
        assert not Workload(initial=[],
                            operations=[late, early]).check_ordered()


class TestReportEdgeCases:
    def test_empty_table(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_batches_with_uneven_lengths(self):
        from repro.bench.runner import BatchCost
        short = RunResult("short")
        short.batches = [BatchCost(index=0, ops=10, cpu_seconds=0.1)]
        long = RunResult("long")
        long.batches = [BatchCost(index=0, ops=10, cpu_seconds=0.1),
                        BatchCost(index=1, ops=10, cpu_seconds=0.2)]
        text = render_batches("t", {"short": short, "long": long},
                              DiskModel())
        assert "-" in text  # the missing batch renders as a dash

    def test_batches_with_no_results(self):
        assert "batch" in render_batches("t", {}, DiskModel())
