"""Unit tests for IO statistics and the disk-latency model."""

import pytest

from repro.storage.stats import (
    CostAccumulator,
    DiskModel,
    IOStats,
    OperationCost,
)


class TestIOStats:
    def test_snapshot_is_independent(self):
        stats = IOStats(physical_reads=3)
        snap = stats.snapshot()
        stats.physical_reads = 10
        assert snap.physical_reads == 3

    def test_diff(self):
        stats = IOStats(logical_reads=10, physical_reads=4,
                        physical_writes=2)
        earlier = IOStats(logical_reads=6, physical_reads=1)
        delta = stats.diff(earlier)
        assert delta.logical_reads == 4
        assert delta.physical_reads == 3
        assert delta.physical_writes == 2

    def test_hit_rate(self):
        assert IOStats().hit_rate == 1.0
        stats = IOStats(logical_reads=10, physical_reads=2)
        assert stats.hit_rate == pytest.approx(0.8)

    def test_physical_io_sums_reads_and_writes(self):
        assert IOStats(physical_reads=2, physical_writes=3).physical_io == 5

    def test_reset(self):
        stats = IOStats(logical_reads=5, physical_reads=2, evictions=1)
        stats.reset()
        assert stats.logical_reads == 0
        assert stats.physical_reads == 0
        assert stats.evictions == 0


class TestIOStatsFieldGeneric:
    """snapshot/diff/counters are derived from dataclasses.fields, so a
    newly added counter field can never be silently dropped."""

    def test_counters_cover_every_field(self):
        import dataclasses
        stats = IOStats()
        assert set(stats.counters()) == {
            f.name for f in dataclasses.fields(IOStats)}

    def test_snapshot_and_diff_cover_every_field(self):
        stats = IOStats(**{name: i + 1
                           for i, name in enumerate(IOStats().counters())})
        snap = stats.snapshot()
        assert snap.counters() == stats.counters()
        zero = stats.diff(snap)
        assert all(v == 0 for v in zero.counters().values())


class TestDiskModel:
    def test_sequential_fraction_validated(self):
        with pytest.raises(ValueError):
            DiskModel(sequential_fraction=1.5)
        with pytest.raises(ValueError):
            DiskModel(sequential_fraction=-0.1)

    def test_sequential_fraction_boundaries_allowed(self):
        assert DiskModel(sequential_fraction=0.0).sequential_fraction == 0.0
        assert DiskModel(sequential_fraction=1.0).sequential_fraction == 1.0

    def test_default_random_latency(self):
        disk = DiskModel()
        assert disk.seconds(100) == pytest.approx(1.2)  # 100 x 12 ms

    def test_sequential_fraction_lowers_cost(self):
        random_only = DiskModel(sequential_fraction=0.0)
        half_seq = DiskModel(sequential_fraction=0.5)
        assert half_seq.seconds(100) < random_only.seconds(100)

    def test_zero_ios_cost_nothing(self):
        assert DiskModel().seconds(0) == 0.0

    def test_negative_ios_rejected(self):
        with pytest.raises(ValueError):
            DiskModel().seconds(-1)


class TestOperationCost:
    def test_total_combines_cpu_and_io(self):
        cost = OperationCost(physical_reads=1, physical_writes=1,
                             cpu_seconds=0.5)
        disk = DiskModel(random_io_ms=10.0)
        assert cost.io_seconds(disk) == pytest.approx(0.02)
        assert cost.total_seconds(disk) == pytest.approx(0.52)


class TestCostAccumulator:
    def test_means(self):
        acc = CostAccumulator()
        acc.add(OperationCost(2, 0, 0.1))
        acc.add(OperationCost(0, 2, 0.3))
        assert acc.count == 2
        assert acc.mean_io() == pytest.approx(2.0)
        assert acc.mean_cpu_seconds() == pytest.approx(0.2)

    def test_empty_accumulator_means_zero(self):
        acc = CostAccumulator()
        assert acc.mean_io() == 0.0
        assert acc.mean_cpu_seconds() == 0.0
        assert acc.mean_total_seconds(DiskModel()) == 0.0

    def test_mean_total_includes_disk_model(self):
        acc = CostAccumulator()
        acc.add(OperationCost(1, 0, 0.0))
        disk = DiskModel(random_io_ms=1000.0)
        assert acc.mean_total_seconds(disk) == pytest.approx(1.0)


class TestCostAccumulatorPercentiles:
    def _filled(self, n=100):
        acc = CostAccumulator()
        for i in range(1, n + 1):
            acc.add(OperationCost(i % 3, 0, i / 1000.0), keep=True)
        return acc

    def test_per_op_costs_empty_without_keep(self):
        acc = CostAccumulator()
        acc.add(OperationCost(1, 0, 0.5))
        assert acc.per_op_costs() == []
        assert acc.percentile(0.5) == 0.0

    def test_median_of_known_distribution(self):
        acc = self._filled(100)  # cpu 1ms .. 100ms
        assert acc.p50 == pytest.approx(0.0505)
        assert acc.p95 == pytest.approx(0.09505)
        assert acc.p99 == pytest.approx(0.09901)

    def test_percentile_bounds(self):
        acc = self._filled(10)
        assert acc.percentile(0.0) == pytest.approx(0.001)
        assert acc.percentile(1.0) == pytest.approx(0.010)
        with pytest.raises(ValueError):
            acc.percentile(1.5)
        with pytest.raises(ValueError):
            acc.percentile(-0.01)

    def test_percentile_with_disk_model_adds_io_time(self):
        acc = CostAccumulator()
        acc.add(OperationCost(physical_reads=1, physical_writes=0,
                              cpu_seconds=0.0), keep=True)
        disk = DiskModel(random_io_ms=100.0)
        assert acc.percentile(0.5) == 0.0
        assert acc.percentile(0.5, disk) == pytest.approx(0.1)

    def test_single_observation(self):
        acc = CostAccumulator()
        acc.add(OperationCost(0, 0, 0.042), keep=True)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert acc.percentile(q) == pytest.approx(0.042)
