"""Tests for the sharded STRIPES facade: shard policies, the
reader/writer lock, fan-out parity against a serial index, and window
rotation across shards."""

import random
import threading

import pytest

from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import MovingObjectState, TimeSliceQuery, WindowQuery
from repro.service import (
    HashShardPolicy,
    RWLock,
    ShardedStripes,
    VelocityBandShardPolicy,
)

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0), lifetime=30.0)


def random_state(rng, oid, t, config=CONFIG):
    return MovingObjectState(
        oid,
        tuple(rng.uniform(0, p) for p in config.pmax),
        tuple(rng.uniform(-v, v) for v in config.vmax),
        t)


def random_query(rng, now, config=CONFIG):
    side = 40.0
    x = rng.uniform(0, config.pmax[0] - side)
    y = rng.uniform(0, config.pmax[1] - side)
    lo, hi = (x, y), (x + side, y + side)
    t1 = now + rng.uniform(0, 10)
    if rng.random() < 0.5:
        return TimeSliceQuery(lo, hi, t1)
    return WindowQuery(lo, hi, t1, t1 + rng.uniform(0.1, 10))


class TestShardPolicies:
    def test_hash_policy_covers_all_shards(self):
        policy = HashShardPolicy()
        rng = random.Random(1)
        hits = set()
        for oid in range(200):
            sid = policy.shard_of(random_state(rng, oid, 0.0), 4)
            assert 0 <= sid < 4
            hits.add(sid)
        assert hits == {0, 1, 2, 3}

    def test_hash_policy_is_pure(self):
        policy = HashShardPolicy()
        obj = MovingObjectState(42, (1.0, 2.0), (0.5, -0.5), 0.0)
        assert policy.shard_of(obj, 8) == policy.shard_of(obj, 8)

    def test_velocity_policy_bands_by_speed(self):
        policy = VelocityBandShardPolicy(max_speed=4.0)
        slow = MovingObjectState(1, (0.0, 0.0), (0.1, 0.0), 0.0)
        fast = MovingObjectState(2, (0.0, 0.0), (3.9, 0.0), 0.0)
        assert policy.shard_of(slow, 4) == 0
        assert policy.shard_of(fast, 4) == 3

    def test_velocity_policy_clamps_over_limit(self):
        policy = VelocityBandShardPolicy(max_speed=1.0)
        over = MovingObjectState(3, (0.0, 0.0), (5.0, 5.0), 0.0)
        assert policy.shard_of(over, 4) == 3

    def test_velocity_policy_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            VelocityBandShardPolicy(max_speed=0.0)


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # both readers inside at once or timeout

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        writer_in = threading.Event()
        release_writer = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                release_writer.wait(timeout=5)
                order.append("writer")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read():
                order.append("reader")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        writer_in.wait(timeout=5)
        release_writer.set()
        tw.join(timeout=5)
        tr.join(timeout=5)
        assert order == ["writer", "reader"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        order = []
        reader_in = threading.Event()
        release_reader = threading.Event()

        def holder():
            with lock.read():
                reader_in.set()
                release_reader.wait(timeout=5)

        def writer():
            with lock.write():
                order.append("writer")

        def late_reader():
            with lock.read():
                order.append("reader")

        th = threading.Thread(target=holder)
        th.start()
        reader_in.wait(timeout=5)
        tw = threading.Thread(target=writer)
        tw.start()
        # Give the writer time to be queued before the late reader arrives.
        import time
        time.sleep(0.05)
        tr = threading.Thread(target=late_reader)
        tr.start()
        time.sleep(0.05)
        release_reader.set()
        for t in (th, tw, tr):
            t.join(timeout=5)
        assert order[0] == "writer"  # writer preference


def feed(ix, operations):
    for kind, payload in operations:
        if kind == "insert":
            ix.insert(payload)
        elif kind == "update":
            ix.update(*payload)
        elif kind == "delete":
            ix.delete(payload)


def build_operations(rng, n_objects=120, n_updates=150, t_spread=20.0):
    states = {}
    ops = []
    for oid in range(n_objects):
        state = random_state(rng, oid, rng.uniform(0, t_spread))
        states[oid] = state
        ops.append(("insert", state))
    for _ in range(n_updates):
        oid = rng.randrange(n_objects)
        old = states[oid]
        new = random_state(rng, oid, old.t + rng.uniform(0.1, 10.0))
        states[oid] = new
        ops.append(("update", (old, new)))
    return ops


@pytest.mark.parametrize("policy_factory", [
    lambda: HashShardPolicy(),
    lambda: VelocityBandShardPolicy(max_speed=3.0),
], ids=["hash", "velocity"])
def test_sharded_matches_serial(policy_factory):
    rng = random.Random(11)
    ops = build_operations(rng)
    serial = StripesIndex(CONFIG)
    sharded = ShardedStripes(CONFIG, n_shards=4, policy=policy_factory())
    feed(serial, ops)
    feed(sharded, ops)
    assert len(sharded) == len(serial)
    now = max(op[1][1].t if op[0] == "update" else op[1].t for op in ops)
    for _ in range(60):
        query = random_query(rng, now)
        assert set(sharded.query(query)) == set(serial.query(query))


def test_query_batch_matches_individual_queries():
    rng = random.Random(12)
    ops = build_operations(rng, n_objects=80, n_updates=60)
    sharded = ShardedStripes(CONFIG, n_shards=3)
    feed(sharded, ops)
    queries = [random_query(rng, 20.0) for _ in range(25)]
    batched = sharded.query_batch(queries)
    for query, result in zip(queries, batched):
        assert set(result) == set(sharded.query(query))


def test_tree_path_matches_flat_path():
    rng = random.Random(13)
    ops = build_operations(rng, n_objects=100, n_updates=80)
    flat = ShardedStripes(CONFIG, n_shards=2, scan_threshold=10_000)
    tree = ShardedStripes(CONFIG, n_shards=2, scan_threshold=0)
    feed(flat, ops)
    feed(tree, ops)
    queries = [random_query(rng, 20.0) for _ in range(30)]
    for f, t in zip(flat.query_batch(queries), tree.query_batch(queries)):
        assert set(f) == set(t)


def test_rotation_propagates_to_quiet_shards():
    """An update on one shard must expire stale windows on all shards,
    exactly as a serial index would."""
    lifetime = CONFIG.lifetime
    sharded = ShardedStripes(CONFIG, n_shards=4)
    serial = StripesIndex(CONFIG)
    rng = random.Random(14)
    first = [random_state(rng, oid, 1.0) for oid in range(40)]
    for ix in (sharded, serial):
        for state in first:
            ix.insert(state)
    # One lone update two windows later: the serial index drops the old
    # window wholesale; the facade must do so on every shard.
    late = random_state(rng, 0, 2 * lifetime + 1.0)
    serial.update(first[0], late)
    sharded.update(first[0], late)
    assert len(sharded) == len(serial) == 1
    query = TimeSliceQuery((0.0, 0.0), CONFIG.pmax, 2 * lifetime + 2.0)
    assert set(sharded.query(query)) == set(serial.query(query))


def test_velocity_band_migration_on_update():
    """An update that crosses a speed band moves the entry between
    shards without losing or duplicating it."""
    policy = VelocityBandShardPolicy(max_speed=3.0)
    sharded = ShardedStripes(CONFIG, n_shards=4, policy=policy)
    slow = MovingObjectState(7, (50.0, 50.0), (0.1, 0.0), 0.0)
    fast = MovingObjectState(7, (60.0, 50.0), (2.9, 0.0), 5.0)
    sharded.insert(slow)
    assert sharded.shard_sizes()[policy.shard_of(slow, 4)] == 1
    sharded.update(slow, fast)
    sizes = sharded.shard_sizes()
    assert sum(sizes) == 1
    assert sizes[policy.shard_of(fast, 4)] == 1
    assert sizes[policy.shard_of(slow, 4)] == 0


def test_introspection_and_validation():
    sharded = ShardedStripes(CONFIG, n_shards=2)
    assert len(sharded) == 0
    assert sharded.shard_sizes() == [0, 0]
    assert sharded.pages_in_use() >= 0
    assert "ShardedStripes" in repr(sharded)
    with pytest.raises(ValueError):
        ShardedStripes(CONFIG, n_shards=0)


def test_delete_routes_to_the_right_shard():
    sharded = ShardedStripes(CONFIG, n_shards=4)
    rng = random.Random(15)
    states = [random_state(rng, oid, 0.0) for oid in range(30)]
    sharded.insert_batch(states)
    assert sharded.delete(states[3]) is True
    assert sharded.delete(states[3]) is False
    assert len(sharded) == 29
