"""Unit tests for in-memory and on-disk page files."""

import os

import pytest

from repro.storage.page import PAGE_SIZE
from repro.storage.pagefile import InMemoryPageFile, OnDiskPageFile


@pytest.fixture(params=["memory", "disk"])
def anyfile(request, tmp_path):
    if request.param == "memory":
        pf = InMemoryPageFile()
    else:
        pf = OnDiskPageFile(tmp_path / "pages.db")
    yield pf
    pf.close()


class TestAllocation:
    def test_sequential_allocation(self, anyfile):
        assert anyfile.allocate() == 0
        assert anyfile.allocate() == 1
        assert anyfile.num_pages == 2

    def test_free_and_reuse(self, anyfile):
        first = anyfile.allocate()
        anyfile.allocate()
        anyfile.free(first)
        assert anyfile.num_pages == 1
        assert anyfile.allocate() == first

    def test_double_free_rejected(self, anyfile):
        page = anyfile.allocate()
        anyfile.free(page)
        with pytest.raises(ValueError, match="already freed"):
            anyfile.free(page)

    def test_capacity_tracks_high_water_mark(self, anyfile):
        for _ in range(5):
            anyfile.allocate()
        anyfile.free(4)
        assert anyfile.capacity_pages == 5
        assert anyfile.num_pages == 4


class TestReadWrite:
    def test_round_trip(self, anyfile):
        page = anyfile.allocate()
        payload = bytes(range(256)) * (PAGE_SIZE // 256)
        anyfile.write(page, payload)
        assert bytes(anyfile.read(page)) == payload

    def test_fresh_page_reads_zeroes(self, anyfile):
        page = anyfile.allocate()
        assert bytes(anyfile.read(page)) == b"\x00" * PAGE_SIZE

    def test_out_of_range_read_rejected(self, anyfile):
        with pytest.raises(ValueError, match="out of range"):
            anyfile.read(0)

    def test_wrong_length_write_rejected(self, anyfile):
        page = anyfile.allocate()
        with pytest.raises(ValueError, match="exactly"):
            anyfile.write(page, b"short")

    def test_read_returns_private_copy(self, anyfile):
        page = anyfile.allocate()
        anyfile.write(page, b"\x01" * PAGE_SIZE)
        buf = anyfile.read(page)
        buf[0] = 0xFF
        assert anyfile.read(page)[0] == 0x01


class TestOnDiskPersistence:
    def test_reopen_preserves_contents(self, tmp_path):
        path = tmp_path / "persist.db"
        with OnDiskPageFile(path) as pf:
            page = pf.allocate()
            pf.write(page, b"\xAB" * PAGE_SIZE)
        with OnDiskPageFile(path) as pf:
            assert pf.num_pages == 1
            assert bytes(pf.read(0)) == b"\xAB" * PAGE_SIZE

    def test_file_size_matches_pages(self, tmp_path):
        path = tmp_path / "sized.db"
        with OnDiskPageFile(path) as pf:
            for _ in range(3):
                pf.allocate()
            pf.write(2, b"\x01" * PAGE_SIZE)
        assert os.path.getsize(path) == 3 * PAGE_SIZE

    def test_corrupt_size_rejected(self, tmp_path):
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(ValueError, match="not a multiple"):
            OnDiskPageFile(path)

    def test_custom_page_size(self, tmp_path):
        with OnDiskPageFile(tmp_path / "small.db", page_size=512) as pf:
            page = pf.allocate()
            pf.write(page, b"\x07" * 512)
            assert bytes(pf.read(page)) == b"\x07" * 512
