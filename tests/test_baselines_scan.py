"""Tests for the linear-scan oracle baseline."""

import pytest

from repro.baselines.scan import ScanIndex
from repro.query.types import MovingObjectState, TimeSliceQuery, WindowQuery


def state(oid, x, y, vx=0.0, vy=0.0, t=0.0):
    return MovingObjectState(oid, (x, y), (vx, vy), t)


class TestBasics:
    def test_insert_and_query(self):
        scan = ScanIndex(lifetime=10.0)
        scan.insert(state(1, 5.0, 5.0))
        assert scan.query(TimeSliceQuery((0.0, 0.0), (10.0, 10.0), 1.0)) \
            == [1]

    def test_query_respects_motion(self):
        scan = ScanIndex(lifetime=10.0)
        scan.insert(state(1, 0.0, 0.0, vx=1.0))
        assert scan.query(TimeSliceQuery((4.0, -1.0), (6.0, 1.0), 5.0)) \
            == [1]
        assert scan.query(TimeSliceQuery((4.0, -1.0), (6.0, 1.0), 9.0)) \
            == []

    def test_delete(self):
        scan = ScanIndex(lifetime=10.0)
        st1 = state(1, 5.0, 5.0)
        scan.insert(st1)
        assert scan.delete(st1)
        assert len(scan) == 0
        assert not scan.delete(st1)

    def test_delete_falls_back_to_oid(self):
        scan = ScanIndex(lifetime=10.0)
        scan.insert(state(1, 5.0, 5.0))
        slightly_off = state(1, 5.0000001, 5.0)
        assert scan.delete(slightly_off)
        assert len(scan) == 0

    def test_duplicate_oids_both_stored(self):
        scan = ScanIndex(lifetime=10.0)
        scan.insert(state(1, 5.0, 5.0))
        scan.insert(state(1, 6.0, 6.0))
        assert len(scan) == 2
        hits = scan.query(TimeSliceQuery((0.0, 0.0), (10.0, 10.0), 0.0))
        assert hits == [1, 1]

    def test_bad_lifetime_rejected(self):
        with pytest.raises(ValueError):
            ScanIndex(lifetime=0.0)

    def test_negative_timestamp_rejected(self):
        scan = ScanIndex(lifetime=10.0)
        with pytest.raises(ValueError):
            scan.insert(state(1, 0.0, 0.0, t=-1.0))


class TestExpiry:
    def test_old_window_expires(self):
        scan = ScanIndex(lifetime=10.0)
        scan.insert(state(1, 5.0, 5.0, t=0.0))
        scan.insert(state(2, 5.0, 5.0, t=12.0))
        assert len(scan) == 2  # windows 0 and 1 both live
        scan.insert(state(3, 5.0, 5.0, t=25.0))
        assert len(scan) == 2  # window 0 expired
        assert scan.live_windows == [1, 2]

    def test_update_rotates_before_delete(self):
        scan = ScanIndex(lifetime=10.0)
        old = state(1, 5.0, 5.0, t=0.0)
        scan.insert(old)
        removed = scan.update(old, state(1, 6.0, 6.0, t=25.0))
        assert not removed  # the old window was retired on arrival
        assert len(scan) == 1

    def test_update_within_lifetime_removes_old(self):
        scan = ScanIndex(lifetime=10.0)
        old = state(1, 5.0, 5.0, t=0.0)
        scan.insert(old)
        assert scan.update(old, state(1, 6.0, 6.0, t=5.0))
        assert len(scan) == 1

    def test_live_states(self):
        scan = ScanIndex(lifetime=10.0)
        scan.insert(state(1, 5.0, 5.0))
        scan.insert(state(2, 6.0, 6.0))
        assert {s.oid for s in scan.live_states()} == {1, 2}
