"""Unit and property tests for the buffer pool: residency, LRU eviction,
pin protection, write-back, and IO accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer_pool import BufferPool, BufferPoolFullError
from repro.storage.page import PAGE_SIZE
from repro.storage.pagefile import InMemoryPageFile


def make_pool(capacity=4):
    return BufferPool(InMemoryPageFile(), capacity=capacity)


class TestBasics:
    def test_new_page_is_pinned_and_dirty(self):
        pool = make_pool()
        page = pool.new_page()
        assert page.is_pinned
        assert page.dirty
        pool.unpin(page)

    def test_fetch_counts_logical_and_physical(self):
        pool = make_pool()
        page = pool.new_page()
        pid = page.page_id
        pool.unpin(page)
        pool.flush_all()
        pool.clear()
        assert pool.stats.physical_reads == 0
        with pool.pinned(pid):
            pass
        assert pool.stats.logical_reads == 1
        assert pool.stats.physical_reads == 1
        with pool.pinned(pid):
            pass
        assert pool.stats.logical_reads == 2
        assert pool.stats.physical_reads == 1  # hit

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_pool(capacity=0)

    def test_is_resident(self):
        pool = make_pool()
        page = pool.new_page()
        pool.unpin(page)
        assert pool.is_resident(page.page_id)
        assert not pool.is_resident(999)


class TestEviction:
    def test_lru_victim_is_oldest_unpinned(self):
        pool = make_pool(capacity=2)
        a = pool.new_page()
        pool.unpin(a)
        b = pool.new_page()
        pool.unpin(b)
        # Touch a so b becomes LRU.
        with pool.pinned(a.page_id):
            pass
        c = pool.new_page()
        pool.unpin(c)
        assert pool.is_resident(a.page_id)
        assert not pool.is_resident(b.page_id)

    def test_dirty_page_written_back_on_eviction(self):
        pool = make_pool(capacity=1)
        page = pool.new_page()
        page.write(0, b"payload")
        pid = page.page_id
        pool.unpin(page)
        other = pool.new_page()  # forces eviction of pid
        pool.unpin(other)
        assert pool.stats.physical_writes == 1
        assert bytes(pool.pagefile.read(pid)[:7]) == b"payload"

    def test_all_pinned_raises(self):
        pool = make_pool(capacity=1)
        page = pool.new_page()  # stays pinned
        with pytest.raises(BufferPoolFullError):
            pool.new_page()
        pool.unpin(page)

    def test_eviction_listener_invoked(self):
        pool = make_pool(capacity=1)
        evicted = []
        pool.add_eviction_listener(evicted.append)
        a = pool.new_page()
        pool.unpin(a)
        b = pool.new_page()
        pool.unpin(b)
        assert evicted == [a.page_id]

    def test_pinned_page_survives_pressure(self):
        pool = make_pool(capacity=2)
        pinned = pool.new_page()
        for _ in range(5):
            extra = pool.new_page()
            pool.unpin(extra)
        assert pool.is_resident(pinned.page_id)
        pool.unpin(pinned)


class TestFlush:
    def test_flush_page_clears_dirty(self):
        pool = make_pool()
        page = pool.new_page()
        page.write(0, b"x")
        pool.unpin(page)
        pool.flush_page(page.page_id)
        assert not page.dirty
        assert pool.stats.physical_writes == 1

    def test_flush_clean_page_is_noop(self):
        pool = make_pool()
        page = pool.new_page()
        pool.unpin(page)
        pool.flush_all()
        writes = pool.stats.physical_writes
        pool.flush_page(page.page_id)
        assert pool.stats.physical_writes == writes

    def test_clear_requires_no_pins(self):
        pool = make_pool()
        page = pool.new_page()
        with pytest.raises(RuntimeError, match="pinned"):
            pool.clear()
        pool.unpin(page)
        pool.clear()
        assert pool.num_frames == 0

    def test_free_page_drops_frame_without_writeback(self):
        pool = make_pool()
        page = pool.new_page()
        pid = page.page_id
        pool.unpin(page)
        writes = pool.stats.physical_writes
        pool.free_page(pid)
        assert pool.stats.physical_writes == writes
        assert not pool.is_resident(pid)

    def test_free_pinned_page_rejected(self):
        pool = make_pool()
        page = pool.new_page()
        with pytest.raises(RuntimeError, match="pinned"):
            pool.free_page(page.page_id)
        pool.unpin(page)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["touch", "write"]),
                  st.integers(min_value=0, max_value=9)),
        min_size=1, max_size=60))
    def test_pool_never_loses_writes(self, ops):
        """Whatever the access pattern, the last value written to each page
        is observable afterwards, and frame count never exceeds capacity."""
        pool = make_pool(capacity=3)
        pids = []
        for _ in range(10):
            page = pool.new_page()
            pool.unpin(page)
            pids.append(page)
        expected = {page.page_id: 0 for page in pids}
        for op, idx in ops:
            pid = pids[idx].page_id
            with pool.pinned(pid) as page:
                if op == "write":
                    value = (expected[pid] + 1) % 250
                    page.write(0, bytes([value]))
                    expected[pid] = value
                else:
                    assert page.read(0, 1)[0] == expected[pid]
            assert pool.num_frames <= 3
        for pid, value in expected.items():
            with pool.pinned(pid) as page:
                assert page.read(0, 1)[0] == value

    @settings(max_examples=30, deadline=None)
    @given(seq=st.lists(st.integers(min_value=0, max_value=7),
                        min_size=1, max_size=40))
    def test_hit_rate_bounds(self, seq):
        pool = make_pool(capacity=4)
        pages = []
        for _ in range(8):
            page = pool.new_page()
            pool.unpin(page)
            pages.append(page)
        pool.stats.reset()
        for idx in seq:
            with pool.pinned(pages[idx].page_id):
                pass
        stats = pool.stats
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.physical_reads <= stats.logical_reads == len(seq)
