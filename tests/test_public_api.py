"""The public API surface: everything the README promises must import and
work from the top-level package."""

import repro
from repro import (
    MovingObjectState,
    MovingQuery,
    QuadTreeConfig,
    ScanIndex,
    StripesConfig,
    StripesIndex,
    TimeSliceQuery,
    WindowQuery,
)


class TestExports:
    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.query
        import repro.storage
        import repro.tpr
        import repro.workload
        assert repro.tpr.TPRStarTree
        assert repro.workload.generate_workload


class TestReadmeQuickstart:
    def test_quickstart_flow(self):
        index = StripesIndex(StripesConfig(vmax=(3.0, 3.0),
                                           pmax=(1000.0, 1000.0),
                                           lifetime=120.0))
        index.insert(MovingObjectState(oid=1, pos=(100.0, 200.0),
                                       vel=(1.5, -2.0), t=0.0))
        hits = index.query(TimeSliceQuery((0.0, 0.0), (500.0, 500.0),
                                          t=60.0))
        assert hits == [1]

    def test_all_query_types_accepted(self):
        index = StripesIndex(StripesConfig(vmax=(3.0, 3.0),
                                           pmax=(100.0, 100.0),
                                           lifetime=60.0))
        index.insert(MovingObjectState(1, (50.0, 50.0), (0.0, 0.0), 0.0))
        queries = [
            TimeSliceQuery((0.0, 0.0), (100.0, 100.0), 5.0),
            WindowQuery((0.0, 0.0), (100.0, 100.0), 5.0, 10.0),
            MovingQuery((0.0, 0.0), (100.0, 100.0),
                        (10.0, 10.0), (110.0, 110.0), 5.0, 10.0),
        ]
        for query in queries:
            assert index.query(query) == [1]

    def test_custom_quadtree_config(self):
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0),
                               lifetime=60.0,
                               quadtree=QuadTreeConfig(max_depth=5,
                                                       use_small_leaves=False))
        index = StripesIndex(config)
        index.insert(MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0))
        assert len(index) == 1

    def test_scan_index_exported_interface(self):
        scan = ScanIndex(lifetime=60.0)
        scan.insert(MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0))
        assert scan.query(TimeSliceQuery((0.0, 0.0), (2.0, 2.0), 0.0)) == [1]
