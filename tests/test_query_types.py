"""Unit tests for moving-object states and query types."""

import pytest

from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)


class TestMovingObjectState:
    def test_position_extrapolation(self):
        obj = MovingObjectState(1, (10.0, 20.0), (1.0, -2.0), t=5.0)
        assert obj.position_at(8.0) == (13.0, 14.0)

    def test_position_backwards(self):
        obj = MovingObjectState(1, (10.0,), (2.0,), t=5.0)
        assert obj.position_at(0.0) == (0.0,)

    def test_dimensionality(self):
        assert MovingObjectState(1, (0.0, 0.0), (0.0, 0.0), 0.0).d == 2

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError, match="velocity"):
            MovingObjectState(1, (0.0, 0.0), (0.0,), 0.0)


class TestQueryValidation:
    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="exceeds upper"):
            TimeSliceQuery((5.0,), (1.0,), 0.0)

    def test_inverted_time_rejected(self):
        with pytest.raises(ValueError, match="t_low"):
            WindowQuery((0.0,), (1.0,), t_low=5.0, t_high=1.0)
        with pytest.raises(ValueError, match="t_low"):
            MovingQuery((0.0,), (1.0,), (0.0,), (1.0,), 5.0, 1.0)

    def test_mismatched_rect_dims_rejected(self):
        with pytest.raises(ValueError):
            MovingQuery((0.0,), (1.0,), (0.0, 0.0), (1.0, 1.0), 0.0, 1.0)


class TestCanonicalisation:
    def test_time_slice_as_moving(self):
        ts = TimeSliceQuery((0.0, 0.0), (1.0, 1.0), 7.0)
        moving = ts.as_moving()
        assert moving.low1 == moving.low2 == (0.0, 0.0)
        assert moving.high1 == moving.high2 == (1.0, 1.0)
        assert moving.t_low == moving.t_high == 7.0

    def test_window_as_moving(self):
        win = WindowQuery((0.0,), (1.0,), 2.0, 5.0)
        moving = win.as_moving()
        assert moving.low1 == moving.low2 == (0.0,)
        assert (moving.t_low, moving.t_high) == (2.0, 5.0)

    def test_moving_as_moving_is_identity(self):
        mq = MovingQuery((0.0,), (1.0,), (2.0,), (3.0,), 0.0, 1.0)
        assert mq.as_moving() is mq


class TestBoundsAt:
    def test_interpolates_linearly(self):
        mq = MovingQuery((0.0,), (10.0,), (100.0,), (110.0,), 0.0, 10.0)
        low, high = mq.bounds_at(5.0)
        assert low == (50.0,)
        assert high == (60.0,)

    def test_degenerate_time_range(self):
        mq = MovingQuery((0.0,), (10.0,), (0.0,), (10.0,), 3.0, 3.0)
        assert mq.bounds_at(3.0) == ((0.0,), (10.0,))
