"""Tests for the future-work extensions: predictive kNN and distance
joins, validated against the exact scan oracle."""

import math
import random

import pytest

from repro.baselines.scan import ScanIndex
from repro.core.stripes import StripesConfig, StripesIndex
from repro.extensions import distance_join, knn
from repro.query.types import MovingObjectState
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTree, TPRTreeConfig

PMAX = (200.0, 200.0)
VMAX = 3.0
LIFETIME = 60.0


def random_state(rng, oid, t=0.0):
    return MovingObjectState(
        oid,
        (rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1])),
        (rng.uniform(-VMAX, VMAX), rng.uniform(-VMAX, VMAX)),
        t)


def build_all(seed=31, n=400, with_updates=True):
    """STRIPES + TPR* + scan all loaded with the same states."""
    rng = random.Random(seed)
    stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                         lifetime=LIFETIME))
    pool = BufferPool(InMemoryPageFile(), capacity=4096)
    tprstar = TPRStarTree(TPRTreeConfig(d=2, horizon=30.0),
                          RecordStore(pool))
    scan = ScanIndex(LIFETIME)
    live = {}
    for oid in range(n):
        state = random_state(rng, oid, rng.uniform(0, 30))
        for index in (stripes, tprstar, scan):
            index.insert(state)
        live[oid] = state
    if with_updates:
        for oid in rng.sample(sorted(live), n // 4):
            new = random_state(rng, oid, rng.uniform(30, 59))
            for index in (stripes, tprstar, scan):
                index.update(live[oid], new)
            live[oid] = new
    return stripes, tprstar, scan, live


def assert_valid_knn(got, expected, k):
    """``got`` must be a valid k-nearest answer: same distances as the
    oracle's (ties may be broken differently)."""
    assert len(got) == len(expected) <= k
    got_d = [d for _, d in got]
    exp_d = [d for _, d in expected]
    for a, b in zip(got_d, exp_d):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-7)
    assert got_d == sorted(got_d)


class TestKnn:
    def test_single_object(self):
        stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                             lifetime=LIFETIME))
        stripes.insert(MovingObjectState(1, (10.0, 10.0), (1.0, 0.0), 0.0))
        result = knn(stripes, (20.0, 10.0), t=5.0, k=1)
        assert result == [(1, pytest.approx(5.0))]  # object at (15,10)

    def test_k_larger_than_population(self):
        stripes, tprstar, scan, _ = build_all(n=5, with_updates=False)
        for index in (stripes, tprstar, scan):
            assert len(knn(index, (0.0, 0.0), t=60.0, k=50)) == 5

    def test_invalid_k(self):
        scan = ScanIndex(10.0)
        with pytest.raises(ValueError):
            knn(scan, (0.0, 0.0), t=0.0, k=0)

    def test_dimension_mismatch(self):
        stripes, tprstar, _, _ = build_all(n=5, with_updates=False)
        with pytest.raises(ValueError):
            knn(stripes, (0.0,), t=0.0, k=1)
        with pytest.raises(ValueError):
            knn(tprstar, (0.0, 0.0, 0.0), t=0.0, k=1)

    def test_unsupported_index(self):
        with pytest.raises(TypeError):
            knn(object(), (0.0, 0.0), t=0.0, k=1)

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_oracle(self, k):
        stripes, tprstar, scan, _ = build_all()
        rng = random.Random(77)
        for _ in range(15):
            point = (rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1]))
            t = rng.uniform(60, 90)
            expected = knn(scan, point, t, k)
            assert_valid_knn(knn(stripes, point, t, k), expected, k)

    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_tpr_matches_oracle(self, cls, k=8):
        rng = random.Random(41)
        pool = BufferPool(InMemoryPageFile(), capacity=4096)
        tree = cls(TPRTreeConfig(d=2, horizon=30.0), RecordStore(pool))
        scan = ScanIndex(1e12)
        for oid in range(300):
            state = random_state(rng, oid, rng.uniform(0, 10))
            tree.insert(state)
            scan.insert(state)
        for _ in range(15):
            point = (rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1]))
            t = rng.uniform(10, 40)
            expected = knn(scan, point, t, k)
            assert_valid_knn(knn(tree, point, t, k), expected, k)

    def test_knn_spanning_both_windows(self):
        stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                             lifetime=LIFETIME))
        scan = ScanIndex(LIFETIME)
        # One object per lifetime window, both stationary.
        for index in (stripes, scan):
            index.insert(MovingObjectState(1, (10.0, 10.0), (0.0, 0.0),
                                           10.0))
            index.insert(MovingObjectState(2, (11.0, 10.0), (0.0, 0.0),
                                           70.0))
        got = knn(stripes, (10.0, 10.0), t=80.0, k=2)
        expected = knn(scan, (10.0, 10.0), t=80.0, k=2)
        assert [oid for oid, _ in got] == [oid for oid, _ in expected]


class TestIntervalKnn:
    def test_interval_beats_instant(self):
        """An object sweeping past the query point is nearer over the
        interval than at either endpoint."""
        stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                             lifetime=LIFETIME))
        # Passes exactly through (50, 50) at t=10.
        stripes.insert(MovingObjectState(1, (40.0, 50.0), (1.0, 0.0), 0.0))
        at_t5 = knn(stripes, (50.0, 50.0), t=5.0, k=1)[0][1]
        over_window = knn(stripes, (50.0, 50.0), t=5.0, k=1,
                          t_high=15.0)[0][1]
        assert at_t5 == pytest.approx(5.0)
        assert over_window == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_interval_equals_instant(self):
        stripes, tprstar, scan, _ = build_all(n=150)
        rng = random.Random(83)
        for index in (stripes, tprstar, scan):
            point = (100.0, 100.0)
            instant = knn(index, point, t=65.0, k=5)
            degenerate = knn(index, point, t=65.0, k=5, t_high=65.0)
            assert [round(d, 9) for _, d in instant] \
                == [round(d, 9) for _, d in degenerate]

    def test_inverted_interval_rejected(self):
        scan = ScanIndex(10.0)
        with pytest.raises(ValueError, match="precedes"):
            knn(scan, (0.0, 0.0), t=10.0, k=1, t_high=5.0)

    @pytest.mark.parametrize("k", [1, 7])
    def test_interval_matches_oracle(self, k):
        stripes, tprstar, scan, _ = build_all(seed=37)
        rng = random.Random(91)
        for _ in range(12):
            point = (rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1]))
            t1 = rng.uniform(60, 80)
            t2 = t1 + rng.uniform(0, 20)
            expected = knn(scan, point, t1, k, t_high=t2)
            for index in (stripes, tprstar):
                got = knn(index, point, t1, k, t_high=t2)
                assert_valid_knn(got, expected, k)


class TestDistanceJoin:
    def test_simple_pair(self):
        stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                             lifetime=LIFETIME))
        # Two objects converging: 10 apart at t=0, meeting at t=5.
        stripes.insert(MovingObjectState(1, (10.0, 10.0), (1.0, 0.0), 0.0))
        stripes.insert(MovingObjectState(2, (20.0, 10.0), (-1.0, 0.0), 0.0))
        assert distance_join(stripes, stripes, radius=1.0, t=5.0) == [(1, 2)]
        assert distance_join(stripes, stripes, radius=1.0, t=0.0) == []

    def test_negative_radius_rejected(self):
        scan = ScanIndex(10.0)
        with pytest.raises(ValueError):
            distance_join(scan, scan, radius=-1.0, t=0.0)

    def test_mixed_families_rejected(self):
        stripes, tprstar, _, _ = build_all(n=5, with_updates=False)
        with pytest.raises(TypeError):
            distance_join(stripes, tprstar, radius=1.0, t=0.0)

    @pytest.mark.parametrize("radius", [2.0, 8.0])
    def test_stripes_self_join_matches_oracle(self, radius):
        stripes, _, scan, _ = build_all(n=250)
        for t in (60.0, 75.0):
            expected = distance_join(scan, scan, radius, t)
            got = distance_join(stripes, stripes, radius, t)
            assert got == expected

    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_tpr_self_join_matches_oracle(self, cls):
        rng = random.Random(53)
        pool = BufferPool(InMemoryPageFile(), capacity=4096)
        tree = cls(TPRTreeConfig(d=2, horizon=30.0), RecordStore(pool))
        scan = ScanIndex(1e12)
        for oid in range(250):
            state = random_state(rng, oid, rng.uniform(0, 10))
            tree.insert(state)
            scan.insert(state)
        for t in (15.0, 30.0):
            expected = distance_join(scan, scan, 5.0, t)
            got = distance_join(tree, tree, 5.0, t)
            assert got == expected

    def test_cross_index_join_matches_oracle(self):
        rng = random.Random(61)
        config = StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                               lifetime=LIFETIME)
        left = StripesIndex(config)
        right = StripesIndex(config)
        scan_left = ScanIndex(LIFETIME)
        scan_right = ScanIndex(LIFETIME)
        for oid in range(120):
            state = random_state(rng, oid)
            left.insert(state)
            scan_left.insert(state)
        for oid in range(1000, 1120):
            state = random_state(rng, oid)
            right.insert(state)
            scan_right.insert(state)
        expected = distance_join(scan_left, scan_right, 6.0, 20.0)
        got = distance_join(left, right, 6.0, 20.0)
        assert got == expected

    def test_join_spanning_windows(self):
        stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                             lifetime=LIFETIME))
        scan = ScanIndex(LIFETIME)
        for index in (stripes, scan):
            index.insert(MovingObjectState(1, (50.0, 50.0), (0.0, 0.0),
                                           10.0))
            index.insert(MovingObjectState(2, (51.0, 50.0), (0.0, 0.0),
                                           70.0))
            index.insert(MovingObjectState(3, (150.0, 150.0), (0.0, 0.0),
                                           70.0))
        assert distance_join(stripes, stripes, 2.0, 80.0) \
            == distance_join(scan, scan, 2.0, 80.0) == [(1, 2)]

    def test_zero_radius_exact_meeting(self):
        stripes = StripesIndex(StripesConfig(vmax=(VMAX, VMAX), pmax=PMAX,
                                             lifetime=LIFETIME))
        stripes.insert(MovingObjectState(1, (0.0, 0.0), (1.0, 1.0), 0.0))
        stripes.insert(MovingObjectState(2, (10.0, 10.0), (-1.0, -1.0), 0.0))
        assert distance_join(stripes, stripes, 0.0, 5.0) == [(1, 2)]
