"""Unit and property tests for the slotted record store and node cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import (
    MAX_SLOTS_PER_PAGE,
    NodeCache,
    RecordStore,
    SizeClass,
    make_rid,
    rid_page,
    rid_slot,
)
from repro.storage.page import PAGE_SIZE
from repro.storage.pagefile import InMemoryPageFile


def make_store(capacity=64):
    return RecordStore(BufferPool(InMemoryPageFile(), capacity=capacity))


class TestSizeClass:
    def test_small_records_pack_many_per_page(self):
        cls = SizeClass(352, PAGE_SIZE)
        # The paper packs ~11 of its 352-byte non-leaf nodes per 4 KB page.
        assert cls.num_slots == 11

    def test_full_page_record_is_single_slot(self):
        cls = SizeClass(PAGE_SIZE - 5, PAGE_SIZE)
        assert cls.num_slots == 1

    def test_half_page_records_pack_two(self):
        cls = SizeClass((PAGE_SIZE - 6) // 2, PAGE_SIZE)
        assert cls.num_slots == 2

    def test_oversized_record_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            SizeClass(PAGE_SIZE, PAGE_SIZE)

    def test_zero_record_size_rejected(self):
        with pytest.raises(ValueError):
            SizeClass(0, PAGE_SIZE)

    def test_layout_fits_in_page(self):
        for record_size in (1, 8, 64, 352, 1024, 2045, 4091):
            cls = SizeClass(record_size, PAGE_SIZE)
            end = cls.records_offset + cls.num_slots * record_size
            assert end <= PAGE_SIZE
            assert cls.num_slots >= 1


class TestRidEncoding:
    def test_round_trip(self):
        rid = make_rid(17, 3)
        assert rid_page(rid) == 17
        assert rid_slot(rid) == 3

    def test_slot_bounds(self):
        rid = make_rid(0, MAX_SLOTS_PER_PAGE - 1)
        assert rid_slot(rid) == MAX_SLOTS_PER_PAGE - 1


class TestRecordStore:
    def test_write_read_round_trip(self):
        store = make_store()
        rid = store.allocate(64, b"hello")
        assert store.read(rid)[:5] == b"hello"

    def test_same_class_shares_pages(self):
        store = make_store()
        rids = [store.allocate(64, bytes([i])) for i in range(10)]
        pages = {rid_page(r) for r in rids}
        assert len(pages) == 1

    def test_different_classes_use_different_pages(self):
        store = make_store()
        small = store.allocate(64, b"a")
        large = store.allocate(2000, b"b")
        assert rid_page(small) != rid_page(large)

    def test_overflow_to_new_page(self):
        store = make_store()
        cls = store.size_class(1500)
        rids = [store.allocate(1500, b"x") for _ in range(cls.num_slots + 1)]
        assert len({rid_page(r) for r in rids}) == 2

    def test_free_releases_slot_for_reuse(self):
        store = make_store()
        rid = store.allocate(64, b"a")
        store.allocate(64, b"b")
        store.free(rid)
        again = store.allocate(64, b"c")
        assert again == rid
        assert store.read(again)[:1] == b"c"

    def test_free_last_record_releases_page(self):
        store = make_store()
        rid = store.allocate(64, b"a")
        assert store.pages_in_use() == 1
        store.free(rid)
        assert store.pages_in_use() == 0

    def test_read_after_free_rejected(self):
        store = make_store()
        rid = store.allocate(64, b"a")
        store.free(rid)
        with pytest.raises(KeyError):
            store.read(rid)

    def test_oversized_payload_rejected(self):
        store = make_store()
        with pytest.raises(ValueError, match="exceeds record size"):
            store.allocate(8, b"way too long for eight")
        rid = store.allocate(8, b"ok")
        with pytest.raises(ValueError, match="exceeds record size"):
            store.write(rid, b"way too long for eight")

    def test_record_size_of(self):
        store = make_store()
        rid = store.allocate(352, b"x")
        assert store.record_size_of(rid) == 352

    def test_allocation_prefers_recent_page(self):
        """Records allocated together land on the same page (the sibling
        clustering property the paper relies on)."""
        store = make_store()
        cls = store.size_class(352)
        first_batch = [store.allocate(352, b"a") for _ in range(cls.num_slots)]
        second_batch = [store.allocate(352, b"b") for _ in range(3)]
        assert len({rid_page(r) for r in first_batch}) == 1
        assert len({rid_page(r) for r in second_batch}) == 1

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from([32, 352, 2045]),
                  st.binary(min_size=0, max_size=32)),
        min_size=1, max_size=50))
    def test_many_records_round_trip(self, items):
        store = make_store()
        live = {}
        for record_size, payload in items:
            rid = store.allocate(record_size, payload)
            assert rid not in live
            live[rid] = (record_size, payload)
        for rid, (record_size, payload) in live.items():
            raw = store.read(rid)
            assert len(raw) == record_size
            assert raw[: len(payload)] == payload

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_interleaved_alloc_free(self, data):
        store = make_store()
        live = {}
        counter = 0
        for _ in range(40):
            if live and data.draw(st.booleans(), label="free?"):
                rid = data.draw(st.sampled_from(sorted(live)), label="victim")
                store.free(rid)
                del live[rid]
            else:
                counter += 1
                payload = counter.to_bytes(4, "little")
                rid = store.allocate(64, payload)
                assert rid not in live
                live[rid] = payload
        for rid, payload in live.items():
            assert store.read(rid)[:4] == payload


class TestNodeCache:
    @staticmethod
    def make_cache(store):
        return NodeCache(store,
                         serialize=lambda s: s.encode(),
                         deserialize=lambda b: b.rstrip(b"\x00").decode())

    def test_insert_get_update(self, store):
        cache = self.make_cache(store)
        rid = cache.insert(64, "hello")
        assert cache.get(rid) == "hello"
        cache.update(rid, "world")
        assert cache.get(rid) == "world"

    def test_get_survives_eviction_via_deserialize(self):
        store = make_store(capacity=1)
        cache = self.make_cache(store)
        rid = cache.insert(64, "persistent")
        # Force the page out by allocating another class's pages.
        other = store.allocate(2000, b"evictor")
        store.read(other)
        assert cache.get(rid) == "persistent"

    def test_eviction_drops_cached_objects(self):
        store = make_store(capacity=1)
        cache = self.make_cache(store)
        rid = cache.insert(64, "x")
        assert cache.cached_count() == 1
        store.allocate(2000, b"evictor")  # evicts the 64-class page
        assert cache.cached_count() == 0
        assert cache.get(rid) == "x"

    def test_free_removes_object(self, store):
        cache = self.make_cache(store)
        rid = cache.insert(64, "gone")
        cache.free(rid)
        assert cache.cached_count() == 0
        with pytest.raises(KeyError):
            cache.get(rid)

    def test_reads_count_logical_io(self, store):
        cache = self.make_cache(store)
        rid = cache.insert(64, "x")
        before = store.pool.stats.logical_reads
        cache.get(rid)
        cache.get(rid)
        assert store.pool.stats.logical_reads == before + 2
