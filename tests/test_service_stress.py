"""Concurrency stress tests: concurrent writers + queriers against the
sharded facade with a serial-replay parity check, and thread-safety
hammers for the metrics registry and tracer.

These are the gating tests of the CI ``service-stress`` job."""

import random
import threading

from repro.core.stripes import StripesConfig, StripesIndex
from repro.obs import MetricsRegistry, Tracer
from repro.query.types import MovingObjectState, TimeSliceQuery, WindowQuery
from repro.service import (
    LoadDriver,
    ServiceConfig,
    ShardedStripes,
    StripesService,
)

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0), lifetime=30.0)


def random_state(rng, oid, t):
    return MovingObjectState(
        oid,
        tuple(rng.uniform(0, p) for p in CONFIG.pmax),
        tuple(rng.uniform(-v, v) for v in CONFIG.vmax),
        t)


def random_query(rng, now):
    side = 50.0
    x = rng.uniform(0, CONFIG.pmax[0] - side)
    y = rng.uniform(0, CONFIG.pmax[1] - side)
    lo, hi = (x, y), (x + side, y + side)
    t1 = now + rng.uniform(0, 5)
    if rng.random() < 0.5:
        return TimeSliceQuery(lo, hi, t1)
    return WindowQuery(lo, hi, t1, t1 + rng.uniform(0.1, 5))


def test_concurrent_updates_and_queries_with_serial_replay_parity():
    """Writers and queriers hammer the facade concurrently; afterwards a
    serial StripesIndex replays the exact same committed operations and
    every query must agree on the final state."""
    rng = random.Random(21)
    n_objects = 80
    initial = [random_state(rng, oid, 0.0) for oid in range(n_objects)]
    sharded = ShardedStripes(CONFIG, n_shards=4)
    sharded.insert_batch(initial)

    # Pre-generate per-writer update chains on disjoint oid ranges so the
    # full committed history is known without cross-thread coordination.
    n_writers = 3
    per_writer = n_objects // n_writers
    chains = []
    for w in range(n_writers):
        wrng = random.Random(100 + w)
        chain = []
        latest = {oid: initial[oid]
                  for oid in range(w * per_writer, (w + 1) * per_writer)}
        for _ in range(60):
            oid = wrng.randrange(w * per_writer, (w + 1) * per_writer)
            old = latest[oid]
            new = random_state(wrng, oid, min(old.t + wrng.uniform(0.1, 0.5),
                                              CONFIG.lifetime - 1.0))
            latest[oid] = new
            chain.append((old, new))
        chains.append(chain)

    errors = []
    stop = threading.Event()

    def writer(chain):
        try:
            for old, new in chain:
                sharded.update(old, new)
        except Exception as exc:  # noqa: BLE001 - surfaced by the assert
            errors.append(exc)

    def querier(seed):
        qrng = random.Random(seed)
        try:
            while not stop.is_set():
                result = sharded.query(random_query(qrng, 1.0))
                assert isinstance(result, list)
        except Exception as exc:  # noqa: BLE001 - surfaced by the assert
            errors.append(exc)

    writers = [threading.Thread(target=writer, args=(c,)) for c in chains]
    queriers = [threading.Thread(target=querier, args=(s,))
                for s in (31, 32, 33)]
    for t in queriers + writers:
        t.start()
    for t in writers:
        t.join(timeout=30)
    stop.set()
    for t in queriers:
        t.join(timeout=30)
    assert not errors, errors

    serial = StripesIndex(CONFIG)
    serial.insert_batch(initial)
    for chain in chains:
        for old, new in chain:
            serial.update(old, new)
    assert len(sharded) == len(serial)
    prng = random.Random(22)
    for _ in range(80):
        query = random_query(prng, 1.0)
        assert set(sharded.query(query)) == set(serial.query(query))


def test_service_under_concurrent_load_matches_serial():
    """The full service stack (queue, batching workers, futures) returns
    exactly the serial index's answers under multi-threaded load."""
    rng = random.Random(23)
    initial = [random_state(rng, oid, 0.0) for oid in range(60)]
    serial = StripesIndex(CONFIG)
    serial.insert_batch(initial)
    sharded = ShardedStripes(CONFIG, n_shards=4)
    sharded.insert_batch(initial)
    queries = [random_query(rng, 1.0) for _ in range(40)]
    expected = [set(serial.query(q)) for q in queries]

    config = ServiceConfig(workers=4, batch_max=8, batch_window_s=0.001,
                           max_queue=1024)
    with StripesService(sharded, config) as service:
        report = LoadDriver(service, queries, n_threads=8,
                            requests_per_thread=40).run()
        assert report.errors == 0
        assert report.completed == report.offered
        # And answers, not just liveness: every query agrees with serial.
        futures = [service.submit(q) for q in queries]
        for future, want in zip(futures, expected):
            assert set(future.result(timeout=10)) == want


def test_metrics_registry_thread_safety_hammer():
    registry = MetricsRegistry()
    counter = registry.counter("hammer_total")
    gauge = registry.gauge("hammer_gauge")
    hist = registry.histogram("hammer_seconds", buckets=(0.1, 1.0, 10.0))
    n_threads, n_iter = 8, 2000

    def worker(seed):
        wrng = random.Random(seed)
        for _ in range(n_iter):
            counter.inc()
            gauge.inc(1.0)
            hist.observe(wrng.random() * 5.0)

    threads = [threading.Thread(target=worker, args=(s,))
               for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert counter.to_value() == n_threads * n_iter
    assert gauge.to_value() == n_threads * n_iter
    assert hist.count == n_threads * n_iter
    registry.expose_text()  # formatting under load must not raise


def test_tracer_thread_local_spans_do_not_interleave():
    tracer = Tracer()
    errors = []

    def worker(wid):
        try:
            for i in range(200):
                with tracer.span(f"outer-{wid}") as outer:
                    with tracer.span(f"inner-{wid}") as inner:
                        tracer.event(f"tick-{wid}", i=i)
                    assert inner.name == f"inner-{wid}"
                    # The enclosing span must be this thread's, never
                    # another thread's concurrently open span.
                    assert outer.children[-1] is inner
        except Exception as exc:  # noqa: BLE001 - surfaced by the assert
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert len(tracer.roots) == 6 * 200
