"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile


@pytest.fixture
def pagefile() -> InMemoryPageFile:
    return InMemoryPageFile()


@pytest.fixture
def pool(pagefile) -> BufferPool:
    """A comfortably sized pool (no evictions unless a test forces them)."""
    return BufferPool(pagefile, capacity=4096)


@pytest.fixture
def tiny_pool(pagefile) -> BufferPool:
    """A four-frame pool for eviction-path tests."""
    return BufferPool(pagefile, capacity=4)


@pytest.fixture
def store(pool) -> RecordStore:
    return RecordStore(pool)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
