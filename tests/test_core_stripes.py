"""Unit and oracle-equivalence tests for the STRIPES front end
(Sections 4.1, 4.5, 4.6): two-index rotation, update protocol, query
refinement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.scan import ScanIndex
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.predicates import matches_with_tolerance
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0), lifetime=30.0)


def random_state(rng, oid, t, config=CONFIG):
    return MovingObjectState(
        oid,
        tuple(rng.uniform(0, p) for p in config.pmax),
        tuple(rng.uniform(-v, v) for v in config.vmax),
        t)


def random_query(rng, now, config=CONFIG):
    side = 30.0
    x = rng.uniform(0, config.pmax[0] - side)
    y = rng.uniform(0, config.pmax[1] - side)
    lo, hi = (x, y), (x + side, y + side)
    t1 = now + rng.uniform(0, 10)
    kind = rng.choice(["ts", "win", "mov"])
    if kind == "ts":
        return TimeSliceQuery(lo, hi, t1)
    t2 = t1 + rng.uniform(0.1, 10)
    if kind == "win":
        return WindowQuery(lo, hi, t1, t2)
    dx, dy = rng.uniform(-20, 20), rng.uniform(-20, 20)
    return MovingQuery(lo, hi, (x + dx, y + dy),
                       (x + side + dx, y + side + dy), t1, t2)


def assert_results_match(index, oracle, query, eps=1e-7):
    """Result sets must agree except for objects within float-rounding
    distance of the query boundary."""
    got = sorted(index.query(query))
    expected = sorted(oracle.query(query))
    if got == expected:
        return
    diff = set(got).symmetric_difference(expected)
    states = {s.oid: s for s in oracle.live_states()}
    for oid in diff:
        state = states[oid]
        _, boundary = matches_with_tolerance(state, query, eps)
        assert boundary, (
            f"object {oid} differs and is not on the query boundary: "
            f"{state} vs {query}")


class TestBasicOperations:
    def test_insert_query(self):
        index = StripesIndex(CONFIG)
        index.insert(MovingObjectState(7, (50.0, 50.0), (1.0, 1.0), 0.0))
        hits = index.query(TimeSliceQuery((40.0, 40.0), (70.0, 70.0), 10.0))
        assert hits == [7]

    def test_len_counts_live_entries(self):
        index = StripesIndex(CONFIG)
        assert len(index) == 0
        index.insert(MovingObjectState(1, (0.0, 0.0), (0.0, 0.0), 0.0))
        assert len(index) == 1

    def test_delete_roundtrip(self):
        index = StripesIndex(CONFIG)
        state = MovingObjectState(1, (10.0, 10.0), (0.5, -0.5), 3.0)
        index.insert(state)
        assert index.delete(state)
        assert len(index) == 0

    def test_delete_unknown_returns_false(self):
        index = StripesIndex(CONFIG)
        assert not index.delete(
            MovingObjectState(1, (10.0, 10.0), (0.0, 0.0), 0.0))

    def test_update_replaces_entry(self):
        index = StripesIndex(CONFIG)
        old = MovingObjectState(1, (10.0, 10.0), (1.0, 1.0), 0.0)
        new = MovingObjectState(1, (20.0, 20.0), (-1.0, -1.0), 5.0)
        index.insert(old)
        assert index.update(old, new)
        assert len(index) == 1
        hits = index.query(TimeSliceQuery((14.0, 14.0), (16.0, 16.0), 10.0))
        assert hits == [1]  # moved to 15,15 at t=10 under the new motion

    def test_dimension_mismatch_rejected(self):
        index = StripesIndex(CONFIG)
        with pytest.raises(ValueError, match="2-d"):
            index.insert(MovingObjectState(1, (0.0,), (0.0,), 0.0))
        with pytest.raises(ValueError, match="2-d"):
            index.query(TimeSliceQuery((0.0,), (1.0,), 0.0))

    def test_negative_timestamp_rejected(self):
        index = StripesIndex(CONFIG)
        with pytest.raises(ValueError, match="non-negative"):
            index.insert(MovingObjectState(1, (0.0, 0.0), (0.0, 0.0), -1.0))


class TestTwoIndexRotation:
    def test_windows_created_by_timestamp(self):
        index = StripesIndex(CONFIG)
        index.insert(MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0))
        assert index.live_windows == [0]
        index.insert(MovingObjectState(2, (1.0, 1.0), (0.0, 0.0), 35.0))
        assert index.live_windows == [0, 1]

    def test_rotation_drops_expired_window(self):
        index = StripesIndex(CONFIG)
        index.insert(MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0))
        index.insert(MovingObjectState(2, (1.0, 1.0), (0.0, 0.0), 35.0))
        index.insert(MovingObjectState(3, (1.0, 1.0), (0.0, 0.0), 65.0))
        assert index.live_windows == [1, 2]
        assert len(index) == 2  # object 1 expired with window 0

    def test_rotation_reclaims_pages(self):
        index = StripesIndex(CONFIG)
        rng = random.Random(0)
        for oid in range(300):
            index.insert(random_state(rng, oid, rng.uniform(0, 29)))
        pages_before = index.pages_in_use()
        # Jump two lifetimes ahead: the first window must be destroyed.
        for oid in range(300, 400):
            index.insert(random_state(rng, oid, rng.uniform(60, 89)))
        assert index.live_windows == [2]
        assert index.pages_in_use() < pages_before

    def test_update_of_expired_entry_becomes_insert(self):
        index = StripesIndex(CONFIG)
        old = MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0)
        index.insert(old)
        # Two lifetimes later the old entry is gone with its window.
        new = MovingObjectState(1, (5.0, 5.0), (0.0, 0.0), 70.0)
        removed = index.update(old, new)
        assert not removed
        assert len(index) == 1

    def test_query_spans_both_windows(self):
        index = StripesIndex(CONFIG)
        index.insert(MovingObjectState(1, (50.0, 50.0), (0.0, 0.0), 10.0))
        index.insert(MovingObjectState(2, (60.0, 60.0), (0.0, 0.0), 40.0))
        hits = index.query(
            TimeSliceQuery((40.0, 40.0), (70.0, 70.0), 45.0))
        assert sorted(hits) == [1, 2]


class TestRefinement:
    def test_unrefined_is_superset(self):
        rng = random.Random(13)
        index = StripesIndex(CONFIG)
        for oid in range(500):
            index.insert(random_state(rng, oid, rng.uniform(0, 29)))
        supersets = 0
        for _ in range(50):
            query = random_query(rng, now=29.0)
            refined = set(index.query(query, refine=True))
            raw = set(index.query(query, refine=False))
            assert refined <= raw
            supersets += bool(raw - refined)
        # The separability gap must actually show up somewhere.
        assert supersets > 0

    def test_time_slice_needs_no_refinement(self):
        rng = random.Random(14)
        index = StripesIndex(CONFIG)
        for oid in range(300):
            index.insert(random_state(rng, oid, rng.uniform(0, 29)))
        for _ in range(20):
            x = rng.uniform(0, 170)
            query = TimeSliceQuery((x, x), (x + 30, x + 30),
                                   rng.uniform(29, 40))
            assert sorted(index.query(query, refine=True)) \
                == sorted(index.query(query, refine=False))


class TestOracleEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_mixed_workload_matches_oracle(self, seed):
        rng = random.Random(seed)
        index = StripesIndex(CONFIG)
        oracle = ScanIndex(CONFIG.lifetime)
        live = {}
        now = 0.0
        next_oid = 0
        for step in range(150):
            now += rng.uniform(0, 1.0)
            action = rng.random()
            if action < 0.45 or not live:
                state = random_state(rng, next_oid, now)
                index.insert(state)
                oracle.insert(state)
                live[next_oid] = state
                next_oid += 1
            elif action < 0.75:
                oid = rng.choice(sorted(live))
                new = random_state(rng, oid, now)
                index.update(live[oid], new)
                oracle.update(live[oid], new)
                live[oid] = new
            else:
                query = random_query(rng, now)
                assert_results_match(index, oracle, query)
        assert len(index) == len(oracle)

    def test_float32_mode_matches_oracle_with_tolerance(self):
        config = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0),
                               lifetime=30.0, float32=True)
        rng = random.Random(15)
        index = StripesIndex(config)
        oracle = ScanIndex(config.lifetime)
        live = {}
        for oid in range(400):
            state = random_state(rng, oid, rng.uniform(0, 29))
            index.insert(state)
            oracle.insert(state)
            live[oid] = state
        for oid in rng.sample(sorted(live), 150):
            new = random_state(rng, oid, rng.uniform(30, 59))
            index.update(live[oid], new)
            oracle.update(live[oid], new)
            live[oid] = new
        assert len(index) == len(oracle)
        for _ in range(40):
            query = random_query(rng, now=59.0)
            assert_results_match(index, oracle, query, eps=1e-3)


class TestIntrospection:
    def test_stats_per_window(self):
        index = StripesIndex(CONFIG)
        rng = random.Random(16)
        for oid in range(100):
            index.insert(random_state(rng, oid, rng.uniform(0, 29)))
        for oid in range(100, 150):
            index.insert(random_state(rng, oid, rng.uniform(30, 59)))
        stats = index.stats()
        assert set(stats) == {0, 1}
        assert stats[0].entries == 100
        assert stats[1].entries == 50

    def test_flush_writes_dirty_pages(self):
        index = StripesIndex(CONFIG)
        index.insert(MovingObjectState(1, (1.0, 1.0), (0.0, 0.0), 0.0))
        index.flush()
        assert index.pool.stats.physical_writes > 0
