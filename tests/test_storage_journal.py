"""Fault-injection tests for the double-write checkpoint journal: torn
journals, torn page-file flushes, and full crash-recovery cycles."""

import os
import random

import pytest

from repro.core.persistence import load_index, save_index
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import MovingObjectState, TimeSliceQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.faults import FAILPOINTS, InjectedCrash
from repro.storage.journal import (
    JournalError,
    atomic_flush,
    read_journal,
    recover,
    write_journal,
)
from repro.storage.page import PAGE_SIZE
from repro.storage.pagefile import OnDiskPageFile

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0), lifetime=30.0)


def image(fill: int) -> bytes:
    return bytes([fill]) * PAGE_SIZE


class TestJournalFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j"
        pages = {0: image(1), 5: image(2), 3: image(3)}
        write_journal(path, pages, PAGE_SIZE)
        assert read_journal(path, PAGE_SIZE) == pages

    def test_empty_journal(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, {}, PAGE_SIZE)
        assert read_journal(path, PAGE_SIZE) == {}

    def test_wrong_image_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="bytes"):
            write_journal(tmp_path / "j", {0: b"short"}, PAGE_SIZE)

    def test_truncated_journal_rejected(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, {0: image(1), 1: image(2)}, PAGE_SIZE)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(JournalError, match="truncated|short"):
            read_journal(path, PAGE_SIZE)

    def test_missing_commit_marker_rejected(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, {0: image(1)}, PAGE_SIZE)
        raw = bytearray(path.read_bytes())
        raw[-8:] = b"XXXXXXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(JournalError, match="commit marker"):
            read_journal(path, PAGE_SIZE)

    def test_corrupt_body_rejected(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, {0: image(1)}, PAGE_SIZE)
        raw = bytearray(path.read_bytes())
        raw[50] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(JournalError, match="checksum"):
            read_journal(path, PAGE_SIZE)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"NOTAMAGIC" + b"\x00" * 100)
        with pytest.raises(JournalError, match="magic"):
            read_journal(path, PAGE_SIZE)

    def test_page_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, {0: image(1)}, PAGE_SIZE)
        with pytest.raises(JournalError, match="page size"):
            read_journal(path, 8192)


class TestRecovery:
    def test_committed_journal_replayed(self, tmp_path):
        db = tmp_path / "db"
        with OnDiskPageFile(db) as pagefile:
            pid = pagefile.allocate()
            pagefile.write(pid, image(0xAA))
        journal = tmp_path / "j"
        write_journal(journal, {pid: image(0xBB)}, PAGE_SIZE)
        with OnDiskPageFile(db) as pagefile:
            assert recover(pagefile, journal) == 1
            assert bytes(pagefile.read(pid)) == image(0xBB)
        assert not journal.exists()

    def test_uncommitted_journal_discarded(self, tmp_path):
        db = tmp_path / "db"
        with OnDiskPageFile(db) as pagefile:
            pid = pagefile.allocate()
            pagefile.write(pid, image(0xAA))
        journal = tmp_path / "j"
        write_journal(journal, {pid: image(0xBB)}, PAGE_SIZE)
        raw = journal.read_bytes()
        journal.write_bytes(raw[:-4])   # crash before commit finished
        with OnDiskPageFile(db) as pagefile:
            assert recover(pagefile, journal) == 0
            assert bytes(pagefile.read(pid)) == image(0xAA)
        assert not journal.exists()

    def test_no_journal_is_noop(self, tmp_path):
        db = tmp_path / "db"
        with OnDiskPageFile(db) as pagefile:
            assert recover(pagefile, tmp_path / "absent") == 0

    def test_replay_extends_short_file(self, tmp_path):
        """Pages allocated but never flushed before the crash: the page
        file is shorter than the journal's highest page id."""
        db = tmp_path / "db"
        with OnDiskPageFile(db) as pagefile:
            pagefile.allocate()
        journal = tmp_path / "j"
        write_journal(journal, {0: image(1), 4: image(5)}, PAGE_SIZE)
        with OnDiskPageFile(db) as pagefile:
            assert recover(pagefile, journal) == 2
            assert bytes(pagefile.read(4)) == image(5)

    def test_atomic_flush_writes_and_removes_journal(self, tmp_path):
        db = tmp_path / "db"
        pagefile = OnDiskPageFile(db)
        pool = BufferPool(pagefile, capacity=16)
        page = pool.new_page()
        page.write(0, b"payload")
        pool.unpin(page)
        journal = tmp_path / "j"
        assert atomic_flush(pool, journal) == 1
        assert not journal.exists()
        assert bytes(pagefile.read(page.page_id))[:7] == b"payload"
        pagefile.close()

    def test_atomic_flush_with_nothing_dirty(self, tmp_path):
        pagefile = OnDiskPageFile(tmp_path / "db")
        pool = BufferPool(pagefile, capacity=16)
        assert atomic_flush(pool, tmp_path / "j") == 0
        assert not (tmp_path / "j").exists()
        pagefile.close()


class TestCrashConsistentIndex:
    def _build(self, tmp_path, n=300):
        rng = random.Random(5)
        db = tmp_path / "idx.stripes"
        pagefile = OnDiskPageFile(db)
        index = StripesIndex(CONFIG, BufferPool(pagefile, capacity=64))
        states = []
        for oid in range(n):
            state = MovingObjectState(
                oid, (rng.uniform(0, 100), rng.uniform(0, 100)),
                (rng.uniform(-3, 3), rng.uniform(-3, 3)),
                rng.uniform(0, 29))
            index.insert(state)
            states.append(state)
        return db, pagefile, index, states, rng

    def test_crash_between_journal_and_pagefile(self, tmp_path):
        """Simulated crash: the sidecar committed but no dirty page
        reached the page file.  Recovery must replay the checkpoint in
        full from the committed redo journal."""
        db, pagefile, index, states, rng = self._build(tmp_path)
        meta = tmp_path / "idx.meta"
        journal = tmp_path / "idx.journal"
        baseline = sorted(index.query(
            TimeSliceQuery((0.0, 0.0), (100.0, 100.0), 30.0)))

        # Die right after the sidecar rename: the redo journal and the
        # sidecar are on disk, the dirty pages are not.
        FAILPOINTS.arm("checkpoint.sidecar_committed")
        try:
            with pytest.raises(InjectedCrash):
                save_index(index, meta, journal_path=journal)
        finally:
            FAILPOINTS.clear()
        pagefile.close()  # pool frames (the dirty pages) die with it
        assert journal.exists()

        reopened = load_index(db, meta, pool_pages=64,
                              journal_path=journal)
        assert not journal.exists()
        assert reopened.checkpoint_id == 1
        assert sorted(reopened.query(
            TimeSliceQuery((0.0, 0.0), (100.0, 100.0), 30.0))) == baseline
        assert reopened.check() == []
        reopened.pool.pagefile.close()

    def test_save_load_with_journal_clean_path(self, tmp_path):
        db, pagefile, index, states, rng = self._build(tmp_path)
        meta = tmp_path / "idx.meta"
        journal = tmp_path / "idx.journal"
        save_index(index, meta, journal_path=journal)
        assert not journal.exists()
        pagefile.close()
        reopened = load_index(db, meta, pool_pages=64,
                              journal_path=journal)
        assert len(reopened) == len(states)
        reopened.pool.pagefile.close()
