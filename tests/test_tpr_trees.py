"""Behavioural and oracle-equivalence tests for the TPR and TPR* trees."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.scan import ScanIndex
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.tpr.node import ChildEntry
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTree, TPRTreeConfig

PMAX = (200.0, 200.0)
VMAX = 3.0


def make_tree(cls=TPRStarTree, pool_pages=4096, **config_kw):
    config = TPRTreeConfig(d=2, horizon=30.0, **config_kw)
    pool = BufferPool(InMemoryPageFile(), capacity=pool_pages)
    return cls(config, RecordStore(pool))


def random_state(rng, oid, t):
    return MovingObjectState(
        oid,
        (rng.uniform(0, PMAX[0]), rng.uniform(0, PMAX[1])),
        (rng.uniform(-VMAX, VMAX), rng.uniform(-VMAX, VMAX)),
        t)


def random_query(rng, now):
    side = 30.0
    x = rng.uniform(0, PMAX[0] - side)
    y = rng.uniform(0, PMAX[1] - side)
    lo, hi = (x, y), (x + side, y + side)
    t1 = now + rng.uniform(0, 10)
    kind = rng.choice(["ts", "win", "mov"])
    if kind == "ts":
        return TimeSliceQuery(lo, hi, t1)
    t2 = t1 + rng.uniform(0.1, 10)
    if kind == "win":
        return WindowQuery(lo, hi, t1, t2)
    dx, dy = rng.uniform(-20, 20), rng.uniform(-20, 20)
    return MovingQuery(lo, hi, (x + dx, y + dy),
                       (x + side + dx, y + side + dy), t1, t2)


def check_tpbr_invariants(tree):
    """Every child TPBR must contain all trajectories stored below it."""
    def walk(rid):
        node = tree.cache.get(rid)
        if node.is_leaf:
            return list(node.entries)
        collected = []
        for child in node.entries:
            assert isinstance(child, ChildEntry)
            below = walk(child.rid)
            for entry in below:
                assert child.tpbr.contains_trajectory(
                    entry.p0, entry.vel, eps=1e-6), (
                    f"entry {entry.oid} escapes its ancestor TPBR")
            collected.extend(below)
        return collected

    entries = walk(tree._root)
    assert len(entries) == len(tree)


def check_fill_invariants(tree):
    """No node exceeds capacity; non-root nodes respect the minimum fill
    (the root is exempt)."""
    def walk(rid, is_root):
        node = tree.cache.get(rid)
        assert len(node.entries) <= tree._capacity(node)
        if not is_root:
            assert len(node.entries) >= tree._min_entries(node)
        if not node.is_leaf:
            for child in node.entries:
                walk(child.rid, False)
    walk(tree._root, True)


@pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
class TestBothTrees:
    def test_empty_tree(self, cls):
        tree = make_tree(cls)
        assert len(tree) == 0
        assert tree.query(TimeSliceQuery((0.0, 0.0), PMAX, 0.0)) == []

    def test_insert_and_query(self, cls):
        tree = make_tree(cls)
        tree.insert(MovingObjectState(5, (50.0, 50.0), (1.0, 0.0), 0.0))
        hits = tree.query(TimeSliceQuery((55.0, 45.0), (65.0, 55.0), 10.0))
        assert hits == [5]

    def test_delete(self, cls):
        tree = make_tree(cls)
        state = MovingObjectState(1, (10.0, 10.0), (1.0, 1.0), 0.0)
        tree.insert(state)
        assert tree.delete(state)
        assert len(tree) == 0
        assert not tree.delete(state)

    def test_update_moves_object(self, cls):
        tree = make_tree(cls)
        old = MovingObjectState(1, (10.0, 10.0), (1.0, 1.0), 0.0)
        new = MovingObjectState(1, (100.0, 100.0), (-1.0, -1.0), 5.0)
        tree.insert(old)
        assert tree.update(old, new)
        assert len(tree) == 1
        hits = tree.query(TimeSliceQuery((90.0, 90.0), (100.0, 100.0), 10.0))
        assert hits == [1]

    def test_growth_and_shrink(self, cls):
        tree = make_tree(cls)
        rng = random.Random(17)
        states = [random_state(rng, oid, 0.0) for oid in range(800)]
        for state in states:
            tree.insert(state)
        assert tree.height() >= 2
        check_tpbr_invariants(tree)
        check_fill_invariants(tree)
        rng.shuffle(states)
        for state in states:
            assert tree.delete(state)
        assert len(tree) == 0
        assert tree.height() == 1

    def test_mixed_updates_keep_invariants(self, cls):
        tree = make_tree(cls)
        rng = random.Random(18)
        live = {}
        for oid in range(500):
            state = random_state(rng, oid, rng.uniform(0, 10))
            tree.insert(state)
            live[oid] = state
        for _ in range(400):
            oid = rng.choice(sorted(live))
            new = random_state(rng, oid, tree.now + rng.uniform(0, 1))
            assert tree.update(live[oid], new)
            live[oid] = new
        assert len(tree) == 500
        check_tpbr_invariants(tree)
        check_fill_invariants(tree)

    def test_oracle_equivalence(self, cls):
        rng = random.Random(19)
        tree = make_tree(cls)
        oracle = ScanIndex(lifetime=1e12)  # TPR trees never expire entries
        live = {}
        now = 0.0
        for oid in range(600):
            state = random_state(rng, oid, now)
            tree.insert(state)
            oracle.insert(state)
            live[oid] = state
        for _ in range(300):
            now += rng.uniform(0, 0.2)
            oid = rng.choice(sorted(live))
            new = random_state(rng, oid, now)
            tree.update(live[oid], new)
            oracle.update(live[oid], new)
            live[oid] = new
        for _ in range(60):
            query = random_query(rng, now)
            assert sorted(tree.query(query)) == sorted(oracle.query(query))

    def test_dimension_mismatch_rejected(self, cls):
        tree = make_tree(cls)
        with pytest.raises(ValueError, match="2-d"):
            tree.insert(MovingObjectState(1, (0.0,), (0.0,), 0.0))
        with pytest.raises(ValueError, match="2-d"):
            tree.query(TimeSliceQuery((0.0,), (1.0,), 0.0))

    def test_node_count_matches_pages(self, cls):
        tree = make_tree(cls)
        rng = random.Random(20)
        for oid in range(400):
            tree.insert(random_state(rng, oid, 0.0))
        assert tree.node_count() == tree.store.pages_in_use()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_random_ops_property(self, cls, seed):
        rng = random.Random(seed)
        tree = make_tree(cls)
        live = {}
        now = 0.0
        next_oid = 0
        for _ in range(rng.randint(30, 120)):
            now += rng.uniform(0, 0.5)
            roll = rng.random()
            if roll < 0.5 or not live:
                state = random_state(rng, next_oid, now)
                tree.insert(state)
                live[next_oid] = state
                next_oid += 1
            elif roll < 0.8:
                oid = rng.choice(sorted(live))
                new = random_state(rng, oid, now)
                assert tree.update(live[oid], new)
                live[oid] = new
            else:
                oid = rng.choice(sorted(live))
                assert tree.delete(live.pop(oid))
        assert len(tree) == len(live)
        assert sorted(e.oid for e in tree.all_entries()) == sorted(live)
        check_tpbr_invariants(tree)


class TestTPRStarSpecifics:
    def test_forced_reinsert_flag(self):
        assert not TPRTree.use_forced_reinsert
        assert TPRStarTree.use_forced_reinsert

    def test_choose_path_returns_root_for_target_root_level(self):
        tree = make_tree(TPRStarTree)
        rng = random.Random(21)
        for oid in range(50):
            tree.insert(random_state(rng, oid, 0.0))
        from repro.tpr.tpbr import TPBR
        box = TPBR.from_point((1.0, 1.0), (0.0, 0.0), 0.0)
        root = tree.cache.get(tree._root)
        path = tree._choose_path(box, root.level)
        assert path == [tree._root]

    def test_choose_path_finds_zero_cost_leaf(self):
        """A point inside an existing leaf box must route to a leaf whose
        enlargement is (near) zero."""
        tree = make_tree(TPRStarTree)
        rng = random.Random(22)
        states = [random_state(rng, oid, 0.0) for oid in range(300)]
        for state in states:
            tree.insert(state)
        from repro.tpr.tpbr import TPBR
        target = states[137]
        p0 = tuple(p - v * target.t for p, v in zip(target.pos, target.vel))
        box = TPBR.from_point(p0, target.vel, tree.now)
        path = tree._choose_path(box, 0)
        leaf = tree.cache.get(path[-1])
        assert leaf.is_leaf

    def test_reinsert_then_split_keeps_entries(self):
        tree = make_tree(TPRStarTree)
        rng = random.Random(23)
        n = tree.leaf_capacity * 3
        for oid in range(n):
            tree.insert(random_state(rng, oid, 0.0))
        assert len(tree) == n
        assert sorted(e.oid for e in tree.all_entries()) == list(range(n))


class TestConfigValidation:
    def test_bad_min_fill(self):
        with pytest.raises(ValueError, match="min_fill"):
            TPRTreeConfig(min_fill=0.9)

    def test_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            TPRTreeConfig(horizon=0.0)

    def test_bad_reinsert_fraction(self):
        with pytest.raises(ValueError, match="reinsert_fraction"):
            TPRTreeConfig(reinsert_fraction=1.5)

    def test_tiny_nodes_rejected(self):
        pool = BufferPool(InMemoryPageFile(), capacity=16)
        with pytest.raises(ValueError, match="fanout"):
            TPRTree(TPRTreeConfig(node_bytes=200), RecordStore(pool))
