"""Tests for the query service front end: micro-batching, admission
control (``Overloaded``), deadlines (``RequestTimeout``), graceful
drain, and the metrics surface."""

import threading
import time

import pytest

from repro.core.stripes import StripesConfig
from repro.obs import MetricsRegistry
from repro.query.types import MovingObjectState, TimeSliceQuery
from repro.service import (
    Overloaded,
    RequestTimeout,
    ServiceClosed,
    ServiceConfig,
    ShardedStripes,
    StripesService,
)
from repro.service.service import _RequestQueue

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0), lifetime=30.0)

EVERYTHING = TimeSliceQuery((0.0, 0.0), CONFIG.pmax, 1.0)


def make_sharded(n_objects=20):
    sharded = ShardedStripes(CONFIG, n_shards=2)
    for oid in range(n_objects):
        sharded.insert(MovingObjectState(
            oid, (float(5 * oid % 190), 50.0), (0.5, -0.5), 0.0))
    return sharded


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServiceConfig(batch_max=-1)
        with pytest.raises(ValueError):
            ServiceConfig(batch_window_s=-0.1)


class TestRequestQueue:
    def test_bounded_put(self):
        q = _RequestQueue(2)
        assert q.put_nowait("a") and q.put_nowait("b")
        assert not q.put_nowait("c")
        assert len(q) == 2

    def test_bulk_pop_preserves_order(self):
        q = _RequestQueue(10)
        for item in "abcde":
            q.put_nowait(item)
        assert q.pop_up_to(3, timeout=0.01) == ["a", "b", "c"]
        assert q.pop_up_to(10, timeout=0.01) == ["d", "e"]
        assert q.pop_up_to(1, timeout=0.01) == []

    def test_drain_empties(self):
        q = _RequestQueue(10)
        q.put_nowait("a")
        q.put_nowait("b")
        assert q.drain() == ["a", "b"]
        assert len(q) == 0


class TestLifecycle:
    def test_query_round_trip(self):
        service = StripesService(make_sharded(), ServiceConfig(workers=2))
        with service:
            result = service.query(EVERYTHING)
        assert sorted(result) == list(range(20))

    def test_submit_returns_future(self):
        with StripesService(make_sharded()) as service:
            future = service.submit(EVERYTHING)
            assert sorted(future.result(timeout=5)) == list(range(20))

    def test_unstarted_service_rejects(self):
        service = StripesService(make_sharded())
        with pytest.raises(ServiceClosed):
            service.submit(EVERYTHING)

    def test_closed_service_rejects(self):
        service = StripesService(make_sharded())
        service.start()
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(EVERYTHING)
        with pytest.raises(ServiceClosed):
            service.insert(MovingObjectState(99, (1.0, 1.0), (0.0, 0.0), 0.0))

    def test_close_is_idempotent(self):
        service = StripesService(make_sharded())
        service.start()
        service.close()
        service.close()

    def test_start_after_close_raises(self):
        service = StripesService(make_sharded())
        service.start()
        service.close()
        with pytest.raises(ServiceClosed):
            service.start()

    def test_writes_pass_through(self):
        with StripesService(make_sharded(n_objects=1)) as service:
            service.insert(MovingObjectState(50, (10.0, 10.0),
                                             (0.0, 0.0), 0.0))
            assert 50 in service.query(EVERYTHING)
            old = MovingObjectState(50, (10.0, 10.0), (0.0, 0.0), 0.0)
            new = MovingObjectState(50, (20.0, 20.0), (0.0, 0.0), 1.0)
            assert service.update(old, new) is True
            assert service.delete(new) is True
            assert 50 not in service.query(EVERYTHING)


class TestBatching:
    def test_concurrent_queries_coalesce(self):
        registry = MetricsRegistry()
        sharded = make_sharded()
        config = ServiceConfig(workers=1, batch_max=16,
                               batch_window_s=0.05)
        with StripesService(sharded, config, registry=registry) as service:
            futures = [service.submit(EVERYTHING) for _ in range(16)]
            results = [sorted(f.result(timeout=5)) for f in futures]
        assert all(r == list(range(20)) for r in results)
        hist = registry.get("service_batch_size")
        assert hist.count >= 1
        # With one worker and a wide window, at least one multi-request
        # batch must have formed.
        assert hist.sum > hist.count

    def test_batch_max_bounds_batch_size(self):
        registry = MetricsRegistry()
        config = ServiceConfig(workers=1, batch_max=4, batch_window_s=0.05)
        with StripesService(make_sharded(), config,
                            registry=registry) as service:
            futures = [service.submit(EVERYTHING) for _ in range(12)]
            for f in futures:
                f.result(timeout=5)
        hist = registry.get("service_batch_size")
        buckets = hist.to_value()["buckets"]
        assert buckets["4"] == hist.count  # every batch held <= 4


class TestAdmissionControl:
    def test_overloaded_raises_when_queue_full(self):
        sharded = make_sharded()
        config = ServiceConfig(workers=1, max_queue=2, batch_max=1,
                               batch_window_s=0.0)
        service = StripesService(sharded, config)
        # Fill the queue before starting workers: the third submit must
        # be rejected explicitly, never silently dropped.
        service._started = True
        service.submit(EVERYTHING)
        service.submit(EVERYTHING)
        with pytest.raises(Overloaded):
            service.submit(EVERYTHING)
        # Now let the workers drain what was admitted.
        service._started = False
        service.start()
        service.close(drain=True)

    def test_rejected_counter_increments(self):
        registry = MetricsRegistry()
        config = ServiceConfig(workers=1, max_queue=1)
        service = StripesService(make_sharded(), config, registry=registry)
        service._started = True
        service.submit(EVERYTHING)
        with pytest.raises(Overloaded):
            service.submit(EVERYTHING)
        assert registry.get("service_rejected_total").to_value() == 1
        service._started = False
        service.start()
        service.close()

    def test_deadline_expires_in_queue(self):
        registry = MetricsRegistry()
        config = ServiceConfig(workers=1, batch_max=8, batch_window_s=0.0)
        service = StripesService(make_sharded(), config, registry=registry)
        service._started = True  # queue without workers: requests age
        future = service.submit(EVERYTHING, timeout_s=0.01)
        time.sleep(0.05)
        service._started = False
        service.start()
        with pytest.raises(RequestTimeout):
            future.result(timeout=5)
        service.close()
        assert registry.get("service_timeouts_total").to_value() == 1

    def test_default_timeout_from_config(self):
        config = ServiceConfig(workers=1, default_timeout_s=0.01)
        service = StripesService(make_sharded(), config)
        service._started = True
        future = service.submit(EVERYTHING)
        time.sleep(0.05)
        service._started = False
        service.start()
        with pytest.raises(RequestTimeout):
            future.result(timeout=5)
        service.close()


class TestDrain:
    def test_drain_completes_pending_work(self):
        service = StripesService(make_sharded(),
                                 ServiceConfig(workers=2, batch_max=4))
        service.start()
        futures = [service.submit(EVERYTHING) for _ in range(20)]
        service.close(drain=True)
        for future in futures:
            assert sorted(future.result(timeout=5)) == list(range(20))

    def test_no_drain_fails_pending_with_service_closed(self):
        service = StripesService(make_sharded(), ServiceConfig(workers=1))
        service._started = True  # enqueue with no workers running
        futures = [service.submit(EVERYTHING) for _ in range(5)]
        service._started = False
        service.start()
        service.close(drain=False)
        closed = sum(
            1 for f in futures
            if isinstance(f.exception(timeout=5), ServiceClosed))
        # Workers may legitimately grab a prefix before close lands, but
        # everything still queued must fail explicitly.
        assert closed + sum(1 for f in futures if f.exception() is None) \
            == len(futures)


class TestMetricsSurface:
    def test_attach_metrics_exports_catalogue(self):
        registry = MetricsRegistry()
        with StripesService(make_sharded(), ServiceConfig(workers=1),
                            registry=registry) as service:
            service.query(EVERYTHING)
            registry.collect()
        names = registry.names()
        for expected in ("service_requests_total", "service_rejected_total",
                         "service_timeouts_total", "service_batches_total",
                         "service_errors_total", "service_batch_size",
                         "service_latency_seconds", "service_queue_depth",
                         "service_inflight", "service_workers",
                         "service_sharded_pages_in_use",
                         "service_sharded_shards",
                         "service_sharded_shard0_batch_seconds",
                         "service_sharded_shard0_entries"):
            assert expected in names, expected
        assert registry.get("service_requests_total").to_value() == 1
        assert registry.get("service_batches_total").to_value() >= 1
        assert registry.get("service_latency_seconds").count == 1

    def test_error_propagates_to_caller(self):
        class Boom(RuntimeError):
            pass

        sharded = make_sharded()
        registry = MetricsRegistry()

        def explode(queries):
            raise Boom("shard on fire")

        sharded.query_batch = explode
        with StripesService(sharded, ServiceConfig(workers=1),
                            registry=registry) as service:
            future = service.submit(EVERYTHING)
            with pytest.raises(Boom):
                future.result(timeout=5)
        assert registry.get("service_errors_total").to_value() == 1
