"""Dimensionality generality: all three indexes against the oracle in
d = 1 (the paper's illustrations, quadtree fanout 4) and d = 3 (fanout
64).  The d = 2 fast paths in the quadtree must not be load-bearing."""

import random

import pytest

from repro.baselines.scan import ScanIndex
from repro.core.stripes import StripesConfig, StripesIndex
from repro.extensions import distance_join, knn
from repro.query.predicates import matches_with_tolerance
from repro.query.types import MovingObjectState, TimeSliceQuery, WindowQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.tpr.tprstar import TPRStarTree
from repro.tpr.tprtree import TPRTreeConfig

LIFETIME = 30.0
SIDE = 200.0
VMAX = 3.0


def random_state(rng, oid, d, t):
    return MovingObjectState(
        oid,
        tuple(rng.uniform(0, SIDE) for _ in range(d)),
        tuple(rng.uniform(-VMAX, VMAX) for _ in range(d)),
        t)


def random_query(rng, d, now):
    side = 40.0
    low = tuple(rng.uniform(0, SIDE - side) for _ in range(d))
    high = tuple(l + side for l in low)
    t1 = now + rng.uniform(0, 10)
    if rng.random() < 0.5:
        return TimeSliceQuery(low, high, t1)
    return WindowQuery(low, high, t1, t1 + rng.uniform(0.1, 10))


def check_against_oracle(index, oracle, rng, d, now, trials=30):
    for _ in range(trials):
        query = random_query(rng, d, now)
        got = sorted(index.query(query))
        expected = sorted(oracle.query(query))
        if got != expected:
            live = {s.oid: s for s in oracle.live_states()}
            for oid in set(got).symmetric_difference(expected):
                _, boundary = matches_with_tolerance(live[oid], query, 1e-7)
                assert boundary, f"d={d}: object {oid} mismatched"


@pytest.mark.parametrize("d", [1, 3])
class TestStripesDimensions:
    def test_matches_oracle(self, d):
        rng = random.Random(100 + d)
        index = StripesIndex(StripesConfig(
            vmax=(VMAX,) * d, pmax=(SIDE,) * d, lifetime=LIFETIME))
        oracle = ScanIndex(LIFETIME)
        live = {}
        for oid in range(400):
            state = random_state(rng, oid, d, rng.uniform(0, LIFETIME - 1))
            index.insert(state)
            oracle.insert(state)
            live[oid] = state
        for oid in rng.sample(sorted(live), 150):
            new = random_state(rng, oid, d,
                               rng.uniform(LIFETIME, 2 * LIFETIME - 1))
            index.update(live[oid], new)
            oracle.update(live[oid], new)
            live[oid] = new
        assert len(index) == len(oracle)
        check_against_oracle(index, oracle, rng, d, now=2 * LIFETIME)

    def test_fanout(self, d):
        index = StripesIndex(StripesConfig(
            vmax=(VMAX,) * d, pmax=(SIDE,) * d, lifetime=LIFETIME))
        index.insert(MovingObjectState(1, (1.0,) * d, (0.0,) * d, 0.0))
        tree = next(iter(index._trees.values()))
        assert tree.fanout == 4 ** d

    def test_deletes_drain(self, d):
        rng = random.Random(200 + d)
        index = StripesIndex(StripesConfig(
            vmax=(VMAX,) * d, pmax=(SIDE,) * d, lifetime=LIFETIME))
        states = [random_state(rng, oid, d, 0.0) for oid in range(300)]
        for state in states:
            index.insert(state)
        for state in states:
            assert index.delete(state)
        assert len(index) == 0

    def test_knn_and_join(self, d):
        rng = random.Random(300 + d)
        index = StripesIndex(StripesConfig(
            vmax=(VMAX,) * d, pmax=(SIDE,) * d, lifetime=LIFETIME))
        oracle = ScanIndex(LIFETIME)
        for oid in range(200):
            state = random_state(rng, oid, d, 0.0)
            index.insert(state)
            oracle.insert(state)
        point = (SIDE / 2,) * d
        got = knn(index, point, t=10.0, k=5)
        expected = knn(oracle, point, t=10.0, k=5)
        assert [round(dist, 6) for _, dist in got] \
            == [round(dist, 6) for _, dist in expected]
        assert distance_join(index, index, 5.0, 10.0) \
            == distance_join(oracle, oracle, 5.0, 10.0)


@pytest.mark.parametrize("d", [1, 3])
@pytest.mark.parametrize("cls", [TPRStarTree])
class TestTPRDimensions:
    def test_matches_oracle(self, d, cls):
        rng = random.Random(400 + d)
        pool = BufferPool(InMemoryPageFile(), capacity=4096)
        tree = cls(TPRTreeConfig(d=d, horizon=20.0), RecordStore(pool))
        oracle = ScanIndex(1e12)
        live = {}
        for oid in range(400):
            state = random_state(rng, oid, d, rng.uniform(0, 10))
            tree.insert(state)
            oracle.insert(state)
            live[oid] = state
        for oid in rng.sample(sorted(live), 150):
            new = random_state(rng, oid, d, tree.now + rng.uniform(0, 1))
            tree.update(live[oid], new)
            oracle.update(live[oid], new)
            live[oid] = new
        for _ in range(30):
            query = random_query(rng, d, now=tree.now)
            assert sorted(tree.query(query)) == sorted(oracle.query(query))
