"""Tests for the workload generator (Section 5.2): parameter handling,
bounds guarantees, mix ratios, determinism, and skew."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.types import MovingQuery, TimeSliceQuery, WindowQuery
from repro.workload.generator import WorkloadSpec, _reflect, generate_workload
from repro.workload.network import NetworkTraveller, RouteNetwork
from repro.workload.operations import InsertOp, QueryOp, UpdateOp


class TestReflect:
    def test_inside_unchanged(self):
        assert _reflect(5.0, 10.0) == 5.0

    def test_bounces_off_upper_wall(self):
        assert _reflect(12.0, 10.0) == 8.0

    def test_bounces_off_lower_wall(self):
        assert _reflect(-3.0, 10.0) == 3.0

    def test_multiple_periods(self):
        assert _reflect(25.0, 10.0) == pytest.approx(5.0)

    @settings(max_examples=200, deadline=None)
    @given(value=st.floats(min_value=-1e5, max_value=1e5,
                           allow_nan=False),
           side=st.floats(min_value=0.1, max_value=1e3))
    def test_always_in_bounds(self, value, side):
        assert 0.0 <= _reflect(value, side) <= side

    def test_zero_side_rejected(self):
        with pytest.raises(ValueError):
            _reflect(1.0, 0.0)


class TestSpecValidation:
    def test_defaults_follow_paper(self):
        spec = WorkloadSpec()
        assert spec.update_interval == 60.0
        assert spec.duration == 600.0
        assert spec.query_mix == (0.6, 0.2, 0.2)
        assert spec.query_temporal_range == 40.0
        assert spec.query_spatial_fraction == 0.0025

    def test_side_scaling_keeps_density(self):
        n100k = WorkloadSpec(n_objects=100_000)
        n400k = WorkloadSpec(n_objects=400_000)
        assert n100k.side == pytest.approx(1000.0)
        assert n400k.side == pytest.approx(2000.0)

    def test_query_side_is_5_percent(self):
        spec = WorkloadSpec(n_objects=100_000)
        assert spec.query_side == pytest.approx(50.0)

    def test_explicit_side_overrides_scaling(self):
        assert WorkloadSpec(space_side=777.0).side == 777.0

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError, match="query_mix"):
            WorkloadSpec(query_mix=(0.5, 0.2, 0.2))

    def test_bad_nd_rejected(self):
        with pytest.raises(ValueError, match="nd"):
            WorkloadSpec(nd=1)

    def test_bad_update_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(update_fraction=0.0)


class TestGeneratedWorkload:
    SPEC = WorkloadSpec(n_objects=500, n_operations=600, seed=42)

    def test_initial_states_cover_all_objects(self):
        workload = generate_workload(self.SPEC)
        assert len(workload.initial) == 500
        assert sorted(s.oid for s in workload.initial) == list(range(500))
        assert all(s.t == 0.0 for s in workload.initial)

    def test_all_states_within_bounds(self):
        workload = generate_workload(self.SPEC)
        side = self.SPEC.side
        states = list(workload.initial)
        states += [op.new for op in workload.operations
                   if isinstance(op, UpdateOp)]
        for state in states:
            for i in range(2):
                assert 0.0 <= state.pos[i] <= side
                assert abs(state.vel[i]) <= self.SPEC.max_speed + 1e-9

    def test_operations_are_time_ordered(self):
        workload = generate_workload(self.SPEC)
        assert workload.check_ordered()

    def test_update_old_params_match_previous_report(self):
        workload = generate_workload(self.SPEC)
        last = {s.oid: s for s in workload.initial}
        for op in workload.operations:
            if isinstance(op, UpdateOp):
                assert op.old == last[op.old.oid], (
                    "old parameters must be exactly the previous report")
                last[op.new.oid] = op.new

    def test_mix_ratio_approximately_honoured(self):
        for fraction in (0.8, 0.5, 0.2):
            spec = WorkloadSpec(n_objects=400, update_fraction=fraction,
                                n_operations=1000, seed=1)
            workload = generate_workload(spec)
            observed = workload.n_updates / len(workload)
            assert observed == pytest.approx(fraction, abs=0.05)

    def test_query_mix_approximately_honoured(self):
        spec = WorkloadSpec(n_objects=300, update_fraction=0.2,
                            n_operations=2000, seed=3)
        workload = generate_workload(spec)
        kinds = {"ts": 0, "win": 0, "mov": 0}
        for op in workload.operations:
            if isinstance(op, QueryOp):
                if isinstance(op.query, TimeSliceQuery):
                    kinds["ts"] += 1
                elif isinstance(op.query, WindowQuery):
                    kinds["win"] += 1
                else:
                    kinds["mov"] += 1
        total = sum(kinds.values())
        assert kinds["ts"] / total == pytest.approx(0.6, abs=0.08)
        assert kinds["win"] / total == pytest.approx(0.2, abs=0.08)
        assert kinds["mov"] / total == pytest.approx(0.2, abs=0.08)

    def test_queries_respect_temporal_range(self):
        workload = generate_workload(self.SPEC)
        for op in workload.operations:
            if isinstance(op, QueryOp):
                moving = op.query.as_moving()
                assert moving.t_low >= op.issued_at
                assert moving.t_high <= op.issued_at + 40.0 + 1e-9

    def test_query_rectangles_have_paper_extent(self):
        workload = generate_workload(self.SPEC)
        expected = self.SPEC.query_side
        for op in workload.operations:
            if isinstance(op, QueryOp):
                moving = op.query.as_moving()
                for i in range(2):
                    assert (moving.high1[i] - moving.low1[i]) \
                        == pytest.approx(expected)

    def test_determinism(self):
        a = generate_workload(self.SPEC)
        b = generate_workload(self.SPEC)
        assert a.initial == b.initial
        assert a.operations == b.operations

    def test_different_seeds_differ(self):
        a = generate_workload(self.SPEC)
        b = generate_workload(WorkloadSpec(n_objects=500, n_operations=600,
                                           seed=43))
        assert a.operations != b.operations

    def test_operation_cap_respected(self):
        workload = generate_workload(self.SPEC)
        assert len(workload) == 600

    def test_duration_bounds_updates(self):
        spec = WorkloadSpec(n_objects=50, duration=30.0, seed=5)
        workload = generate_workload(spec)
        for op in workload.operations:
            assert op.timestamp <= 30.0


class TestSkewedWorkload:
    def test_skew_concentrates_positions(self):
        """Positions in an ND=5 workload must be far more concentrated
        than uniform (measured by mean distance to the nearest route
        segment endpoint grid cell occupancy)."""
        uniform = generate_workload(
            WorkloadSpec(n_objects=2000, seed=9, n_operations=0))
        skewed = generate_workload(
            WorkloadSpec(n_objects=2000, seed=9, nd=5, n_operations=0))

        def occupied_cells(states, side, grid=20):
            cells = set()
            for state in states:
                cx = min(grid - 1, int(state.pos[0] / side * grid))
                cy = min(grid - 1, int(state.pos[1] / side * grid))
                cells.add((cx, cy))
            return len(cells)

        side = WorkloadSpec(n_objects=2000).side
        assert occupied_cells(skewed.initial, side) \
            < 0.7 * occupied_cells(uniform.initial, side)

    def test_skewed_states_in_bounds(self):
        spec = WorkloadSpec(n_objects=300, nd=8, n_operations=500, seed=11)
        workload = generate_workload(spec)
        for op in workload.operations:
            if isinstance(op, UpdateOp):
                for i in range(2):
                    assert -1e-6 <= op.new.pos[i] <= spec.side + 1e-6
                    assert abs(op.new.vel[i]) <= spec.max_speed + 1e-9

    def test_network_traveller_advances_toward_destination(self):
        rng = random.Random(1)
        network = RouteNetwork([(0.0, 0.0), (10.0, 0.0)])
        traveller = NetworkTraveller((0.0, 0.0), 1, speed=1.0)
        traveller.advance(5.0, network, rng)
        assert traveller.position[0] == pytest.approx(5.0)

    def test_network_traveller_passes_through_hub(self):
        rng = random.Random(2)
        network = RouteNetwork([(0.0, 0.0), (4.0, 0.0), (4.0, 3.0)])
        traveller = NetworkTraveller((0.0, 0.0), 1, speed=1.0)
        traveller.advance(6.0, network, rng)
        # 4 units to the hub, 2 more along the next route.
        assert math.hypot(traveller.position[0] - 4.0,
                          traveller.position[1]) == pytest.approx(2.0) \
            or traveller.position[0] == pytest.approx(2.0)

    def test_network_needs_two_hubs(self):
        with pytest.raises(ValueError):
            RouteNetwork.generate(1, (10.0, 10.0), random.Random(0))

    def test_random_destination_excludes(self):
        rng = random.Random(3)
        network = RouteNetwork([(0.0, 0.0), (1.0, 1.0)])
        for _ in range(10):
            assert network.random_destination(rng, exclude=0) == 1


class TestDimensionalGenerator:
    @pytest.mark.parametrize("d", [1, 3])
    def test_states_and_queries_have_dimension(self, d):
        spec = WorkloadSpec(d=d, n_objects=100, n_operations=200, seed=13)
        workload = generate_workload(spec)
        assert all(s.d == d for s in workload.initial)
        for op in workload.operations:
            if isinstance(op, UpdateOp):
                assert op.new.d == d
            elif isinstance(op, QueryOp):
                assert op.query.as_moving().d == d

    @pytest.mark.parametrize("d", [1, 3])
    def test_bounds_hold_in_d(self, d):
        spec = WorkloadSpec(d=d, n_objects=100, n_operations=300, seed=14)
        workload = generate_workload(spec)
        for op in workload.operations:
            if isinstance(op, UpdateOp):
                for i in range(d):
                    assert 0.0 <= op.new.pos[i] <= spec.side
                    assert abs(op.new.vel[i]) <= spec.max_speed + 1e-9

    def test_speed_magnitude_bounded_not_componentwise_capped(self):
        """Velocity is a speed times a unit direction: the vector norm is
        bounded by max_speed (not each component independently)."""
        spec = WorkloadSpec(d=3, n_objects=200, n_operations=0, seed=15)
        workload = generate_workload(spec)
        for state in workload.initial:
            assert math.sqrt(sum(v * v for v in state.vel)) \
                <= spec.max_speed + 1e-9

    def test_network_requires_two_dimensions(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            WorkloadSpec(d=3, nd=10)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError, match="d must be"):
            WorkloadSpec(d=0)


class TestOperationsModel:
    def test_workload_counters(self):
        spec = WorkloadSpec(n_objects=200, n_operations=300, seed=21)
        workload = generate_workload(spec)
        assert workload.n_updates + workload.n_queries == len(workload)

    def test_insert_op_timestamp(self):
        from repro.query.types import MovingObjectState
        op = InsertOp(MovingObjectState(1, (0.0,), (0.0,), 4.5))
        assert op.timestamp == 4.5

    def test_query_op_timestamp(self):
        op = QueryOp(TimeSliceQuery((0.0,), (1.0,), 9.0), issued_at=3.0)
        assert op.timestamp == 3.0
