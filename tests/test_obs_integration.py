"""Integration tests: metrics collectors wired through the storage and
index layers, the bench runner's registry support, and the CLI
``explain`` subcommand."""

import dataclasses
import json

import pytest

from repro import (
    MovingObjectState,
    StripesConfig,
    StripesIndex,
    TimeSliceQuery,
)
from repro.bench.cli import main as bench_main
from repro.bench.report import render_latency_table, render_metrics_snapshot
from repro.bench.runner import make_stripes, run_workload
from repro.obs import MetricsRegistry, Tracer
from repro.storage.buffer_pool import BufferPool
from repro.storage.node_store import RecordStore
from repro.storage.pagefile import InMemoryPageFile
from repro.storage.stats import IOStats
from repro.tpr.tprtree import TPRTree, TPRTreeConfig
from repro.workload.generator import WorkloadSpec, generate_workload


def _small_workload(n_objects=300, n_operations=200, seed=11):
    return generate_workload(WorkloadSpec(
        n_objects=n_objects, n_operations=n_operations, seed=seed))


class TestBufferPoolMetrics:
    def test_counters_mirror_iostats_under_eviction_pressure(self):
        pool = BufferPool(InMemoryPageFile(), capacity=4)
        registry = MetricsRegistry()
        pool.attach_metrics(registry)
        store = RecordStore(pool)
        rids = [store.allocate(1000, bytes([i % 251]) * 1000)
                for i in range(50)]
        for rid in rids:
            store.read(rid)
        snapshot = registry.to_dict()
        assert pool.stats.evictions > 0, "tiny pool must evict"
        for field in dataclasses.fields(IOStats):
            assert snapshot["counters"][f"pool_{field.name}_total"] == \
                getattr(pool.stats, field.name)
        assert snapshot["gauges"]["pool_capacity_pages"] == 4
        assert snapshot["gauges"]["pool_resident_pages"] <= 4
        assert snapshot["gauges"]["pool_hit_rate"] == pytest.approx(
            pool.stats.hit_rate)


class TestStripesMetrics:
    def _index(self, registry):
        pool = BufferPool(InMemoryPageFile(), capacity=64)
        index = StripesIndex(
            StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0),
                          lifetime=120.0), pool)
        index.attach_metrics(registry)
        return index

    def test_operation_counters(self):
        registry = MetricsRegistry()
        index = self._index(registry)
        for oid in range(50):
            index.insert(MovingObjectState(
                oid=oid, pos=(oid % 10 * 10.0, oid // 10 * 10.0),
                vel=(0.0, 0.0), t=0.0))
        index.query(TimeSliceQuery((0.0, 0.0), (100.0, 100.0), t=0.0))
        counters = registry.to_dict()["counters"]
        assert counters["stripes_inserts_total"] == 50
        assert counters["stripes_searches_total"] == 1
        assert registry.to_dict()["gauges"]["stripes_entries"] == 50

    def test_counters_survive_rotation(self):
        """Aggregated counters are monotone across sub-index retirement."""
        registry = MetricsRegistry()
        index = self._index(registry)
        index.insert(MovingObjectState(oid=1, pos=(10.0, 10.0),
                                       vel=(0.0, 0.0), t=0.0))
        before = registry.to_dict()["counters"]["stripes_inserts_total"]
        # Two lifetimes later the window-0 tree is retired and destroyed.
        index.insert(MovingObjectState(oid=2, pos=(20.0, 20.0),
                                       vel=(0.0, 0.0), t=300.0))
        counters = registry.to_dict()["counters"]
        assert index.rotations >= 1
        assert counters["stripes_rotations_total"] == index.rotations
        assert counters["stripes_inserts_total"] == before + 1

    def test_rotation_event_is_orphan_without_open_span(self):
        registry = MetricsRegistry()
        index = self._index(registry)
        tracer = Tracer()
        index.attach_tracer(tracer)
        index.insert(MovingObjectState(oid=1, pos=(10.0, 10.0),
                                       vel=(0.0, 0.0), t=0.0))
        index.insert(MovingObjectState(oid=2, pos=(20.0, 20.0),
                                       vel=(0.0, 0.0), t=300.0))
        assert any(name == "stripes.rotation"
                   for name, _ in tracer.orphan_events)


class TestTPRExplain:
    def test_explain_matches_query(self):
        pool = BufferPool(InMemoryPageFile(), capacity=64)
        tree = TPRTree(TPRTreeConfig(d=2, horizon=60.0), RecordStore(pool))
        workload = _small_workload()
        for state in workload.initial:
            tree.insert(state)
        query = TimeSliceQuery((0.0, 0.0), (30.0, 30.0), t=1.0)
        explain = tree.explain(query)
        assert sorted(explain.results) == sorted(tree.query(query))
        trace = explain.total_trace()
        assert trace.nodes_visited > 0
        assert trace.tpbr_tests > 0 or trace.nonleaf_visits == 0


class TestRunnerRegistry:
    def test_run_workload_emits_phase_metrics_and_percentiles(self):
        workload = _small_workload()
        registry = MetricsRegistry()
        setup = make_stripes(workload, pool_pages=64, registry=registry)
        result = run_workload(setup, workload, n_ops=150,
                              keep_per_op=True, registry=registry)
        assert set(result.phase_metrics) == {"load", "ops"}
        assert result.metrics is result.phase_metrics["ops"]

        load_counters = result.phase_metrics["load"]["counters"]
        ops_counters = result.metrics["counters"]
        assert load_counters["stripes_inserts_total"] == len(
            workload.initial)
        assert ops_counters["stripes_inserts_total"] >= \
            load_counters["stripes_inserts_total"]

        hists = result.metrics["histograms"]
        for name in ("bench_update_latency_seconds",
                     "bench_query_latency_seconds"):
            assert hists[name]["count"] > 0
            assert 0.0 <= hists[name]["p50"] <= hists[name]["p99"]
        assert result.updates.p50 <= result.updates.p99

        # The snapshot is JSON-serializable end to end.
        json.dumps(result.phase_metrics)

    def test_latency_table_renders_percentiles(self):
        workload = _small_workload()
        setup = make_stripes(workload, pool_pages=64)
        result = run_workload(setup, workload, n_ops=100, keep_per_op=True)
        table = render_latency_table("t", {"STRIPES": result})
        assert "qry p99 ms" in table
        assert "-" not in table.splitlines()[-1].split()  # cells filled

    def test_latency_table_dashes_without_keep(self):
        workload = _small_workload(n_objects=100, n_operations=50)
        setup = make_stripes(workload, pool_pages=64)
        result = run_workload(setup, workload, n_ops=20)
        table = render_latency_table("t", {"STRIPES": result})
        assert table.splitlines()[-1].split()[1:] == ["-"] * 6

    def test_metrics_snapshot_renders(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        text = render_metrics_snapshot("snap:", registry.to_dict())
        assert "a_total = 2" in text
        assert "g = 1.5" in text
        assert "count=1" in text


class TestCliExplain:
    def test_explain_smoke(self, capsys):
        rc = bench_main(["explain", "--n-objects", "300",
                         "--pool-pages", "64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "STRIPES explain" in out
        assert "INSIDE" in out and "DISJUNCT" in out
        assert "metrics snapshot" in out
        assert "stripes_inserts_total" in out

    def test_explain_tpr(self, capsys):
        rc = bench_main(["explain", "--index", "tpr", "--n-objects", "300",
                         "--pool-pages", "64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TPRTree explain" in out
        assert "tpr_inserts_total" in out
