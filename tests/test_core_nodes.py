"""Serialization round-trip tests for the quadtree node codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dual import DualPoint
from repro.core.nodes import (
    INVALID_RID,
    LeafExtension,
    LeafNode,
    NodeCodec,
    NonLeafNode,
)


def dual_points(d, max_size=20):
    coord = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                      width=32)
    return st.lists(
        st.builds(DualPoint,
                  oid=st.integers(min_value=0, max_value=2**60),
                  v=st.tuples(*[coord] * d),
                  p=st.tuples(*[coord] * d)),
        max_size=max_size)


class TestCodecSizes:
    def test_fanout(self):
        assert NodeCodec(1).fanout == 4
        assert NodeCodec(2).fanout == 16
        assert NodeCodec(3).fanout == 64

    def test_entry_size(self):
        assert NodeCodec(2).entry_size == 8 + 4 * 8       # oid + 4 doubles
        assert NodeCodec(2, float32=True).entry_size == 8 + 4 * 4

    def test_nonleaf_record_size_is_fixed(self):
        codec = NodeCodec(2)
        node = NonLeafNode(0, (0.0, 0.0), (0.0, 0.0),
                           [INVALID_RID] * 16, [False] * 16, 0)
        assert len(codec.serialize(node)) == codec.nonleaf_record_size

    def test_leaf_capacity_monotone_in_record_size(self):
        codec = NodeCodec(2)
        assert codec.leaf_capacity(4091) > codec.leaf_capacity(2045) > 0

    def test_too_small_leaf_record_rejected(self):
        with pytest.raises(ValueError, match="cannot hold any entry"):
            NodeCodec(2).leaf_capacity(10)

    def test_invalid_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            NodeCodec(0)


class TestRoundTrips:
    @settings(max_examples=100, deadline=None)
    @given(d=st.integers(min_value=1, max_value=3), data=st.data())
    def test_leaf_round_trip(self, d, data):
        codec = NodeCodec(d)
        coord = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
        leaf = LeafNode(
            level=data.draw(st.integers(min_value=0, max_value=30)),
            v_corner=data.draw(st.tuples(*[coord] * d)),
            p_corner=data.draw(st.tuples(*[coord] * d)),
            entries=data.draw(dual_points(d)),
            overflow=data.draw(st.sampled_from([INVALID_RID, 0, 12345])),
        )
        back = codec.deserialize(codec.serialize(leaf))
        assert back == leaf

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_nonleaf_round_trip(self, data):
        codec = NodeCodec(2)
        rids = data.draw(st.lists(
            st.integers(min_value=-1, max_value=2**40),
            min_size=16, max_size=16))
        flags = data.draw(st.lists(st.booleans(), min_size=16, max_size=16))
        coord = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
        node = NonLeafNode(
            level=data.draw(st.integers(min_value=0, max_value=30)),
            v_corner=data.draw(st.tuples(coord, coord)),
            p_corner=data.draw(st.tuples(coord, coord)),
            children=rids, child_is_leaf=flags,
            size=data.draw(st.integers(min_value=0, max_value=2**31 - 1)))
        back = codec.deserialize(codec.serialize(node))
        assert back == node

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_extension_round_trip(self, data):
        codec = NodeCodec(2)
        ext = LeafExtension(entries=data.draw(dual_points(2)),
                            overflow=data.draw(
                                st.sampled_from([INVALID_RID, 77])))
        back = codec.deserialize(codec.serialize(ext))
        assert back == ext

    def test_float32_round_trip_rounds_coordinates(self):
        import numpy as np
        codec = NodeCodec(2, float32=True)
        value = 123.456789
        leaf = LeafNode(0, (0.0, 0.0), (0.0, 0.0),
                        [DualPoint(1, (value, 0.0), (value, 0.0))])
        back = codec.deserialize(codec.serialize(leaf))
        assert back.entries[0].v[0] == float(np.float32(value))

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown node tag"):
            NodeCodec(2).deserialize(b"\xff" + b"\x00" * 100)

    def test_wrong_children_count_rejected(self):
        codec = NodeCodec(2)
        node = NonLeafNode(0, (0.0, 0.0), (0.0, 0.0), [INVALID_RID] * 4,
                           [False] * 4, 0)
        with pytest.raises(ValueError, match="child slots"):
            codec.serialize(node)

    def test_present_children(self):
        children = [INVALID_RID] * 16
        children[3] = 42
        children[7] = 99
        node = NonLeafNode(0, (0.0, 0.0), (0.0, 0.0), children,
                           [False] * 16, 0)
        assert node.present_children() == [3, 7]
