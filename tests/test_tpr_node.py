"""Serialization round-trip tests for TPR-tree nodes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpr.node import ChildEntry, LeafEntry, TPRNode, TPRNodeCodec
from repro.tpr.tpbr import TPBR

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestCapacities:
    def test_leaf_capacity_positive(self):
        codec = TPRNodeCodec(2)
        assert codec.leaf_capacity(4091) > 50

    def test_nonleaf_capacity_smaller_than_leaf(self):
        codec = TPRNodeCodec(2)
        assert codec.nonleaf_capacity(4091) < codec.leaf_capacity(4091)

    def test_float32_fits_more(self):
        assert TPRNodeCodec(2, float32=True).leaf_capacity(4091) \
            > TPRNodeCodec(2).leaf_capacity(4091)

    def test_invalid_dimensionality(self):
        with pytest.raises(ValueError):
            TPRNodeCodec(0)


class TestRoundTrips:
    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_leaf_round_trip(self, data):
        d = data.draw(st.integers(min_value=1, max_value=3), label="d")
        codec = TPRNodeCodec(d)
        entries = data.draw(st.lists(
            st.builds(LeafEntry,
                      oid=st.integers(min_value=0, max_value=2**60),
                      p0=st.tuples(*[coords] * d),
                      vel=st.tuples(*[coords] * d)),
            max_size=10))
        node = TPRNode(0, entries)
        back = codec.deserialize(codec.serialize(node))
        assert back.level == 0
        assert back.entries == entries

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_nonleaf_round_trip(self, data):
        codec = TPRNodeCodec(2)
        def make_child(rid, t0, lower, ext, vlower, vext):
            return ChildEntry(rid, TPBR(
                t0, lower,
                tuple(l + e for l, e in zip(lower, ext)),
                vlower,
                tuple(v + e for v, e in zip(vlower, vext))))
        pos_ext = st.floats(min_value=0, max_value=100, allow_nan=False)
        children = data.draw(st.lists(st.builds(
            make_child,
            rid=st.integers(min_value=0, max_value=2**40),
            t0=st.floats(min_value=0, max_value=100),
            lower=st.tuples(coords, coords),
            ext=st.tuples(pos_ext, pos_ext),
            vlower=st.tuples(coords, coords),
            vext=st.tuples(pos_ext, pos_ext)), max_size=8))
        node = TPRNode(2, children)
        back = codec.deserialize(codec.serialize(node))
        assert back.level == 2
        assert len(back.entries) == len(children)
        for got, want in zip(back.entries, children):
            assert got.rid == want.rid
            assert got.tpbr == want.tpbr

    def test_empty_leaf(self):
        codec = TPRNodeCodec(2)
        back = codec.deserialize(codec.serialize(TPRNode(0, [])))
        assert back.level == 0
        assert back.entries == []

    def test_is_leaf_flag(self):
        assert TPRNode(0, []).is_leaf
        assert not TPRNode(1, []).is_leaf
