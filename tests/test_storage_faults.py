"""Unit tests for the fault-injection layer (`repro.storage.faults`):
operation counting, transient failures, simulated crashes, torn writes,
the volatile/durable write model, and the named-failpoint registry."""

import random

import pytest

from repro.storage.faults import (FAILPOINTS, FailpointRegistry,
                                  FaultyPageFile, InjectedCrash,
                                  TransientIOError)
from repro.storage.page import PAGE_SIZE
from repro.storage.pagefile import InMemoryPageFile


def image(fill: int) -> bytes:
    return bytes([fill]) * PAGE_SIZE


@pytest.fixture
def faulty():
    return FaultyPageFile(InMemoryPageFile())


class TestCounters:
    def test_reads_writes_syncs_counted(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(1))
        faulty.write(pid, image(2))
        faulty.read(pid)
        faulty.sync()
        assert (faulty.writes, faulty.reads, faulty.syncs) == (2, 1, 1)

    def test_delegates_storage(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(7))
        assert bytes(faulty.read(pid)) == image(7)
        assert faulty.capacity_pages == 1


class TestTransientFaults:
    def test_failed_write_not_applied_and_retry_succeeds(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(1))
        faulty.fail_next_writes(1)
        with pytest.raises(TransientIOError):
            faulty.write(pid, image(2))
        # The failed write did not land; an identical retry does.
        assert bytes(faulty.read(pid)) == image(1)
        faulty.write(pid, image(2))
        assert bytes(faulty.read(pid)) == image(2)

    def test_fail_writes_at_range(self, faulty):
        pid = faulty.allocate()
        faulty.fail_writes_at(1, times=2)
        for _ in range(2):
            with pytest.raises(TransientIOError):
                faulty.write(pid, image(3))
        faulty.write(pid, image(3))  # third attempt clears the range

    def test_failed_read(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(4))
        faulty.fail_next_reads(1)
        with pytest.raises(TransientIOError):
            faulty.read(pid)
        assert bytes(faulty.read(pid)) == image(4)

    def test_transient_fault_does_not_freeze(self, faulty):
        pid = faulty.allocate()
        faulty.fail_next_writes(1)
        with pytest.raises(TransientIOError):
            faulty.write(pid, image(1))
        assert not faulty.crashed


class TestCrashes:
    def test_crash_at_write_freezes_file(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(1))
        faulty.crash_at_write(2)
        with pytest.raises(InjectedCrash):
            faulty.write(pid, image(2))
        assert faulty.crashed
        # A dead process issues no more IO: everything re-raises.
        for op in (lambda: faulty.read(pid),
                   lambda: faulty.write(pid, image(3)),
                   lambda: faulty.sync(),
                   lambda: faulty.allocate()):
            with pytest.raises(InjectedCrash):
                op()

    def test_crashed_write_not_applied(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(1))
        faulty.sync()
        faulty.crash_at_write(2)
        with pytest.raises(InjectedCrash):
            faulty.write(pid, image(2))
        assert faulty.durable_image("all")[pid] == image(1)

    def test_crash_at_read(self, faulty):
        pid = faulty.allocate()
        faulty.crash_at_read(1)
        with pytest.raises(InjectedCrash):
            faulty.read(pid)
        assert faulty.crashed


class TestTornWrites:
    def test_torn_write_applies_prefix_durably(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(0xAA))
        faulty.sync()
        faulty.tear_at_write(2, 100)
        with pytest.raises(InjectedCrash):
            faulty.write(pid, image(0xBB))
        # The torn half-sector reached the platter even under the strict
        # survival policy.
        durable = faulty.durable_image("none")[pid]
        assert durable == image(0xBB)[:100] + image(0xAA)[100:]

    def test_tear_offset_validated(self, faulty):
        with pytest.raises(ValueError, match="tear offset"):
            faulty.tear_at_write(1, PAGE_SIZE + 1)


class TestDurableImage:
    def test_none_reverts_unsynced_writes(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(1))
        faulty.sync()
        faulty.write(pid, image(2))  # unsynced at crash time
        assert faulty.durable_image("none")[pid] == image(1)
        assert faulty.durable_image("all")[pid] == image(2)

    def test_sync_makes_writes_durable(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(1))
        faulty.sync()
        assert faulty.durable_image("none")[pid] == image(1)

    def test_preimage_is_first_write_since_sync(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(1))
        faulty.sync()
        faulty.write(pid, image(2))
        faulty.write(pid, image(3))
        # Reverting loses BOTH unsynced writes, not just the last.
        assert faulty.durable_image("none")[pid] == image(1)

    def test_random_policy_is_per_page(self, faulty):
        pids = [faulty.allocate() for _ in range(8)]
        for pid in pids:
            faulty.write(pid, image(1))
        faulty.sync()
        for pid in pids:
            faulty.write(pid, image(2))
        mixed = faulty.durable_image(random.Random(3))
        assert set(mixed) >= {image(1)} or set(mixed) >= {image(2)}
        none = faulty.durable_image("none")
        every = faulty.durable_image("all")
        assert all(img == image(1) for img in none)
        assert all(img == image(2) for img in every)

    def test_reopen_durable_round_trip(self, faulty):
        pid = faulty.allocate()
        faulty.write(pid, image(9))
        faulty.sync()
        reopened = faulty.reopen_durable("none")
        assert isinstance(reopened, InMemoryPageFile)
        assert bytes(reopened.read(pid)) == image(9)
        assert reopened.capacity_pages == faulty.capacity_pages

    def test_clear_faults_disarms_everything(self, faulty):
        pid = faulty.allocate()
        faulty.fail_next_writes(5)
        faulty.crash_at_write(1)
        faulty.tear_at_write(2, 10)
        faulty.clear_faults()
        faulty.write(pid, image(1))  # nothing fires
        assert not faulty.crashed


class TestFailpointRegistry:
    def test_unarmed_hit_is_noop(self):
        registry = FailpointRegistry()
        registry.hit("anything")  # must not raise

    def test_arm_crashes_on_nth_hit(self):
        registry = FailpointRegistry()
        registry.arm("spot", hit_number=3)
        registry.hit("spot")
        registry.hit("spot")
        with pytest.raises(InjectedCrash, match="spot"):
            registry.hit("spot")
        registry.hit("spot")  # one-shot: disarmed after firing

    def test_arm_transient(self):
        registry = FailpointRegistry()
        registry.arm("spot", action="transient")
        with pytest.raises(TransientIOError):
            registry.hit("spot")

    def test_arm_validates(self):
        registry = FailpointRegistry()
        with pytest.raises(ValueError):
            registry.arm("spot", hit_number=0)
        with pytest.raises(ValueError):
            registry.arm("spot", action="explode")

    def test_record_captures_ordered_hits(self):
        registry = FailpointRegistry()
        with registry.record() as hits:
            registry.hit("a")
            registry.hit("b")
            registry.hit("a")
        registry.hit("c")  # after the block: not recorded
        assert hits == ["a", "b", "a"]

    def test_clear_disarms(self):
        registry = FailpointRegistry()
        registry.arm("spot")
        registry.clear()
        registry.hit("spot")

    def test_global_registry_exists(self):
        assert isinstance(FAILPOINTS, FailpointRegistry)
