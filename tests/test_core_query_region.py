"""Unit and property tests for dual-space query regions (Section 4.6).

The central property: a dual point is inside a plane's query region if and
only if its one-dimensional trajectory crosses that plane's position
corridor at some time inside the query window (the exact 1-d predicate).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dual import DualSpace
from repro.core.query_region import (
    Line,
    QueryRegion2D,
    RelPos,
    build_query_regions,
)
from repro.query.predicates import matches
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)

VMAX = 3.0
PMAX = 100.0
LIFETIME = 60.0
SPACE_1D = DualSpace(vmax=(VMAX,), pmax=(PMAX,), lifetime=LIFETIME)


def region_for(query, t_ref=0.0):
    return QueryRegion2D.from_query_plane(query.as_moving(), 0, VMAX,
                                          LIFETIME, t_ref)


class TestLine:
    def test_evaluation(self):
        line = Line(slope=2.0, intercept=1.0)
        assert line.at(3.0) == 7.0

    def test_intersection(self):
        a = Line(1.0, 0.0)
        b = Line(-1.0, 10.0)
        assert a.intersection_v(b) == pytest.approx(5.0)

    def test_parallel_lines_no_intersection(self):
        assert Line(1.0, 0.0).intersection_v(Line(1.0, 5.0)) is None


class TestRegionShape:
    def test_time_slice_region_is_parallelogram(self):
        """For a time-slice query both boundary pairs coincide, so L2/U2
        vanish (Figure 4)."""
        region = region_for(TimeSliceQuery((10.0,), (20.0,), 30.0))
        corners = region.corner_points(2 * VMAX)
        assert corners["L2"] is None
        assert corners["U2"] is None
        # Parallel boundaries separated by the query's spatial extent.
        assert (corners["U1"][1] - corners["L1"][1]) == pytest.approx(10.0)
        assert (corners["U3"][1] - corners["L3"][1]) == pytest.approx(10.0)

    def test_boundaries_slope_down_for_future_queries(self):
        region = region_for(WindowQuery((10.0,), (20.0,), 30.0, 50.0))
        assert region.lower_at(0.0) > region.lower_at(2 * VMAX)
        assert region.upper_at(0.0) > region.upper_at(2 * VMAX)

    def test_window_region_breakpoints(self):
        """A window query with distinct endpoint times has two distinct
        lower (and upper) lines whose min/max form the L2/U2 kinks of
        Figures 5-6."""
        region = region_for(WindowQuery((10.0,), (20.0,), 10.0, 50.0))
        corners = region.corner_points(2 * VMAX)
        # The breakpoint of the two lower lines is at V = vmax: the two
        # constraints are equal exactly for a zero-native-velocity object.
        assert corners["L2"] is not None
        assert corners["L2"][0] == pytest.approx(VMAX)
        assert corners["U2"][0] == pytest.approx(VMAX)

    def test_lower_is_min_upper_is_max(self):
        region = region_for(WindowQuery((10.0,), (20.0,), 10.0, 50.0))
        for v in (0.0, 1.5, 3.0, 4.5, 6.0):
            lines_low = [line.at(v) for line in region.lower_lines]
            lines_up = [line.at(v) for line in region.upper_lines]
            assert region.lower_at(v) == min(lines_low)
            assert region.upper_at(v) == max(lines_up)


def queries_1d(draw_bounds=st.floats(min_value=0.0, max_value=PMAX)):
    """Random 1-d time-slice/window/moving queries with sane bounds."""
    def build(kind, lo1, width1, lo2, width2, t1, dt):
        hi1 = lo1 + width1
        if kind == "ts":
            return TimeSliceQuery((lo1,), (hi1,), t1)
        if kind == "win":
            return WindowQuery((lo1,), (hi1,), t1, t1 + dt)
        if t1 + dt == t1:  # a degenerate moving query must be a time slice
            return TimeSliceQuery((lo1,), (hi1,), t1)
        return MovingQuery((lo1,), (hi1,), (lo2,), (lo2 + width2,),
                           t1, t1 + dt)
    return st.builds(
        build,
        kind=st.sampled_from(["ts", "win", "mov"]),
        lo1=draw_bounds, width1=st.floats(min_value=0.0, max_value=30.0),
        lo2=draw_bounds, width2=st.floats(min_value=0.0, max_value=30.0),
        t1=st.floats(min_value=0.0, max_value=100.0),
        # Durations are either exactly zero or macroscopic.  A tiny nonzero
        # duration (e.g. a denormal) makes the query-edge slopes
        # (width / duration) overflow to inf, turning the oracle's edge
        # intercepts into NaN -- such queries are physically meaningless
        # and the ``t1 + dt == t1`` degeneracy guard above cannot catch
        # them when t1 is 0.
        dt=st.one_of(st.just(0.0),
                     st.floats(min_value=1e-6, max_value=50.0)))


def objects_1d():
    return st.builds(
        MovingObjectState,
        oid=st.just(0),
        pos=st.tuples(st.floats(min_value=0.0, max_value=PMAX)),
        vel=st.tuples(st.floats(min_value=-VMAX, max_value=VMAX)),
        t=st.floats(min_value=0.0, max_value=LIFETIME))


class TestRegionMembershipExactness:
    @settings(max_examples=400, deadline=None)
    @given(query=queries_1d(), obj=objects_1d())
    def test_membership_equals_exact_1d_predicate(self, query, obj):
        """In one dimension the per-plane region is the whole story, so
        membership must equal the exact native-space predicate (up to
        boundary rounding)."""
        dual = SPACE_1D.to_dual(obj)
        region = region_for(query)
        in_region = region.contains_point(dual.v[0], dual.p[0])
        exact = matches(obj, query)
        if in_region != exact:
            # Disagreement is only legitimate within float rounding of the
            # region boundary.
            margin = min(abs(dual.p[0] - region.lower_at(dual.v[0])),
                         abs(dual.p[0] - region.upper_at(dual.v[0])))
            scale = 1.0 + abs(dual.p[0])
            assert margin <= 1e-7 * scale, (
                f"region membership {in_region} != exact {exact} with "
                f"margin {margin}")


class TestClassifyRect:
    @settings(max_examples=300, deadline=None)
    @given(query=queries_1d(),
           v1=st.floats(min_value=0.0, max_value=2 * VMAX),
           dv=st.floats(min_value=0.01, max_value=2 * VMAX),
           p1=st.floats(min_value=0.0, max_value=PMAX + 2 * VMAX * LIFETIME),
           dp=st.floats(min_value=0.01, max_value=200.0))
    def test_classification_consistent_with_sampling(self, query, v1, dv,
                                                     p1, dp):
        """INSIDE rects contain only member points; DISJUNCT rects contain
        none (verified on a sample grid including corners)."""
        region = region_for(query)
        v2, p2 = v1 + dv, p1 + dp
        rel = region.classify_rect(v1, v2, p1, p2)
        samples = [(v, p)
                   for v in (v1, (v1 + v2) / 2, v2)
                   for p in (p1, (p1 + p2) / 2, p2)]
        memberships = [region.contains_point(v, p) for v, p in samples]
        if rel is RelPos.INSIDE:
            assert all(memberships)
        elif rel is RelPos.DISJUNCT:
            assert not any(memberships)

    def test_known_inside(self):
        region = region_for(TimeSliceQuery((0.0,), (100.0,), 0.0))
        # At t == t_ref the region is a horizontal band of height 100
        # starting at vmax*L; a small rect in the middle is inside.
        mid = VMAX * LIFETIME + 50.0
        assert region.classify_rect(1.0, 2.0, mid, mid + 1.0) \
            is RelPos.INSIDE

    def test_known_disjunct(self):
        region = region_for(TimeSliceQuery((0.0,), (1.0,), 0.0))
        assert region.classify_rect(0.0, 6.0, 0.0, 1.0) is RelPos.DISJUNCT

    def test_overlap_straddling_boundary(self):
        region = region_for(TimeSliceQuery((0.0,), (100.0,), 0.0))
        low = VMAX * LIFETIME
        assert region.classify_rect(0.0, 6.0, low - 10.0, low + 10.0) \
            is RelPos.OVERLAP


class TestBuildQueryRegions:
    def test_one_region_per_plane(self):
        query = TimeSliceQuery((0.0, 0.0), (10.0, 10.0), 5.0).as_moving()
        regions = build_query_regions(query, (3.0, 3.0), 60.0, 0.0)
        assert len(regions) == 2

    def test_planes_differ_when_bounds_differ(self):
        query = TimeSliceQuery((0.0, 50.0), (10.0, 60.0), 5.0).as_moving()
        regions = build_query_regions(query, (3.0, 3.0), 60.0, 0.0)
        assert regions[0].lower_at(0.0) != regions[1].lower_at(0.0)
