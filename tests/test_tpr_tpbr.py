"""Unit and property tests for time-parameterized bounding rectangles."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.types import MovingQuery, TimeSliceQuery, WindowQuery
from repro.tpr.tpbr import TPBR

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
small = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


def tpbr_strategy(d=2):
    def build(t0, lower, extents, vlower, vextents):
        upper = tuple(l + e for l, e in zip(lower, extents))
        vupper = tuple(v + e for v, e in zip(vlower, vextents))
        return TPBR(t0, lower, upper, vlower, vupper)
    return st.builds(
        build,
        t0=st.floats(min_value=0.0, max_value=100.0),
        lower=st.tuples(*[coords] * d),
        extents=st.tuples(*[small] * d),
        vlower=st.tuples(*[st.floats(min_value=-10, max_value=10)] * d),
        vextents=st.tuples(*[st.floats(min_value=0, max_value=5)] * d))


def trajectory_strategy(d=2):
    return st.tuples(st.tuples(*[coords] * d),
                     st.tuples(*[st.floats(min_value=-10, max_value=10)] * d))


class TestConstruction:
    def test_from_point_is_degenerate(self):
        box = TPBR.from_point((1.0, 2.0), (0.5, -0.5), t0=10.0)
        assert box.lower == box.upper == (6.0, -3.0)  # p0 + v*t0
        assert box.vlower == box.vupper == (0.5, -0.5)
        box.validate()

    def test_validate_catches_inversion(self):
        box = TPBR(0.0, (1.0,), (0.0,), (0.0,), (0.0,))
        with pytest.raises(ValueError, match="exceeds"):
            box.validate()

    def test_union_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            TPBR.union_of([], 0.0)

    def test_equality_and_hash(self):
        a = TPBR(0.0, (1.0,), (2.0,), (0.0,), (1.0,))
        b = TPBR(0.0, (1.0,), (2.0,), (0.0,), (1.0,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != TPBR(1.0, (1.0,), (2.0,), (0.0,), (1.0,))


class TestConservativeness:
    @settings(max_examples=200, deadline=None)
    @given(trajectories=st.lists(trajectory_strategy(), min_size=1,
                                 max_size=8),
           t0=st.floats(min_value=0, max_value=50),
           dt=st.floats(min_value=0, max_value=100))
    def test_union_bounds_members_forever(self, trajectories, t0, dt):
        """The union of point-TPBRs contains every member trajectory at
        every time >= t0."""
        boxes = [TPBR.from_point(p0, vel, t0) for p0, vel in trajectories]
        union = TPBR.union_of(boxes, t0)
        union.validate()
        when = t0 + dt
        lo, hi = union.bounds_at(when)
        for p0, vel in trajectories:
            for i in range(2):
                at = p0[i] + vel[i] * when
                slack = 1e-6 * (1 + abs(at))
                assert lo[i] - slack <= at <= hi[i] + slack

    @settings(max_examples=100, deadline=None)
    @given(box=tpbr_strategy(), dt=st.floats(min_value=0, max_value=50),
           probe=st.floats(min_value=0, max_value=50))
    def test_rebase_preserves_bounds(self, box, dt, probe):
        rebased = box.rebased(box.t0 + dt)
        when = box.t0 + dt + probe
        lo1, hi1 = box.bounds_at(when)
        lo2, hi2 = rebased.bounds_at(when)
        for a, b in zip(lo1 + hi1, lo2 + hi2):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(box=tpbr_strategy(), dt=st.floats(min_value=0, max_value=50))
    def test_extents_never_shrink(self, box, dt):
        lo1, hi1 = box.bounds_at(box.t0)
        lo2, hi2 = box.bounds_at(box.t0 + dt)
        for i in range(box.d):
            assert (hi2[i] - lo2[i]) >= (hi1[i] - lo1[i]) - 1e-9


class TestContainsTrajectory:
    def test_member_contained(self):
        box = TPBR.from_point((5.0, 5.0), (1.0, -1.0), 3.0)
        assert box.contains_trajectory((5.0, 5.0), (1.0, -1.0))

    def test_outsider_rejected(self):
        box = TPBR.from_point((5.0, 5.0), (1.0, -1.0), 3.0)
        assert not box.contains_trajectory((50.0, 5.0), (1.0, -1.0))
        assert not box.contains_trajectory((5.0, 5.0), (2.0, -1.0))

    @settings(max_examples=100, deadline=None)
    @given(trajectories=st.lists(trajectory_strategy(), min_size=1,
                                 max_size=6),
           t0=st.floats(min_value=0, max_value=50))
    def test_all_members_contained_after_union(self, trajectories, t0):
        boxes = [TPBR.from_point(p0, vel, t0) for p0, vel in trajectories]
        union = TPBR.union_of(boxes, t0)
        for p0, vel in trajectories:
            assert union.contains_trajectory(p0, vel)


class TestIntegratedMetrics:
    def test_static_box_area_integral(self):
        box = TPBR(0.0, (0.0, 0.0), (2.0, 3.0), (0.0, 0.0), (0.0, 0.0))
        assert box.area_integral(0.0, 10.0) == pytest.approx(60.0)

    def test_growing_box_area_integral(self):
        # Extent (t) = t in one dimension, 1 in the other: integral of t
        # over [0, 2] = 2.
        box = TPBR(0.0, (0.0, 0.0), (0.0, 1.0), (0.0, 0.0), (1.0, 0.0))
        assert box.area_integral(0.0, 2.0) == pytest.approx(2.0)

    def test_area_integral_matches_numeric(self):
        box = TPBR(1.0, (0.0, 5.0), (4.0, 9.0), (-1.0, 0.5), (1.0, 2.0))
        start, horizon = 2.0, 7.0
        steps = 20000
        h = horizon / steps
        numeric = sum(box.area_at(start + (k + 0.5) * h) * h
                      for k in range(steps))
        assert box.area_integral(start, horizon) == pytest.approx(
            numeric, rel=1e-6)

    def test_margin_integral_matches_numeric(self):
        box = TPBR(1.0, (0.0, 5.0), (4.0, 9.0), (-1.0, 0.5), (1.0, 2.0))
        start, horizon = 2.0, 7.0
        steps = 20000
        h = horizon / steps
        numeric = sum(box.margin_at(start + (k + 0.5) * h) * h
                      for k in range(steps))
        assert box.margin_integral(start, horizon) == pytest.approx(
            numeric, rel=1e-6)

    def test_generic_dimension_area_integral(self):
        # 3-d box exercises the generic convolution path.
        box = TPBR(0.0, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0),
                   (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        # extent_i(t) = 1 + t; integral of (1+t)^3 over [0,1] = (2^4-1)/4.
        assert box.area_integral(0.0, 1.0) == pytest.approx(15.0 / 4.0)

    def test_overlap_of_disjoint_boxes_is_zero(self):
        a = TPBR(0.0, (0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0))
        b = TPBR(0.0, (5.0, 5.0), (6.0, 6.0), (0.0, 0.0), (0.0, 0.0))
        assert a.overlap_integral(b, 0.0, 10.0) == 0.0

    def test_overlap_of_identical_boxes_is_area(self):
        a = TPBR(0.0, (0.0, 0.0), (2.0, 2.0), (0.0, 0.0), (0.0, 0.0))
        assert a.overlap_integral(a, 0.0, 5.0) == pytest.approx(
            a.area_integral(0.0, 5.0))

    def test_overlap_symmetry(self):
        a = TPBR(0.0, (0.0, 0.0), (3.0, 3.0), (0.0, 0.0), (1.0, 0.0))
        b = TPBR(0.0, (1.0, 1.0), (4.0, 4.0), (-1.0, 0.0), (0.0, 1.0))
        assert a.overlap_integral(b, 0.0, 5.0) == pytest.approx(
            b.overlap_integral(a, 0.0, 5.0))


class TestQueryIntersection:
    def test_static_hit(self):
        box = TPBR(0.0, (0.0, 0.0), (10.0, 10.0), (0.0, 0.0), (0.0, 0.0))
        query = TimeSliceQuery((5.0, 5.0), (6.0, 6.0), 3.0).as_moving()
        assert box.intersects_query(query)

    def test_static_miss(self):
        box = TPBR(0.0, (0.0, 0.0), (10.0, 10.0), (0.0, 0.0), (0.0, 0.0))
        query = TimeSliceQuery((50.0, 50.0), (60.0, 60.0), 3.0).as_moving()
        assert not box.intersects_query(query)

    def test_moving_box_reaches_query_later(self):
        box = TPBR(0.0, (0.0, 0.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0))
        query = WindowQuery((9.0, 9.0), (10.0, 10.0), 0.0, 10.0).as_moving()
        assert box.intersects_query(query)
        early = WindowQuery((9.0, 9.0), (10.0, 10.0), 0.0, 2.0).as_moving()
        assert not box.intersects_query(early)

    def test_no_common_instant_means_miss(self):
        # Box crosses x-range early, y-range late.
        box = TPBR(0.0, (0.0, 100.0), (1.0, 101.0),
                   (10.0, -10.0), (10.0, -10.0))
        query = WindowQuery((0.0, 0.0), (10.0, 10.0), 0.0, 10.0).as_moving()
        assert not box.intersects_query(query)

    @settings(max_examples=200, deadline=None)
    @given(trajectories=st.lists(trajectory_strategy(), min_size=1,
                                 max_size=5),
           t0=st.floats(min_value=0, max_value=20),
           data=st.data())
    def test_intersection_is_conservative(self, trajectories, t0, data):
        """If any member trajectory matches the query, the union box must
        intersect it (no false prunes)."""
        from repro.query.predicates import matches
        from repro.query.types import MovingObjectState
        boxes = [TPBR.from_point(p0, vel, t0) for p0, vel in trajectories]
        union = TPBR.union_of(boxes, t0)
        low = data.draw(st.tuples(coords, coords), label="low")
        side = data.draw(small, label="side")
        t1 = data.draw(st.floats(min_value=t0, max_value=t0 + 50),
                       label="t1")
        dt = data.draw(st.floats(min_value=0, max_value=30), label="dt")
        query = WindowQuery(low, (low[0] + side, low[1] + side),
                            t1, t1 + dt).as_moving()
        any_member_matches = any(
            matches(MovingObjectState(0, p0, vel, 0.0), query)
            for p0, vel in trajectories)
        if any_member_matches:
            assert union.intersects_query(query)
