"""Tests for the benchmark harness: runner measurement, experiment
plumbing, report formatting, and the CLI."""

import pytest

from repro.bench import experiments
from repro.bench.cli import main as cli_main
from repro.bench.experiments import ExperimentScale
from repro.bench.report import (
    format_table,
    render_batches,
    render_breakdown,
    render_cost_table,
    render_load,
)
from repro.bench.runner import (
    make_scan,
    make_stripes,
    make_tpr,
    make_tprstar,
    run_workload,
)
from repro.storage.stats import DiskModel
from repro.workload.generator import WorkloadSpec, generate_workload

TINY = ExperimentScale(scale=0.0004, seed=3)  # 200 objects, 200 ops


@pytest.fixture(scope="module")
def tiny_workload():
    spec = WorkloadSpec(n_objects=300, update_fraction=0.5,
                        n_operations=200, seed=1)
    return generate_workload(spec)


class TestRunner:
    def test_run_counts_operations(self, tiny_workload):
        setup = make_stripes(tiny_workload, pool_pages=32)
        result = run_workload(setup, tiny_workload, batch_size=50)
        assert result.ops == 200
        assert result.updates.count == tiny_workload.n_updates
        assert result.queries.count == tiny_workload.n_queries

    def test_load_measured_separately(self, tiny_workload):
        setup = make_stripes(tiny_workload, pool_pages=32)
        result = run_workload(setup, tiny_workload, n_ops=0)
        assert result.load.count == 1
        assert result.load.cpu_seconds > 0
        assert result.ops == 0

    def test_batches_cover_all_ops(self, tiny_workload):
        setup = make_stripes(tiny_workload, pool_pages=32)
        result = run_workload(setup, tiny_workload, batch_size=60)
        assert sum(b.ops for b in result.batches) == 200
        assert len(result.batches) == 4  # 60+60+60+20

    def test_on_batch_callback(self, tiny_workload):
        seen = []
        setup = make_stripes(tiny_workload, pool_pages=32)
        run_workload(setup, tiny_workload, batch_size=100,
                     on_batch=lambda b: seen.append(b.ops))
        assert seen == [100, 100]

    def test_all_factories_produce_working_indexes(self, tiny_workload):
        for factory in (make_stripes, make_tpr, make_tprstar):
            setup = factory(tiny_workload, pool_pages=64)
            result = run_workload(setup, tiny_workload, n_ops=50)
            assert result.ops == 50
            assert result.pages_used > 0

    def test_scan_baseline_runs_without_pool(self, tiny_workload):
        setup = make_scan(tiny_workload)
        result = run_workload(setup, tiny_workload, n_ops=50)
        assert result.ops == 50
        assert result.total_physical_io() == 0

    def test_same_workload_same_results(self, tiny_workload):
        hits = []
        for _ in range(2):
            setup = make_stripes(tiny_workload, pool_pages=32)
            result = run_workload(setup, tiny_workload)
            hits.append(result.query_hits)
        assert hits[0] == hits[1]

    def test_indexes_agree_on_query_hits(self, tiny_workload):
        """All three real indexes and the scan oracle must return the same
        total number of query hits over the same workload."""
        totals = {}
        for name, factory in (("stripes", make_stripes),
                              ("tpr", make_tpr),
                              ("tprstar", make_tprstar),
                              ("scan", make_scan)):
            if factory is make_scan:
                setup = factory(tiny_workload)
            else:
                setup = factory(tiny_workload, pool_pages=64)
            totals[name] = run_workload(setup, tiny_workload).query_hits
        # TPR trees never expire entries; the stripes/scan pair and the
        # tpr/tprstar pair must agree exactly.
        assert totals["stripes"] == totals["scan"]
        assert totals["tpr"] == totals["tprstar"]


class TestExperimentScale:
    def test_paper_scale_identity(self):
        full = ExperimentScale(scale=1.0)
        assert full.n_objects(500_000) == 500_000
        assert full.pool_pages == 2048
        assert full.n_ops == 50_000
        assert full.batch_size == 5_000

    def test_scaled_down(self):
        one_percent = ExperimentScale(scale=0.01)
        assert one_percent.n_objects(500_000) == 5_000
        assert one_percent.pool_pages == 20

    def test_minimums_enforced(self):
        tiny = ExperimentScale(scale=1e-6)
        assert tiny.n_objects(500_000) >= 500
        assert tiny.pool_pages >= 16
        assert tiny.n_ops >= 200

    def test_paper_side(self):
        assert ExperimentScale.paper_side(100_000) == pytest.approx(1000.0)
        assert ExperimentScale.paper_side(500_000) == pytest.approx(
            2236.0679, rel=1e-6)

    def test_workload_uses_paper_geometry(self):
        workload = TINY.workload(500_000, update_fraction=0.5)
        assert workload.pmax[0] == pytest.approx(2236.0679, rel=1e-6)
        assert len(workload.initial) == TINY.n_objects(500_000)


class TestExperiments:
    def test_workload_mix_runs_shape(self):
        runs = experiments.workload_mix_runs(TINY, mixes=(0.5,),
                                             indexes=("STRIPES",))
        assert set(runs) == {"50-50"}
        assert set(runs["50-50"]) == {"STRIPES"}
        assert runs["50-50"]["STRIPES"].ops == TINY.n_ops

    def test_scaling_covers_both_sizes(self):
        runs = experiments.scaling(TINY, paper_ns=(100_000,),
                                   indexes=("STRIPES",))
        assert set(runs) == {100_000}

    def test_skew_uses_network_workloads(self):
        runs = experiments.skew(TINY, nds=(5,), indexes=("STRIPES",))
        assert set(runs) == {5}

    def test_structure_stats(self):
        stats = experiments.structure_stats(TINY, paper_n=500_000)
        assert stats.stripes_pages > 0
        assert stats.tprstar_pages > 0
        assert stats.stripes_height >= 1
        assert stats.size_ratio > 1.0  # STRIPES is the larger index
        assert 0.0 < stats.stripes_leaf_occupancy <= 1.0

    def test_leaf_size_ablation_configs(self):
        results = experiments.leaf_size_ablation(TINY)
        assert set(results) == {"two-sizes", "single-size", "ladder-4"}

    def test_pruning_ablation_same_ios(self):
        results = experiments.pruning_ablation(TINY)
        pruned = results["pruned"]
        unpruned = results["unpruned"]
        assert pruned.query_hits == unpruned.query_hits
        assert pruned.queries.physical_io == unpruned.queries.physical_io

    def test_choosepath_ablation(self):
        results = experiments.choosepath_ablation(TINY)
        assert set(results) == {"TPR*", "TPR"}


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_renderers_produce_text(self):
        runs = experiments.workload_mix_runs(TINY, mixes=(0.5,),
                                             indexes=("STRIPES",))
        results = runs["50-50"]
        disk = DiskModel()
        assert "STRIPES" in render_cost_table("t", results, disk)
        assert "physical IO" in render_breakdown("t", results, disk)
        assert "batch" in render_batches("t", results, disk)
        assert "pages" in render_load("t", results, disk)


class TestCLI:
    def test_fig11_runs(self, capsys):
        assert cli_main(["fig11", "--scale", "0.0004"]) == 0
        out = capsys.readouterr().out
        assert "STRIPES" in out
        assert "TPR*" in out

    def test_structure_runs(self, capsys):
        assert cli_main(["structure", "--scale", "0.0004"]) == 0
        out = capsys.readouterr().out
        assert "size ratio" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])
