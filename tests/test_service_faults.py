"""Service-layer fault tolerance: transient-IO retries with backoff,
shard shedding after retry exhaustion, write retries, and the resilience
metrics -- with no worker thread ever dying."""

import random

import pytest

from repro.core.stripes import StripesConfig
from repro.obs import MetricsRegistry
from repro.query.types import MovingObjectState, TimeSliceQuery
from repro.service.service import ServiceConfig, StripesService
from repro.service.sharding import (HashShardPolicy, ShardedStripes,
                                    ShardTransientError)
from repro.storage.faults import FaultyPageFile, TransientIOError
from repro.storage.pagefile import InMemoryPageFile

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0), lifetime=30.0)

PROBE = TimeSliceQuery((0.0, 0.0), (100.0, 100.0), 20.0)

#: Fast-retry service config so tests never sleep meaningfully.
FAST = ServiceConfig(workers=2, io_max_retries=3, io_backoff_s=0.0001,
                     io_backoff_cap_s=0.001)


def _states(n, rng, t_high=29.0):
    return [
        MovingObjectState(
            oid, (rng.uniform(0, 100), rng.uniform(0, 100)),
            (rng.uniform(-3, 3), rng.uniform(-3, 3)),
            rng.uniform(0, t_high))
        for oid in range(n)
    ]


def _sharded_with_faults(n_shards=2, scan_threshold=0, pool_pages=32):
    """A sharded index whose every shard sits on a FaultyPageFile;
    returns (sharded, faulties)."""
    faulties = {}

    def factory(sid):
        faulties[sid] = FaultyPageFile(InMemoryPageFile())
        return faulties[sid]

    sharded = ShardedStripes(CONFIG, n_shards=n_shards,
                             scan_threshold=scan_threshold,
                             pool_pages=pool_pages,
                             pagefile_factory=factory)
    return sharded, faulties


def _patch_flaky_queries(shard, failures):
    """Make a shard's tree path raise TransientIOError ``failures``
    times, then behave."""
    real = shard.index.query_batch
    state = {"left": failures}

    def flaky(queries, refine=True):
        if state["left"] > 0:
            state["left"] -= 1
            raise TransientIOError("injected shard flake")
        return real(queries, refine=refine)

    shard.index.query_batch = flaky
    return state


class TestQueryRetries:
    def test_transient_errors_retried_to_success(self):
        rng = random.Random(1)
        sharded, _ = _sharded_with_faults()
        for state in _states(200, rng):
            sharded.insert(state)
        expected = sorted(sharded.query(PROBE))

        _patch_flaky_queries(sharded.shards[0], failures=2)
        registry = MetricsRegistry()
        with StripesService(sharded, FAST, registry=registry) as service:
            assert sorted(service.query(PROBE)) == expected
            # Workers survived the faults and keep serving.
            assert sorted(service.query(PROBE)) == expected
        assert registry.counter("service_io_retries_total").value >= 2
        assert registry.counter("service_shards_shed_total").value == 0
        assert sharded.degraded_shards() == frozenset()

    def test_shard_transient_error_carries_shard_id(self):
        rng = random.Random(7)
        sharded, _ = _sharded_with_faults()
        for state in _states(100, rng):
            sharded.insert(state)
        _patch_flaky_queries(sharded.shards[1], failures=1)
        with pytest.raises(ShardTransientError) as excinfo:
            sharded.query_batch([PROBE])
        assert excinfo.value.sid == 1
        assert isinstance(excinfo.value.cause, TransientIOError)


class TestShardShedding:
    def test_persistently_failing_shard_is_shed(self):
        rng = random.Random(2)
        sharded, _ = _sharded_with_faults()
        for state in _states(300, rng):
            sharded.insert(state)
        policy = HashShardPolicy()
        full = sorted(sharded.query(PROBE))

        # Shard 0 fails forever: after the retry budget the service must
        # shed it and answer from shard 1 alone -- partial, not an error.
        _patch_flaky_queries(sharded.shards[0], failures=10 ** 9)
        registry = MetricsRegistry()
        with StripesService(sharded, FAST, registry=registry) as service:
            partial = sorted(service.query(PROBE))
            assert sharded.degraded_shards() == frozenset({0})
            # Exactly the healthy shard's ids: a strict subset of full.
            assert set(partial) < set(full)
            assert all(policy.shard_of(
                MovingObjectState(oid, (0, 0), (0, 0), 0), 2) == 1
                for oid in partial)
            # Later queries skip the dead shard without new retries.
            retries_after_shed = registry.counter(
                "service_io_retries_total").value
            assert sorted(service.query(PROBE)) == partial
            assert registry.counter(
                "service_io_retries_total").value == retries_after_shed
            registry.collect()
            assert registry.gauge("service_shard_degraded").value == 1
            assert registry.gauge(
                "service_sharded_degraded_shards").value == 1
        assert registry.counter("service_shards_shed_total").value == 1
        assert registry.counter("service_io_retries_total").value == \
            FAST.io_max_retries

    def test_restore_shard_rejoins_fanout(self):
        rng = random.Random(3)
        sharded, _ = _sharded_with_faults()
        for state in _states(100, rng):
            sharded.insert(state)
        full = sorted(sharded.query(PROBE))
        sharded.mark_degraded(0)
        assert set(sharded.query(PROBE)) <= set(full)
        sharded.restore_shard(0)
        assert sorted(sharded.query(PROBE)) == full

    def test_mark_degraded_validates_sid(self):
        sharded, _ = _sharded_with_faults()
        with pytest.raises(ValueError):
            sharded.mark_degraded(99)


class TestWriteRetries:
    def test_insert_retries_transient_write_faults(self):
        """Load enough data through a tiny pool that evictions write to
        the page file mid-insert; a transiently failing write must be
        retried rather than surfacing to the caller."""
        rng = random.Random(4)
        sharded, faulties = _sharded_with_faults(pool_pages=16)
        states = _states(2400, rng)
        registry = MetricsRegistry()
        with StripesService(sharded, FAST, registry=registry) as service:
            for state in states[:1200]:
                service.insert(state)
            # Both shards' pools are warm; fail their next write-backs.
            for faulty in faulties.values():
                faulty.fail_next_writes(1)
            for state in states[1200:]:
                service.insert(state)
            assert registry.counter(
                "service_io_retries_total").value >= 2, \
                "no eviction write-back hit the armed faults"
            # The service still answers queries after the faults.
            assert len(service.query(PROBE)) > 0
        assert sharded.degraded_shards() == frozenset()

    def test_write_retry_budget_exhaustion_raises(self):
        rng = random.Random(5)
        sharded, faulties = _sharded_with_faults(n_shards=1, pool_pages=16)
        cfg = ServiceConfig(workers=1, io_max_retries=2,
                            io_backoff_s=0.0001, io_backoff_cap_s=0.001)
        with StripesService(sharded, cfg) as service:
            for state in _states(1200, rng):
                service.insert(state)
            # More failures than the whole retry budget: propagate.
            faulties[0].fail_next_writes(50)
            with pytest.raises(TransientIOError):
                for state in _states(1200, rng):
                    service.insert(state)
            faulties[0].clear_faults()
            # The worker pool is still alive and serving.
            assert isinstance(service.query(PROBE), list)


class TestRealStorageReadFaults:
    def test_query_survives_pagefile_read_fault(self):
        """A real read fault from the storage layer (not a patched
        method): the per-shard pool is smaller than the working set, so
        tree descents fault pages in; the armed read failure propagates
        as ShardTransientError and the service retries it away."""
        rng = random.Random(6)
        sharded, faulties = _sharded_with_faults(n_shards=2, pool_pages=16)
        for state in _states(2400, rng):
            sharded.insert(state)
        expected = sorted(sharded.query(PROBE))
        reads_before = {sid: f.reads for sid, f in faulties.items()}

        for faulty in faulties.values():
            faulty.fail_next_reads(1)
        registry = MetricsRegistry()
        with StripesService(sharded, FAST, registry=registry) as service:
            assert sorted(service.query(PROBE)) == expected
        assert any(f.reads > reads_before[sid]
                   for sid, f in faulties.items()), \
            "queries never touched the page file; shrink the pool"
        assert registry.counter("service_io_retries_total").value >= 1
        assert sharded.degraded_shards() == frozenset()
