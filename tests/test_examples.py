"""Smoke tests that the shipped examples actually run.

Only the fast examples are exercised (the fleet/air-traffic simulations
take tens of seconds and are validated by their own CI-style runs); the
goal here is to catch API drift that would break the documentation.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "time-slice @t=60: [1]" in out
        assert "live entries:" in out

    def test_examples_exist_and_are_documented(self):
        expected = {"quickstart.py", "fleet_monitoring.py",
                    "air_traffic_sectors.py", "reproduce_paper.py",
                    "ride_matching.py"}
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= present
        readme = (EXAMPLES.parent / "README.md").read_text()
        for name in ("quickstart.py", "fleet_monitoring.py",
                     "air_traffic_sectors.py", "reproduce_paper.py"):
            assert name in readme, f"{name} missing from README"
