"""Crash-recovery property tests: the crash matrix, the
evict-then-crash durability regression, and the checkpoint protocol's
fsync/validation contracts."""

import os
import random
import struct

import pytest

from repro.bench.crashmatrix import build_workload, run_crash_matrix
from repro.core.persistence import load_index, save_index
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import (MovingObjectState, TimeSliceQuery,
                               WindowQuery)
from repro.storage.buffer_pool import BufferPool
from repro.storage.faults import FaultyPageFile
from repro.storage.journal import (UndoJournal, read_undo_journal, recover,
                                   write_journal)
from repro.storage.page import PAGE_SIZE
from repro.storage.pagefile import InMemoryPageFile

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(100.0, 100.0), lifetime=30.0)

PROBES = (
    TimeSliceQuery((0.0, 0.0), (100.0, 100.0), 40.0),
    TimeSliceQuery((20.0, 20.0), (70.0, 80.0), 45.0),
    WindowQuery((10.0, 40.0), (55.0, 90.0), 35.0, 50.0),
)


def _states(n, rng, t_low=0.0, t_high=29.0):
    return [
        MovingObjectState(
            oid, (rng.uniform(0, 100), rng.uniform(0, 100)),
            (rng.uniform(-3, 3), rng.uniform(-3, 3)),
            rng.uniform(t_low, t_high))
        for oid in range(n)
    ]


def _answers(index):
    return [sorted(index.query(q)) for q in PROBES]


class TestCrashMatrix:
    """The full harness at reduced scale: every sampled kill must
    recover to a checkpoint that passes ``check()`` and answers exactly
    like the never-crashed scan replica."""

    def _run(self, survival):
        return run_crash_matrix(
            seed=11, n_initial=200, n_ops=150, n_checkpoints=3,
            pool_pages=10, write_stride=15, failpoint_stride=3,
            torn_samples=2, transient_samples=2, read_samples=1,
            survival=survival)

    @pytest.mark.parametrize("survival", ["none", "all"])
    def test_matrix_passes(self, survival):
        report = self._run(survival)
        assert report.total_writes > 0
        # The workload must actually cross the interesting failpoints.
        assert report.failpoint_hits.get("checkpoint.sidecar_committed")
        assert report.failpoint_hits.get("journal.partial")
        assert report.failpoint_hits.get("undo.recorded"), \
            "no eviction was undo-shadowed: the matrix is not exercising " \
            "the between-checkpoint eviction path"
        assert any(s.crashed for s in report.scenarios)
        assert report.ok, "\n".join(report.summary_lines())

    def test_report_shape(self):
        report = self._run("mix")
        assert report.ok, "\n".join(report.summary_lines())
        data = report.to_dict()
        assert data["passed"] == len(report.scenarios)
        assert data["scenarios"][0]["name"] == "control"

    def test_workload_is_deterministic(self):
        a = build_workload(3, n_initial=50, n_ops=40, n_checkpoints=2)
        b = build_workload(3, n_initial=50, n_ops=40, n_checkpoints=2)
        assert a.ops == b.ops
        assert a.checkpoint_positions == b.checkpoint_positions


class TestEvictThenCrashRegression:
    """The durability bug this PR fixes: after a checkpoint, an evicted
    dirty page overwrites its committed on-disk image.  A crash before
    the *next* checkpoint must still reopen the committed checkpoint
    exactly -- which requires the eviction write-back to have shadowed
    the pre-image into the undo journal.  Without the undo guard (the
    pre-fix code) the reopened index mixes post-checkpoint pages into
    the checkpoint and this test fails."""

    def test_evicted_pages_roll_back_to_checkpoint(self, tmp_path):
        rng = random.Random(17)
        faulty = FaultyPageFile(InMemoryPageFile())
        pool = BufferPool(faulty, capacity=10)
        index = StripesIndex(CONFIG, pool)
        for state in _states(400, rng):
            index.insert(state)

        meta = tmp_path / "idx.meta"
        journal = tmp_path / "idx.journal"
        undo = tmp_path / "idx.journal.undo"
        save_index(index, meta, journal_path=journal, undo_path=undo)
        assert index.checkpoint_id == 1
        baseline = _answers(index)

        # Dirty lots of pages after the checkpoint; the tiny pool must
        # evict, overwriting committed page images on "disk".
        for oid, state in enumerate(_states(200, rng, 30.0, 55.0)):
            index.insert(MovingObjectState(1000 + oid, state.pos,
                                           state.vel, state.t))
        assert pool.stats.shadow_writes > 0, \
            "no eviction overwrote a committed page: the scenario is " \
            "not exercising the bug"

        # Crash (no further checkpoint).  survival="all" is the harsh
        # case: every eviction write-back IS on the platter.
        reopened = load_index(
            "<in-memory>", meta,
            pool=BufferPool(faulty.reopen_durable("all"), capacity=10),
            journal_path=journal, undo_path=undo)
        assert reopened.checkpoint_id == 1
        assert reopened.check() == []
        assert _answers(reopened) == baseline


class TestLoadIndexPoolValidation:
    """Satellite: a caller-supplied pool must be empty -- resident
    frames would shadow (or clobber) recovered pages."""

    def test_non_empty_pool_rejected(self, tmp_path):
        rng = random.Random(2)
        pagefile = InMemoryPageFile()
        pool = BufferPool(pagefile, capacity=32)
        index = StripesIndex(CONFIG, pool)
        for state in _states(50, rng):
            index.insert(state)
        meta = tmp_path / "idx.meta"
        save_index(index, meta)
        assert pool.num_frames > 0
        with pytest.raises(ValueError, match="empty pool"):
            load_index("<in-memory>", meta, pool=pool)

    def test_empty_pool_accepted(self, tmp_path):
        rng = random.Random(2)
        pagefile = InMemoryPageFile()
        index = StripesIndex(CONFIG, BufferPool(pagefile, capacity=32))
        for state in _states(50, rng):
            index.insert(state)
        meta = tmp_path / "idx.meta"
        save_index(index, meta)
        reopened = load_index("<in-memory>", meta,
                              pool=BufferPool(pagefile, capacity=32))
        assert len(reopened) == 50


class TestDirtyPageImages:
    """Satellite: the journal layer snapshots dirty pages through the
    public ``BufferPool.dirty_page_images`` instead of ``_frames``."""

    def test_reports_exactly_the_dirty_set(self):
        pool = BufferPool(InMemoryPageFile(), capacity=8)
        dirty = pool.new_page()
        dirty.write(0, b"dirty")
        pool.unpin(dirty)
        clean = pool.new_page()
        pool.unpin(clean)
        pool.flush_page(clean.page_id)
        images = pool.dirty_page_images()
        assert set(images) == {dirty.page_id}
        assert images[dirty.page_id][:5] == b"dirty"
        assert isinstance(images[dirty.page_id], bytes)

    def test_empty_after_flush_all(self):
        pool = BufferPool(InMemoryPageFile(), capacity=8)
        page = pool.new_page()
        page.write(0, b"x")
        pool.unpin(page)
        pool.flush_all()
        assert pool.dirty_page_images() == {}


class TestSidecarFsyncOrdering:
    """Satellite: the sidecar tmp file is fsynced BEFORE the rename and
    the directory AFTER it -- otherwise a crash can commit a zero-length
    sidecar, or un-commit the rename."""

    def test_fsync_before_replace_then_dir_fsync(self, tmp_path,
                                                 monkeypatch):
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1])
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1])

        index = StripesIndex(CONFIG,
                             BufferPool(InMemoryPageFile(), capacity=32))
        index.insert(MovingObjectState(0, (1.0, 1.0), (0.0, 0.0), 0.0))
        save_index(index, tmp_path / "idx.meta")

        assert "replace" in events
        at = events.index("replace")
        assert "fsync" in events[:at], \
            "sidecar tmp file was not fsynced before the rename"
        assert "fsync" in events[at + 1:], \
            "directory was not fsynced after the rename"


class TestRecoverDurability:
    """Satellite: journal recovery itself must be durable -- the
    replayed pages are fsynced before the journal is removed."""

    def test_recover_syncs_pagefile_before_dropping_journal(self,
                                                            tmp_path):
        faulty = FaultyPageFile(InMemoryPageFile())
        pid = faulty.allocate()
        faulty.write(pid, bytes(PAGE_SIZE))
        faulty.sync()
        journal = tmp_path / "j"
        write_journal(journal, {pid: b"\xAB" * PAGE_SIZE}, PAGE_SIZE)
        syncs_before = faulty.syncs
        assert recover(faulty, journal) == 1
        assert faulty.syncs > syncs_before, \
            "replayed pages were not fsynced; removing the journal " \
            "would strand them in the page cache"
        assert not journal.exists()
        # The replay survives a post-recovery crash (strict policy).
        assert faulty.durable_image("none")[pid] == b"\xAB" * PAGE_SIZE


class TestUndoJournalFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "u"
        undo = UndoJournal(path, PAGE_SIZE)
        assert undo.shadow(3, b"\x01" * PAGE_SIZE)
        assert undo.shadow(7, b"\x02" * PAGE_SIZE)
        assert not undo.shadow(3, b"\x03" * PAGE_SIZE)  # already shadowed
        undo.close()
        images = read_undo_journal(path, PAGE_SIZE)
        assert set(images) == {3, 7}
        assert images[3] == b"\x01" * PAGE_SIZE

    def test_torn_tail_tolerated(self, tmp_path):
        """A crash mid-append leaves a half-written last record; the
        reader must keep every complete record before it."""
        path = tmp_path / "u"
        undo = UndoJournal(path, PAGE_SIZE)
        undo.shadow(1, b"\x01" * PAGE_SIZE)
        undo.shadow(2, b"\x02" * PAGE_SIZE)
        undo.close()
        record = struct.calcsize("<QI") + PAGE_SIZE
        header = struct.calcsize("<8sI")
        raw = path.read_bytes()
        path.write_bytes(raw[: header + record + record // 3])
        images = read_undo_journal(path, PAGE_SIZE)
        assert set(images) == {1}
        assert images[1] == b"\x01" * PAGE_SIZE

    def test_first_image_wins(self, tmp_path):
        """Only the FIRST pre-image per page is the committed one."""
        path = tmp_path / "u"
        undo = UndoJournal(path, PAGE_SIZE)
        undo.shadow(5, b"\x0A" * PAGE_SIZE)
        undo.close()
        # Reopen (as after a partial checkpoint) and try to re-shadow.
        undo2 = UndoJournal(path, PAGE_SIZE)
        assert not undo2.shadow(5, b"\x0B" * PAGE_SIZE)
        undo2.close()
        assert read_undo_journal(path, PAGE_SIZE)[5] == b"\x0A" * PAGE_SIZE


class TestCheckersDetectCorruption:
    """The invariant checkers must actually fire on a corrupted file --
    otherwise the crash matrix's ``check() == []`` gate proves
    nothing."""

    def _checkpointed_index(self, tmp_path):
        rng = random.Random(9)
        pagefile = InMemoryPageFile()
        index = StripesIndex(CONFIG, BufferPool(pagefile, capacity=64))
        for state in _states(200, rng):
            index.insert(state)
        meta = tmp_path / "idx.meta"
        journal = tmp_path / "idx.journal"
        save_index(index, meta, journal_path=journal)
        return pagefile, meta, journal

    def test_clean_index_checks_clean(self, tmp_path):
        pagefile, meta, journal = self._checkpointed_index(tmp_path)
        reopened = load_index("<in-memory>", meta,
                              pool=BufferPool(pagefile, capacity=64),
                              journal_path=journal)
        assert reopened.check() == []

    def test_corrupt_bitmap_detected(self, tmp_path):
        pagefile, meta, journal = self._checkpointed_index(tmp_path)
        import json
        with open(meta) as fh:
            record_pages = [row[0] for row in json.load(fh)["pages"]]
        victim = record_pages[0]
        img = bytearray(pagefile.read(victim))
        img[4] ^= 0xFF  # flip 8 occupancy bits in the slot bitmap
        pagefile.write(victim, bytes(img))
        reopened = load_index("<in-memory>", meta,
                              pool=BufferPool(pagefile, capacity=64),
                              journal_path=journal)
        problems = reopened.check()
        assert problems, "checkers missed a corrupted slot bitmap"


class TestCheckpointIdAdvances:
    def test_checkpoint_ids_increment_and_reload(self, tmp_path):
        rng = random.Random(4)
        pagefile = InMemoryPageFile()
        index = StripesIndex(CONFIG, BufferPool(pagefile, capacity=32))
        meta = tmp_path / "idx.meta"
        journal = tmp_path / "idx.journal"
        for round_no in range(1, 4):
            for state in _states(30, rng):
                index.update(None, MovingObjectState(
                    state.oid, state.pos, state.vel, state.t))
            save_index(index, meta, journal_path=journal)
            assert index.checkpoint_id == round_no
        reopened = load_index("<in-memory>", meta,
                              pool=BufferPool(pagefile, capacity=32),
                              journal_path=journal)
        assert reopened.checkpoint_id == 3
