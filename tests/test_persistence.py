"""Checkpoint/reopen tests: a saved on-disk index must answer identically
after being reloaded in a fresh process-like context."""

import random

import pytest

from repro.baselines.scan import ScanIndex
from repro.core.persistence import save_index, load_index
from repro.core.quadtree import QuadTreeConfig
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.types import MovingObjectState, TimeSliceQuery, WindowQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import OnDiskPageFile

CONFIG = StripesConfig(vmax=(3.0, 3.0), pmax=(200.0, 200.0), lifetime=30.0)


def random_state(rng, oid, t):
    return MovingObjectState(
        oid,
        (rng.uniform(0, 200.0), rng.uniform(0, 200.0)),
        (rng.uniform(-3, 3), rng.uniform(-3, 3)),
        t)


def build_on_disk(tmp_path, seed=1, n=600, config=CONFIG):
    rng = random.Random(seed)
    path = tmp_path / "index.stripes"
    pagefile = OnDiskPageFile(path)
    pool = BufferPool(pagefile, capacity=128)
    index = StripesIndex(config, pool)
    oracle = ScanIndex(config.lifetime)
    live = {}
    for oid in range(n):
        state = random_state(rng, oid, rng.uniform(0, 29))
        index.insert(state)
        oracle.insert(state)
        live[oid] = state
    for oid in rng.sample(sorted(live), n // 3):
        new = random_state(rng, oid, rng.uniform(30, 59))
        index.update(live[oid], new)
        oracle.update(live[oid], new)
        live[oid] = new
    return path, pagefile, index, oracle, live, rng


class TestCheckpointRoundTrip:
    def test_reopened_index_answers_identically(self, tmp_path):
        path, pagefile, index, oracle, live, rng = build_on_disk(tmp_path)
        meta = tmp_path / "index.meta"
        save_index(index, meta)
        pagefile.close()

        reopened = load_index(path, meta, pool_pages=128)
        assert len(reopened) == len(index)
        assert reopened.live_windows == index.live_windows
        for _ in range(30):
            x = rng.uniform(0, 160)
            t1 = rng.uniform(59, 70)
            query = WindowQuery((x, x), (x + 40, x + 40), t1, t1 + 10)
            assert sorted(reopened.query(query)) \
                == sorted(oracle.query(query))
        reopened.pool.pagefile.close()

    def test_reopened_index_accepts_updates(self, tmp_path):
        path, pagefile, index, oracle, live, rng = build_on_disk(tmp_path)
        meta = tmp_path / "index.meta"
        save_index(index, meta)
        pagefile.close()

        reopened = load_index(path, meta, pool_pages=128)
        for oid in rng.sample(sorted(live), 100):
            new = random_state(rng, oid, rng.uniform(30, 59))
            reopened.update(live[oid], new)
            oracle.update(live[oid], new)
            live[oid] = new
        for oid in rng.sample(sorted(live), 50):
            assert reopened.delete(live[oid]) == oracle.delete(live[oid])
            del live[oid]
        assert len(reopened) == len(oracle)
        for _ in range(20):
            x = rng.uniform(0, 160)
            query = TimeSliceQuery((x, x), (x + 40, x + 40),
                                   rng.uniform(59, 80))
            assert sorted(reopened.query(query)) \
                == sorted(oracle.query(query))
        reopened.pool.pagefile.close()

    def test_free_pages_are_reused_after_reopen(self, tmp_path):
        path, pagefile, index, oracle, live, rng = build_on_disk(tmp_path)
        meta = tmp_path / "index.meta"
        # Delete most entries to free pages, then checkpoint.
        for oid in sorted(live)[:500]:
            index.delete(live.pop(oid))
        save_index(index, meta)
        capacity_before = pagefile.capacity_pages
        pagefile.close()

        reopened = load_index(path, meta, pool_pages=128)
        for oid in range(10_000, 10_400):
            state = random_state(rng, oid, rng.uniform(30, 59))
            reopened.insert(state)
        # Re-inserting into freed space must not grow the file much.
        assert reopened.pool.pagefile.capacity_pages \
            <= capacity_before + 8
        reopened.pool.pagefile.close()

    def test_config_round_trips(self, tmp_path):
        config = StripesConfig(
            vmax=(3.0, 3.0), pmax=(200.0, 200.0), lifetime=45.0,
            float32=True,
            quadtree=QuadTreeConfig(max_depth=12,
                                    leaf_size_ladder=(505, 1011, 4091)))
        path, pagefile, index, _, _, _ = build_on_disk(
            tmp_path, n=100, config=config)
        meta = tmp_path / "index.meta"
        save_index(index, meta)
        pagefile.close()
        reopened = load_index(path, meta, pool_pages=64)
        assert reopened.config == config
        reopened.pool.pagefile.close()

    def test_format_version_checked(self, tmp_path):
        path, pagefile, index, _, _, _ = build_on_disk(tmp_path, n=50)
        meta = tmp_path / "index.meta"
        save_index(index, meta)
        pagefile.close()
        import json
        blob = json.loads(meta.read_text())
        blob["format"] = 999
        meta.write_text(json.dumps(blob))
        with pytest.raises(ValueError, match="format"):
            load_index(path, meta)

    def test_page_size_mismatch_rejected(self, tmp_path):
        path, pagefile, index, _, _, _ = build_on_disk(tmp_path, n=50)
        meta = tmp_path / "index.meta"
        save_index(index, meta)
        pagefile.close()
        import json
        blob = json.loads(meta.read_text())
        blob["page_size"] = 8192
        meta.write_text(json.dumps(blob))
        with pytest.raises(ValueError, match="page size|truncated"):
            load_index(path, meta)
