"""Bit-exact parity of the vectorized query kernels with the scalar path.

The PR 2 performance work (SoA leaf columns, ``contains_batch``,
``classify_quads``, ``matches_batch``, batch refinement) is only
admissible because every kernel promises *identical* answers to the
scalar code it replaces -- not "close", identical.  This suite drives
thousands of seeded-random trajectories and queries through both paths
and compares results exactly, including float32-rounded points placed
directly on the region's polyline boundaries where ``>=`` vs ``>``
mistakes would show up.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.dual import DualSpace
from repro.core.quadtree import QuadTreeConfig
from repro.core.query_region import QueryRegion2D, build_query_regions
from repro.core.stripes import StripesConfig, StripesIndex
from repro.query.predicates import MovingQueryEvaluator
from repro.query.types import (
    MovingObjectState,
    MovingQuery,
    TimeSliceQuery,
    WindowQuery,
)

VMAX = (3.0, 3.0)
PMAX = (1000.0, 1000.0)
LIFETIME = 120.0


def random_query(rng: random.Random, d: int = 2):
    kind = rng.choice(("ts", "win", "mov"))
    lo1 = tuple(rng.uniform(0.0, PMAX[i]) for i in range(d))
    hi1 = tuple(lo1[i] + rng.uniform(0.0, 100.0) for i in range(d))
    t1 = rng.uniform(0.0, LIFETIME)
    if kind == "ts":
        return TimeSliceQuery(lo1, hi1, t1)
    t2 = t1 + rng.uniform(1e-3, 60.0)
    if kind == "win":
        return WindowQuery(lo1, hi1, t1, t2)
    lo2 = tuple(rng.uniform(0.0, PMAX[i]) for i in range(d))
    hi2 = tuple(lo2[i] + rng.uniform(0.0, 100.0) for i in range(d))
    return MovingQuery(lo1, hi1, lo2, hi2, t1, t2)


def random_states(rng: random.Random, n: int, d: int = 2,
                  t_max: float = LIFETIME):
    return [
        MovingObjectState(
            oid,
            pos=tuple(rng.uniform(0.0, PMAX[i]) for i in range(d)),
            vel=tuple(rng.uniform(-VMAX[i], VMAX[i]) for i in range(d)),
            t=rng.uniform(0.0, t_max))
        for oid in range(n)
    ]


class TestContainsBatchParity:
    """``contains_batch`` == ``contains_point`` on every lane."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_random_points(self, seed, dtype):
        rng = random.Random(seed)
        for _ in range(40):
            region = self._random_region(rng)
            n = 250
            vs = np.array([rng.uniform(0.0, 2 * VMAX[0]) for _ in range(n)],
                          dtype=dtype)
            ps = np.array(
                [rng.uniform(0.0, PMAX[0] + 2 * VMAX[0] * LIFETIME)
                 for _ in range(n)], dtype=dtype)
            got = region.contains_batch(vs, ps)
            want = [region.contains_point(float(v), float(p))
                    for v, p in zip(vs, ps)]
            assert got.tolist() == want

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_float32_points_on_polyline_edges(self, seed):
        """Points constructed *on* the lower/upper boundary polylines --
        then rounded through float32, landing a hair on either side --
        must classify identically in both paths."""
        rng = random.Random(seed)
        for _ in range(40):
            region = self._random_region(rng)
            vs, ps = [], []
            for _ in range(200):
                v = rng.uniform(0.0, 2 * VMAX[0])
                edge = (region.lower_at(v) if rng.random() < 0.5
                        else region.upper_at(v))
                # float32 rounding of both coordinates, then back to the
                # float64 values the index would actually store.
                vs.append(float(np.float32(v)))
                ps.append(float(np.float32(edge)))
            # Exact breakpoint abscissae too, where the min/max of the
            # two lines switches over.
            for brk in (region._lower_break, region._upper_break):
                if brk is not None:
                    vs.append(brk)
                    ps.append(region.lower_at(brk))
                    vs.append(brk)
                    ps.append(region.upper_at(brk))
            vs_arr = np.array(vs, dtype=np.float64)
            ps_arr = np.array(ps, dtype=np.float64)
            got = region.contains_batch(vs_arr, ps_arr)
            want = [region.contains_point(v, p) for v, p in zip(vs, ps)]
            assert got.tolist() == want

    @staticmethod
    def _random_region(rng: random.Random) -> QueryRegion2D:
        query = random_query(rng, d=1)
        return build_query_regions(query.as_moving(), (VMAX[0],), LIFETIME,
                                   t_ref=0.0)[0]


class TestClassifyQuadsParity:
    """``classify_quads`` == four ``classify_rect`` calls."""

    def test_random_quads(self):
        rng = random.Random(42)
        for _ in range(200):
            query = random_query(rng, d=1)
            region = build_query_regions(query.as_moving(), (VMAX[0],),
                                         LIFETIME, t_ref=0.0)[0]
            v1 = rng.uniform(0.0, 2 * VMAX[0])
            sl_v = rng.uniform(1e-3, 2 * VMAX[0])
            p1 = rng.uniform(0.0, PMAX[0])
            sl_p = rng.uniform(1e-3, 200.0)
            quads = region.classify_quads(v1, v1 + sl_v, v1 + 2 * sl_v,
                                          p1, p1 + sl_p, p1 + 2 * sl_p)
            for code in range(4):
                va = v1 + (code & 1) * sl_v
                pa = p1 + ((code >> 1) & 1) * sl_p
                want = region.classify_rect(va, va + sl_v, pa, pa + sl_p)
                assert quads[code] is want, (code, quads[code], want)


class TestMatchesBatchParity:
    """``matches_batch`` == ``matches_trajectory`` on every lane."""

    def test_random_trajectories(self):
        rng = random.Random(7)
        for _ in range(60):
            query = random_query(rng)
            evaluator = MovingQueryEvaluator(query)
            n = 200
            p0s = np.array([[rng.uniform(-100.0, PMAX[i])
                             for i in range(2)] for _ in range(n)])
            pvs = np.array([[rng.uniform(-VMAX[i], VMAX[i])
                             for i in range(2)] for _ in range(n)])
            got = evaluator.matches_batch(p0s, pvs)
            want = [evaluator.matches_trajectory(p0s[k], pvs[k])
                    for k in range(n)]
            assert got.tolist() == want


def build_pair(float32: bool):
    """Twin STRIPES indexes: vectorized kernels on vs the scalar path."""
    def make(vectorized: bool) -> StripesIndex:
        return StripesIndex(StripesConfig(
            vmax=VMAX, pmax=PMAX, lifetime=LIFETIME, float32=float32,
            quadtree=QuadTreeConfig(vectorized=vectorized)))
    return make(True), make(False)


class TestIndexLevelParity:
    """Whole-index answers are identical with kernels on or off."""

    @pytest.mark.parametrize("float32", [False, True])
    @pytest.mark.parametrize("seed", [5, 6])
    def test_query_results_identical(self, seed, float32):
        rng = random.Random(seed)
        vec, scalar = build_pair(float32)
        states = random_states(rng, 1500)
        vec.insert_batch(states)
        for state in states:
            scalar.insert(state)
        assert len(vec) == len(scalar)
        queries = [random_query(rng) for _ in range(120)]
        batch = vec.query_batch(queries)
        for k, query in enumerate(queries):
            expect = scalar.query(query)
            assert batch[k] == expect
            assert vec.query(query) == expect
            assert vec.count(query) == scalar.count(query)

    def test_refine_off_identical(self):
        rng = random.Random(8)
        vec, scalar = build_pair(float32=False)
        states = random_states(rng, 800)
        vec.insert_batch(states)
        scalar.insert_batch(states)
        queries = [random_query(rng) for _ in range(60)]
        assert vec.query_batch(queries, refine=False) == \
            [scalar.query(q, refine=False) for q in queries]

    def test_insert_batch_equals_sequential(self):
        rng = random.Random(9)
        batch_idx, seq_idx = build_pair(float32=False)
        states = random_states(rng, 600)
        assert batch_idx.insert_batch(states) == len(states)
        for state in states:
            seq_idx.insert(state)
        probes = [random_query(rng) for _ in range(40)]
        for query in probes:
            assert sorted(batch_idx.query(query)) == \
                sorted(seq_idx.query(query))
        assert batch_idx.pages_in_use() == seq_idx.pages_in_use()

    def test_query_batch_matches_sequential_on_same_index(self):
        rng = random.Random(10)
        index, _ = build_pair(float32=False)
        index.insert_batch(random_states(rng, 700))
        queries = [random_query(rng) for _ in range(50)]
        assert index.query_batch(queries) == \
            [index.query(q) for q in queries]


class TestSoAStaleness:
    """The per-record SoA view must rebuild after any entry mutation."""

    def test_updates_invalidate_soa(self):
        rng = random.Random(13)
        vec, scalar = build_pair(float32=False)
        states = random_states(rng, 400)
        vec.insert_batch(states)
        scalar.insert_batch(states)
        query = TimeSliceQuery((0.0, 0.0), PMAX, t=30.0)
        assert vec.query(query) == scalar.query(query)  # warm the SoA views
        for state in states[::3]:
            moved = MovingObjectState(
                state.oid,
                pos=tuple(min(PMAX[i], state.pos[i] + 1.0)
                          for i in range(2)),
                vel=state.vel, t=state.t)
            vec.update(state, moved)
            scalar.update(state, moved)
        for _ in range(30):
            probe = random_query(rng)
            assert vec.query(probe) == scalar.query(probe)


class TestDecodedNodeCacheGenerations:
    """A raw store write must invalidate the decoded-object cache."""

    def test_raw_write_invalidates(self):
        from repro.storage.buffer_pool import BufferPool
        from repro.storage.node_store import NodeCache, RecordStore
        from repro.storage.pagefile import InMemoryPageFile

        store = RecordStore(BufferPool(InMemoryPageFile()))
        # Records keep undefined trailing bytes, so pad every payload to
        # the full record size.
        cache = NodeCache(store,
                          serialize=lambda s: s.encode().ljust(16, b"\x00"),
                          deserialize=lambda b: b.rstrip(b"\x00").decode())
        rid = cache.insert(16, "alpha")
        assert cache.get(rid) == "alpha"
        hits_before = cache.hits
        assert cache.get(rid) == "alpha"
        assert cache.hits == hits_before + 1
        # Bypass the cache entirely: write through the record store.
        store.write(rid, b"beta".ljust(16, b"\x00"))
        misses_before = cache.misses
        assert cache.get(rid) == "beta"
        assert cache.misses == misses_before + 1

    def test_free_and_reallocate_never_serves_stale(self):
        from repro.storage.buffer_pool import BufferPool
        from repro.storage.node_store import NodeCache, RecordStore
        from repro.storage.pagefile import InMemoryPageFile

        store = RecordStore(BufferPool(InMemoryPageFile()))
        cache = NodeCache(store,
                          serialize=lambda s: s.encode().ljust(16, b"\x00"),
                          deserialize=lambda b: b.rstrip(b"\x00").decode())
        rid = cache.insert(16, "old")
        store.free(rid)
        rid2 = store.allocate(16, b"new".ljust(16, b"\x00"))
        assert rid2 == rid  # slot reuse is the whole point of this test
        assert cache.get(rid2) == "new"
